//! The cluster runtime: shard map, ingest splitting, result merging.
//!
//! One logical stream, N physical engines. The router owns:
//!
//! * the **shard map** — which engines host which stream, and the
//!   [`Partitioner`] for `SHARD BY` streams;
//! * **placement** — unsharded streams (and sub-cluster `SHARDS n`
//!   declarations) land on the least-loaded engines, judged by each
//!   engine's typed `STATS` report;
//! * **ingest splitting** — one logical receptor port per stream; every
//!   arriving batch is sliced column-wise into per-shard sub-batches
//!   ([`Partitioner::split`] — no row materialization) and forwarded to
//!   the shard engines as binary frames over per-shard sockets;
//! * **result merging** — one logical emitter port per query; per-shard
//!   result streams are relayed byte-for-byte (frames are peeled with
//!   `frame_len`, never decoded) into every subscriber socket.
//!
//! Control operations fan out over the engines' ordinary control planes,
//! so a shard is just a `datacelld` — in this process or on another host.

use std::collections::HashMap;
use std::io::{BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use datacell::frame::{self, WireFormat};
use datacell::net::parse_row;
use datacell::partition::Partitioner;
use dcsql::ast::{CreateKind, Stmt};
use dcserver::error::{Result, ServerError};
use dcserver::session::SessionManager;
use dcserver::stats::StatsReport;
use dcserver::ServerConfig;
use monet::prelude::*;
use parking_lot::{Mutex, RwLock};

use crate::engines::{ControlPolicy, ShardEngine, ShardSpec};
use crate::relay::FrameRelay;

/// How long blocking reads/accepts wait before re-checking the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);
/// Upper bound on a subscriber socket write.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Text-ingest batching: split + forward after this many buffered rows.
const ROUTER_BATCH: usize = 4096;
/// Batches a shard forwarder queues before the splitter backs off —
/// backpressure from a slow shard propagates to the sender's socket.
const FORWARD_QUEUE_CAP: usize = 64;

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Host the router's logical data-plane ports bind to.
    pub data_host: String,
    /// The shard engines, in shard order.
    pub shards: Vec<ShardSpec>,
    /// Follower engines, one per shard (empty = no replication). An
    /// in-process follower inherits the engine config with its own
    /// durability root (`shard-<i>-replica` under the data dir).
    pub followers: Vec<ShardSpec>,
    /// Configuration for in-process shard engines.
    pub engine: ServerConfig,
    /// Timeouts + backoff for every router→engine control session.
    pub control: ControlPolicy,
    /// How often the replication pump ships segments + WAL tail from
    /// each primary to its follower.
    pub repl_interval: Duration,
    /// Consecutive failed HEALTH polls before a shard with a follower
    /// is failed over. A single timeout is never enough: transient
    /// stalls (GC pauses, load spikes) must not trigger promotion.
    pub failover_misses: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::in_process(2)
    }
}

impl ClusterConfig {
    /// `n` in-process shard engines with default settings.
    pub fn in_process(n: usize) -> ClusterConfig {
        ClusterConfig {
            data_host: "127.0.0.1".into(),
            shards: vec![ShardSpec::InProcess; n],
            followers: Vec::new(),
            engine: ServerConfig::default(),
            control: ControlPolicy::default(),
            repl_interval: Duration::from_millis(200),
            failover_misses: 3,
        }
    }

    /// `n` in-process shards, each with an in-process follower.
    pub fn in_process_replicated(n: usize) -> ClusterConfig {
        let mut c = ClusterConfig::in_process(n);
        c.followers = vec![ShardSpec::InProcess; n];
        c
    }
}

/// One logical stream in the shard map.
pub struct StreamEntry {
    pub name: String,
    /// User schema (wire order), parsed from the DDL.
    pub schema: Schema,
    /// `None` for unsharded (single-engine) streams.
    pub partitioner: Option<Partitioner>,
    pub key: Option<String>,
    /// Engine ids hosting this stream; index = shard index.
    pub engines: Vec<usize>,
    /// The plain per-shard `CREATE STREAM` DDL (clauses stripped) —
    /// replayed on a promoted follower: as `REPL OPEN ... AS <ddl>` for
    /// persistent streams, as-is for non-persistent ones.
    pub ddl: String,
    /// Whether each shard keeps this stream on its durable substrate
    /// (and the replication pump ships it to followers).
    pub persist: bool,
}

/// One shard of the cluster: a primary engine, optionally a follower
/// replica, and the failure-detection bookkeeping that drives
/// promotion. The primary is behind an `RwLock` because promotion swaps
/// it while STATS/METRICS fan-outs and ingest accept loops read it.
pub struct ShardSlot {
    pub(crate) primary: RwLock<Arc<ShardEngine>>,
    pub(crate) follower: Mutex<Option<Arc<ShardEngine>>>,
    /// Consecutive HEALTH polls that failed to reach the primary.
    pub(crate) health_misses: AtomicU32,
    /// CAS guard: exactly one thread runs the promotion protocol.
    pub(crate) failing_over: AtomicBool,
    /// Set by the replication pump when shipping to the follower has
    /// stopped making progress — surfaced as a HEALTH reason.
    repl_stalled: AtomicBool,
    /// Completed promotions on this shard (mirrors `dc_failover_total`).
    pub(crate) failovers: AtomicU64,
}

impl ShardSlot {
    fn new(primary: ShardEngine, follower: Option<ShardEngine>) -> ShardSlot {
        ShardSlot {
            primary: RwLock::new(Arc::new(primary)),
            follower: Mutex::new(follower.map(Arc::new)),
            health_misses: AtomicU32::new(0),
            failing_over: AtomicBool::new(false),
            repl_stalled: AtomicBool::new(false),
            failovers: AtomicU64::new(0),
        }
    }

    pub(crate) fn primary(&self) -> Arc<ShardEngine> {
        Arc::clone(&self.primary.read())
    }

    pub(crate) fn follower(&self) -> Option<Arc<ShardEngine>> {
        self.follower.lock().clone()
    }

    pub(crate) fn set_stalled(&self, stalled: bool) {
        self.repl_stalled.store(stalled, Ordering::Release);
    }

    pub(crate) fn is_stalled(&self) -> bool {
        self.repl_stalled.load(Ordering::Acquire)
    }

    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Acquire)
    }
}

/// One registered continuous query.
pub struct QueryEntry {
    pub name: String,
    pub sql: String,
    /// Engines where registration succeeded (a query over an unsharded
    /// stream only resolves on the engine hosting it).
    pub engines: Vec<usize>,
    pub kind: String,
}

/// A logical receptor port (router side).
pub struct ClusterReceptorPort {
    pub stream: String,
    pub port: u16,
    pub format: WireFormat,
    pub connections: AtomicU64,
    pub accepted: AtomicU64,
    pub rejected: AtomicU64,
    /// `DETACH RECEPTOR` flips this; the accept loop exits, established
    /// ingest connections drain until their peers hang up.
    closed: Arc<AtomicBool>,
    /// Shard-side binary receptor ports behind this logical port, so
    /// DETACH can close them too — `(engine id, shard port)`, in shard
    /// index order. Behind a mutex: promotion re-points entries at the
    /// new primary while accept loops resolve them per connection.
    pub(crate) shard_ports: Mutex<Vec<(usize, u16)>>,
}

/// A logical emitter port (router side).
pub struct ClusterEmitterPort {
    pub query: String,
    pub port: u16,
    pub format: WireFormat,
    pub connections: AtomicU64,
    pub relay: Arc<FrameRelay>,
    /// `DETACH EMITTER` flips this; existing subscribers keep their
    /// streams until the taps see EOF.
    closed: Arc<AtomicBool>,
    /// Shard-side emitter ports behind this logical port (re-pointed by
    /// promotion, like the receptor's).
    pub(crate) shard_ports: Mutex<Vec<(usize, u16)>>,
    writers: Mutex<Vec<JoinHandle<()>>>,
}

/// A logical `TRACE QUERY <q> ON` port (router side): per-shard live
/// trace streams merged line-for-line into every subscriber.
pub struct ClusterTracePort {
    pub query: String,
    pub port: u16,
    closed: Arc<AtomicBool>,
    relay: Arc<FrameRelay>,
    writers: Mutex<Vec<JoinHandle<()>>>,
}

/// The running cluster: shard engines + router state.
pub struct ClusterRuntime {
    pub(crate) config: ClusterConfig,
    pub(crate) slots: Vec<ShardSlot>,
    pub sessions: SessionManager,
    pub(crate) streams: Mutex<HashMap<String, Arc<StreamEntry>>>,
    pub(crate) queries: Mutex<HashMap<String, Arc<QueryEntry>>>,
    /// Names whose CREATE fanned out partially before failing, with the
    /// exact DDL and the engine set chosen for that attempt. A retry may
    /// see "duplicate" from engines that already created the object, and
    /// only then — with byte-identical DDL, on the same engine set — is
    /// that tolerable (a different DDL colliding with the leftover would
    /// silently adopt a wrong-schema basket).
    failed_creates: Mutex<HashMap<String, (String, Vec<usize>)>>,
    /// Stream names with a CREATE currently fanning out: concurrent
    /// same-name CREATEs must serialize here (without wedging the whole
    /// stream map), or the loser could place an orphan basket on engines
    /// the winner did not choose.
    in_flight_creates: Mutex<std::collections::HashSet<String>>,
    /// Query names whose REGISTER fanned out partially before failing,
    /// with the exact SQL — mirrors `failed_creates`: a retry may see
    /// "duplicate" from engines that already registered, and only the
    /// byte-identical SQL makes that tolerable.
    failed_registers: Mutex<HashMap<String, String>>,
    pub(crate) receptors: Mutex<Vec<Arc<ClusterReceptorPort>>>,
    pub(crate) emitters: Mutex<Vec<Arc<ClusterEmitterPort>>>,
    /// Emitter ports retired by `DETACH EMITTER`: their relays and
    /// subscriber writers still need the shutdown drain/join.
    detached_emitters: Mutex<Vec<Arc<ClusterEmitterPort>>>,
    trace_ports: Mutex<Vec<Arc<ClusterTracePort>>>,
    /// Router-local telemetry (forwarder-queue saturation, router-hop
    /// spans, cluster health gauges); shard engines carry their own
    /// registries, merged by `metrics()`.
    pub(crate) telemetry: dctrace::Telemetry,
    /// Replication pump bookkeeping (per stream × shard cursors and
    /// stall tracking) — see `crate::repl`.
    pub(crate) repl: Mutex<crate::repl::ReplState>,
    /// Bounded ring of periodic cluster-wide `METRICS` snapshots
    /// (`METRICS HISTORY`, windowed gauges). Populated by the router's
    /// snapshotter thread; empty when telemetry is disabled.
    history: Arc<dctrace::MetricsHistory>,
    /// Receptor accept loops (joined before the engines shut down, so
    /// final batches reach the shard baskets).
    ingress_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Emitter accept loops + shard taps (joined after the engines shut
    /// down, so final results drain through the relays).
    pub(crate) egress_threads: Mutex<Vec<JoinHandle<()>>>,
    stop: Arc<AtomicBool>,
    /// Set only AFTER the shard engines shut down (and thus flushed
    /// their final results): shard taps must not stop on the earlier
    /// `stop` flag, or tail results racing the shutdown would be lost.
    drain_taps: AtomicBool,
    started_at: Instant,
}

impl ClusterRuntime {
    /// Boot/adopt every shard engine and assemble the router.
    pub fn new(config: ClusterConfig) -> Result<Arc<ClusterRuntime>> {
        if config.shards.is_empty() {
            return Err(ServerError::Protocol(
                "cluster needs at least one shard engine".into(),
            ));
        }
        if !config.followers.is_empty() && config.followers.len() != config.shards.len() {
            return Err(ServerError::Protocol(format!(
                "cluster has {} shards but {} followers — give every shard \
                 a follower or none",
                config.shards.len(),
                config.followers.len()
            )));
        }
        let spawn = |i: usize, spec: &ShardSpec, suffix: &str| match spec {
            ShardSpec::InProcess => {
                // every in-process engine gets its own durability root:
                // persistent streams on different shards (and a shard's
                // primary vs its follower) must never share a WAL or
                // manifest
                let mut engine_config = config.engine.clone();
                if let Some(root) = &engine_config.data_dir {
                    engine_config.data_dir = Some(root.join(format!("shard-{i}{suffix}")));
                }
                ShardEngine::spawn_in_process_with(i, engine_config, config.control)
            }
            ShardSpec::Remote(addr) => ShardEngine::connect_remote_with(i, addr, config.control),
        };
        let slots = config
            .shards
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let primary = spawn(i, spec, "")?;
                let follower = match config.followers.get(i) {
                    Some(fspec) => Some(spawn(i, fspec, "-replica")?),
                    None => None,
                };
                Ok(ShardSlot::new(primary, follower))
            })
            .collect::<Result<Vec<_>>>()?;
        let telemetry = if config.engine.telemetry_enabled {
            let t = dctrace::Telemetry::enabled_with_ring(config.engine.trace_ring);
            t.set_trace_sampling(config.engine.trace_sample);
            t
        } else {
            dctrace::Telemetry::disabled()
        };
        let history = Arc::new(dctrace::MetricsHistory::new(config.engine.metrics_depth));
        let has_followers = slots.iter().any(|s| s.follower.lock().is_some());
        let rt = Arc::new(ClusterRuntime {
            config,
            slots,
            telemetry,
            history,
            repl: Mutex::new(crate::repl::ReplState::default()),
            sessions: SessionManager::new(),
            streams: Mutex::new(HashMap::new()),
            queries: Mutex::new(HashMap::new()),
            failed_creates: Mutex::new(HashMap::new()),
            in_flight_creates: Mutex::new(std::collections::HashSet::new()),
            failed_registers: Mutex::new(HashMap::new()),
            receptors: Mutex::new(Vec::new()),
            emitters: Mutex::new(Vec::new()),
            detached_emitters: Mutex::new(Vec::new()),
            trace_ports: Mutex::new(Vec::new()),
            ingress_threads: Mutex::new(Vec::new()),
            egress_threads: Mutex::new(Vec::new()),
            stop: Arc::new(AtomicBool::new(false)),
            drain_taps: AtomicBool::new(false),
            started_at: Instant::now(),
        });
        if rt.telemetry.is_enabled() {
            rt.spawn_snapshotter();
        }
        if has_followers {
            rt.spawn_repl_pump();
        }
        Ok(rt)
    }

    /// Background replication pump: every `repl_interval`, ship sealed
    /// segments + the WAL tail of every persistent stream from each
    /// shard's primary to its follower.
    fn spawn_repl_pump(self: &Arc<Self>) {
        let rt = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("dcc-repl".into())
            .spawn(move || {
                let interval = rt.config.repl_interval;
                while !rt.is_stopping() {
                    let mut slept = Duration::ZERO;
                    while slept < interval && !rt.is_stopping() {
                        std::thread::sleep(POLL_INTERVAL.min(interval));
                        slept += POLL_INTERVAL.min(interval);
                    }
                    if rt.is_stopping() {
                        break;
                    }
                    rt.pump_replication_now();
                }
            })
            .expect("spawn cluster replication pump");
        self.ingress_threads.lock().push(handle);
    }

    /// Background metrics snapshotter (the router-side twin of the
    /// engine's): every `metrics_interval`, capture the aggregated
    /// cluster exposition into the history ring and refresh the
    /// windowed + health gauges.
    fn spawn_snapshotter(self: &Arc<Self>) {
        let rt = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("dcc-metrics".into())
            .spawn(move || {
                let interval = rt.config.engine.metrics_interval;
                while !rt.is_stopping() {
                    let mut slept = Duration::ZERO;
                    while slept < interval && !rt.is_stopping() {
                        std::thread::sleep(POLL_INTERVAL);
                        slept += POLL_INTERVAL;
                    }
                    if rt.is_stopping() {
                        break;
                    }
                    rt.capture_metrics_now();
                }
            })
            .expect("spawn cluster metrics snapshotter");
        self.ingress_threads.lock().push(handle);
    }

    /// Capture one cluster-wide metrics snapshot into the history ring,
    /// derive the windowed gauges from the last two snapshots, and
    /// refresh the per-shard health gauges. Public so tests (and
    /// operators via scripts) can force a tick instead of waiting out
    /// `metrics_interval`.
    pub fn capture_metrics_now(self: &Arc<Self>) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let lines = self.metrics();
        self.history.capture(&lines, dctrace::now_micros());
        if let Some((prev, curr)) = self.history.last_two() {
            for s in dctrace::windowed_gauges(&prev, &curr) {
                // re-key through static names: the registry interns
                // series under `&'static str` metric names
                let name = match s.name.as_str() {
                    "dc_ingest_rate" => "dc_ingest_rate",
                    "dc_fire_p99_window_micros" => "dc_fire_p99_window_micros",
                    _ => continue,
                };
                self.telemetry.set_gauge_rendered(name, s.labels, s.value);
            }
        }
        self.poll_shard_health();
    }

    pub fn engine_count(&self) -> usize {
        self.slots.len()
    }

    /// Current primary engine of shard `eid`. The handle stays valid
    /// across a promotion (control calls just start failing once the
    /// engine is dead) — resolve per operation, not per port lifetime.
    pub(crate) fn engine(&self, eid: usize) -> Arc<ShardEngine> {
        self.slots[eid].primary()
    }

    /// Current primaries, in shard order.
    fn primaries(&self) -> Vec<Arc<ShardEngine>> {
        self.slots.iter().map(|s| s.primary()).collect()
    }

    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    pub fn request_shutdown(&self) {
        self.stop.store(true, Ordering::Release);
    }

    pub fn uptime(&self) -> Duration {
        self.started_at.elapsed()
    }

    fn ensure_running(&self) -> Result<()> {
        if self.is_stopping() {
            Err(ServerError::ShuttingDown)
        } else {
            Ok(())
        }
    }

    /// Engine ids ordered by current ingest load (ascending) — the
    /// placement policy. Engines whose STATS cannot be read sort last.
    fn least_loaded(&self, n: usize) -> Vec<usize> {
        let mut loads: Vec<(u64, usize)> = self
            .slots
            .iter()
            .enumerate()
            .map(|(eid, s)| {
                (
                    s.primary()
                        .stats()
                        .map(|s| s.ingest_load())
                        .unwrap_or(u64::MAX),
                    eid,
                )
            })
            .collect();
        loads.sort_unstable();
        loads.truncate(n);
        let mut ids: Vec<usize> = loads.into_iter().map(|(_, id)| id).collect();
        ids.sort_unstable(); // stable shard-index → engine mapping
        ids
    }

    // ---- control-plane operations ---------------------------------------

    /// Plain (unsharded) DDL. `CREATE TABLE`/`CREATE BASKET` fan out to
    /// every engine (reference data must resolve everywhere); a plain
    /// `CREATE STREAM` becomes a single-shard stream placed on the
    /// least-loaded engine.
    pub fn ddl(&self, sql: &str) -> Result<Vec<String>> {
        self.ensure_running()?;
        let (kind, name, schema) = parse_create(sql)?;
        match kind {
            CreateKind::Stream => {
                self.create_stream_entry(sql, &name, schema, None, Some(1), false)
            }
            CreateKind::Table | CreateKind::Basket => {
                let all: Vec<usize> = (0..self.slots.len()).collect();
                self.forward_create(&name, sql, sql, &all)?;
                // reference data must also resolve on a promoted
                // follower: best-effort fan-out, duplicates tolerated
                // (a follower that already has it from an earlier
                // attempt), hard failures mark the shard stalled so
                // the gap is visible before any promotion relies on it
                for (eid, slot) in self.slots.iter().enumerate() {
                    let Some(f) = slot.follower() else { continue };
                    match f.control(|c| c.request(sql)) {
                        Ok(_) => {}
                        Err(e) if e.to_string().contains("duplicate") => {}
                        Err(_) => {
                            slot.set_stalled(true);
                            if let Some(rec) = self.telemetry.recorder() {
                                rec.record(
                                    "replication",
                                    None,
                                    format!("shard={eid} follower missed DDL {name}"),
                                );
                            }
                        }
                    }
                }
                Ok(Vec::new())
            }
        }
    }

    /// Engine set recorded by a failed partial CREATE of `name` with
    /// this exact signature (DDL **plus** shard clause), if any — a
    /// retry must repeat the whole declaration and target the same
    /// engines, or the leftover baskets of the first attempt would be
    /// stranded outside the retried stream's entry.
    fn recorded_create(&self, name: &str, signature: &str) -> Option<Vec<usize>> {
        self.failed_creates
            .lock()
            .get(name)
            .filter(|(prev_sig, _)| prev_sig == signature)
            .map(|(_, engines)| engines.clone())
    }

    /// Forward one CREATE to the given engines, with retry idempotency:
    /// "duplicate" from an engine is tolerable ONLY on a retry of the
    /// byte-identical declaration (`signature` = DDL + shard clause)
    /// after a recorded partial failure (the engine kept the object from
    /// our earlier attempt) — never on a first attempt or a changed
    /// declaration, where it means the name collides with an object of
    /// unknown or known-different shape.
    fn forward_create(
        &self,
        name: &str,
        signature: &str,
        ddl: &str,
        engines: &[usize],
    ) -> Result<()> {
        let retrying = self.recorded_create(name, signature).is_some();
        let mut any_created = false;
        for &eid in engines {
            match self.engine(eid).control(|c| c.request(ddl)) {
                Ok(_) => any_created = true,
                Err(e) if retrying && e.to_string().contains("duplicate") => {}
                Err(e) => {
                    if any_created || retrying {
                        self.failed_creates
                            .lock()
                            .insert(name.to_string(), (signature.to_string(), engines.to_vec()));
                    }
                    return Err(e);
                }
            }
        }
        self.failed_creates.lock().remove(name);
        Ok(())
    }

    /// `CREATE STREAM ... PERSIST` (unsharded): a single-shard durable
    /// stream placed on the least-loaded engine. The shard engine does
    /// the actual WAL/segment work — it must run with a `--data-dir`.
    pub fn create_persistent(&self, ddl: &str, stream: &str) -> Result<Vec<String>> {
        self.ensure_running()?;
        let (kind, name, schema) = parse_create(ddl)?;
        if kind != CreateKind::Stream || name != stream {
            return Err(ServerError::Protocol(format!(
                "PERSIST applies to CREATE STREAM {stream}, got {ddl:?}"
            )));
        }
        self.create_stream_entry(ddl, stream, schema, None, Some(1), true)
    }

    /// `CREATE STREAM ... [PERSIST] SHARD BY (key) [SHARDS n]`.
    pub fn create_sharded(
        &self,
        ddl: &str,
        stream: &str,
        key: &str,
        shards: Option<usize>,
        persist: bool,
    ) -> Result<Vec<String>> {
        self.ensure_running()?;
        let (kind, name, schema) = parse_create(ddl)?;
        if kind != CreateKind::Stream || name != stream {
            return Err(ServerError::Protocol(format!(
                "SHARD BY applies to CREATE STREAM {stream}, got {ddl:?}"
            )));
        }
        self.create_stream_entry(ddl, stream, schema, Some(key), shards, persist)
    }

    /// Shared CREATE STREAM path. `key = None` → unsharded; `shards =
    /// None` → one shard per engine.
    fn create_stream_entry(
        &self,
        ddl: &str,
        stream: &str,
        schema: Schema,
        key: Option<&str>,
        shards: Option<usize>,
        persist: bool,
    ) -> Result<Vec<String>> {
        let n = shards.unwrap_or(self.slots.len());
        if n == 0 || n > self.slots.len() {
            return Err(ServerError::Protocol(format!(
                "SHARDS {n} out of range (cluster has {} engines)",
                self.slots.len()
            )));
        }
        let partitioner = match key {
            None => None,
            Some(k) => {
                let (idx, _) = schema.find(k).ok_or_else(|| {
                    ServerError::Protocol(format!(
                        "SHARD BY key {k} is not a column of {stream}"
                    ))
                })?;
                Some(Partitioner::new(idx, n).map_err(ServerError::Engine)?)
            }
        };
        // duplicate pre-check + in-flight claim, WITHOUT holding the map
        // lock across the engine round-trips below — a slow shard must
        // only stall this CREATE, not every control command touching the
        // stream map; the in-flight claim makes a racing same-name
        // CREATE fail here, before it can place baskets anywhere
        {
            let streams = self.streams.lock();
            let mut in_flight = self.in_flight_creates.lock();
            if streams.contains_key(stream) || !in_flight.insert(stream.to_string()) {
                return Err(ServerError::Duplicate(stream.to_string()));
            }
        }
        let result = (|| {
            // the retry signature covers the shard clause too: a retry
            // with a different key or SHARDS count is a NEW declaration
            // colliding with the old attempt's leftovers, not a retry
            let signature = format!("{ddl}#key={key:?}#shards={n}#persist={persist}");
            // a same-declaration retry reuses the engine set of the
            // recorded partial attempt (fresh placement could strand its
            // baskets)
            let engines = match self.recorded_create(stream, &signature) {
                Some(prev) if prev.len() == n => prev,
                _ => self.least_loaded(n),
            };
            // the shard clause stays router-side, but PERSIST travels to
            // the shard engines: each shard keeps its own WAL + segments
            let shard_ddl = if persist {
                format!("{ddl} PERSIST")
            } else {
                ddl.to_string()
            };
            self.forward_create(stream, &signature, &shard_ddl, &engines)?;
            let entry = Arc::new(StreamEntry {
                name: stream.to_string(),
                schema,
                partitioner,
                key: key.map(str::to_string),
                engines: engines.clone(),
                ddl: ddl.to_string(),
                persist,
            });
            self.streams.lock().insert(stream.to_string(), entry);
            let engine_list: Vec<String> = engines.iter().map(usize::to_string).collect();
            let mut line = format!(
                "stream={stream} shards={n} key={} engines={}",
                key.unwrap_or("-"),
                engine_list.join(",")
            );
            if persist {
                line.push_str(" persistent=true");
            }
            Ok(vec![line])
        })();
        self.in_flight_creates.lock().remove(stream);
        result
    }

    /// One-shot SQL, fanned out to every engine. Only statements whose
    /// N-way execution is equivalent to single-engine execution are
    /// allowed (CREATE / DECLARE / SET — the setup surface); INSERTs and
    /// SELECTs are rejected with a pointer to the data plane, because
    /// fanning them out would duplicate data N× or return one shard's
    /// slice as if it were the whole answer.
    pub fn exec(&self, sql: &str) -> Result<Vec<String>> {
        self.ensure_running()?;
        let stmts = dcsql::parse_statements(sql)
            .map_err(|e| ServerError::Protocol(format!("EXEC: {e}")))?;
        // every CREATE goes through the ddl() path: streams need the
        // shard map (placement + routing entry), and tables/baskets need
        // forward_create's partial-failure retry idempotency
        if stmts.iter().any(|s| matches!(s, Stmt::Create { .. })) {
            if stmts.len() == 1 {
                return self.ddl(sql);
            }
            return Err(ServerError::Protocol(
                "EXEC scripts may not mix CREATE with other statements \
                 on a cluster — issue each CREATE as its own command so \
                 the router can place and track it"
                    .into(),
            ));
        }
        let fan_out_safe = stmts
            .iter()
            .all(|s| matches!(s, Stmt::Declare { .. } | Stmt::Set { .. }));
        if !fan_out_safe {
            return Err(ServerError::Protocol(
                "EXEC on a cluster is limited to CREATE/DECLARE/SET \
                 (data statements would run once per engine — use receptor \
                 and emitter ports, or EXEC against a single engine)"
                    .into(),
            ));
        }
        let mut first: Option<Vec<String>> = None;
        for e in self.primaries() {
            let body = e.control(|c| c.exec(sql))?;
            if first.is_none() {
                first = Some(body);
            }
        }
        Ok(first.unwrap_or_default())
    }

    /// Register a continuous query on every engine that can resolve it.
    pub fn register_query(&self, name: &str, sql: &str) -> Result<Vec<String>> {
        self.ensure_running()?;
        // as in create_stream_entry: never hold the map lock across the
        // engine round-trips — a slow shard stalls this registration only
        if self.queries.lock().contains_key(name) {
            return Err(ServerError::Duplicate(name.to_string()));
        }
        let retrying = self
            .failed_registers
            .lock()
            .get(name)
            .is_some_and(|prev| prev == sql);
        let mut engines = Vec::new();
        let mut skipped: Vec<(usize, String)> = Vec::new();
        let mut kind = String::new();
        let mut first_err = None;
        for (eid, slot) in self.slots.iter().enumerate() {
            let e = slot.primary();
            match e.control(|c| c.request(&format!("REGISTER QUERY {name} AS {sql}"))) {
                Ok(body) => {
                    engines.push(eid);
                    if kind.is_empty() {
                        kind = body
                            .first()
                            .and_then(|l| l.split("kind=").nth(1))
                            .unwrap_or("unknown")
                            .to_string();
                    }
                }
                Err(err) => {
                    let msg = err.to_string();
                    if msg.contains("unknown name") {
                        // expected: this engine does not host a stream
                        // the query references (unsharded, placed
                        // elsewhere) — the query has no results there.
                        // Recorded so partial success is visible in the
                        // response instead of silently narrowing fan-out
                        skipped.push((eid, msg.replace(['\n', '\r'], " ")));
                        if first_err.is_none() {
                            first_err = Some(err);
                        }
                    } else if retrying && msg.contains("duplicate") {
                        // a recorded same-SQL partial fan-out already
                        // registered it here — count the engine. A
                        // changed-SQL retry is NOT tolerated: it would
                        // merge two different queries under one name.
                        engines.push(eid);
                    } else {
                        // ANY other failure (socket error, engine fault)
                        // must abort: tolerating it would silently drop
                        // that shard's results from every subscriber
                        if !engines.is_empty() || retrying {
                            self.failed_registers
                                .lock()
                                .insert(name.to_string(), sql.to_string());
                        }
                        return Err(err);
                    }
                }
            }
        }
        if engines.is_empty() {
            return Err(first_err
                .unwrap_or_else(|| ServerError::Unknown(format!("query {name}"))));
        }
        self.failed_registers.lock().remove(name);
        let engine_list: Vec<String> = engines.iter().map(usize::to_string).collect();
        let mut queries = self.queries.lock();
        if queries.contains_key(name) {
            // raced with a concurrent identical registration; the shard
            // engines themselves rejected one of the two fan-outs as
            // duplicate, so nothing dangles
            return Err(ServerError::Duplicate(name.to_string()));
        }
        queries.insert(
            name.to_string(),
            Arc::new(QueryEntry {
                name: name.to_string(),
                sql: sql.to_string(),
                engines,
                kind: kind.clone(),
            }),
        );
        // partial success is explicit: the summary line counts the
        // engines that declined, and one detail line per declined
        // engine carries its exact error
        let mut body = vec![format!(
            "query={name} kind={kind} engines={} skipped={}",
            engine_list.join(","),
            skipped.len()
        )];
        for (eid, msg) in &skipped {
            body.push(format!("skipped engine={eid} error={msg}"));
        }
        Ok(body)
    }

    /// `FLUSH STREAM <name>`: seal every shard's open basket rows into
    /// segments. Returns the total rows sealed across shards.
    pub fn flush_stream(&self, stream: &str) -> Result<u64> {
        self.ensure_running()?;
        let entry = self
            .streams
            .lock()
            .get(stream)
            .cloned()
            .ok_or_else(|| ServerError::Unknown(format!("stream {stream}")))?;
        let mut sealed = 0u64;
        for &eid in &entry.engines {
            sealed += self.engine(eid).control(|c| c.flush_stream(stream))?;
        }
        Ok(sealed)
    }

    /// `EXPLAIN <sql>`: plan compilation is identical on every engine
    /// (same binary, same compiler), so forward to the first one.
    pub fn explain_sql(&self, sql: &str) -> Result<Vec<String>> {
        self.ensure_running()?;
        self.engine(0).control(|c| c.explain(sql))
    }

    /// `EXPLAIN QUERY <name>`: forward to an engine hosting the query
    /// (registration fans out, so any resolving engine has the plan).
    pub fn explain_query(&self, name: &str) -> Result<Vec<String>> {
        self.ensure_running()?;
        let eid = {
            let queries = self.queries.lock();
            let q = queries
                .get(name)
                .ok_or_else(|| ServerError::Unknown(format!("query {name}")))?;
            *q.engines.first().expect("registered queries resolve somewhere")
        };
        self.engine(eid).control(|c| c.explain_query(name))
    }

    // ---- ingest: one logical receptor port ------------------------------

    /// Open a logical receptor port for `stream`; port 0 picks an
    /// ephemeral port. Behind it, one binary receptor per shard engine.
    pub fn attach_receptor(
        self: &Arc<Self>,
        stream: &str,
        port: u16,
        format: WireFormat,
    ) -> Result<u16> {
        self.ensure_running()?;
        let entry = self
            .streams
            .lock()
            .get(stream)
            .cloned()
            .ok_or_else(|| ServerError::Unknown(format!("stream {stream}")))?;
        // bind the logical port FIRST: a bad local port (in use,
        // privileged) must fail before any engine-side port is attached
        let listener = TcpListener::bind((self.config.data_host.as_str(), port))?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?.port();
        // shard-side ingest is always binary: the router has columnar
        // batches in hand, whatever the client-facing format. A failure
        // partway through the loop detaches the shard ports already
        // attached — no engine-side port outlives a failed ATTACH
        let mut shard_ports: Vec<(usize, u16)> = Vec::with_capacity(entry.engines.len());
        for &eid in &entry.engines {
            match self.engine(eid)
                .control(|c| c.attach_receptor_fmt(stream, 0, WireFormat::Binary))
            {
                Ok(p) => shard_ports.push((eid, p)),
                Err(e) => {
                    for &(peid, pp) in &shard_ports {
                        let _ = self.engine(peid).control(|c| c.detach_receptor(stream, pp));
                    }
                    return Err(e);
                }
            }
        }
        let rport = Arc::new(ClusterReceptorPort {
            stream: stream.to_string(),
            port: bound,
            format,
            connections: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            closed: Arc::new(AtomicBool::new(false)),
            shard_ports: Mutex::new(shard_ports),
        });
        self.receptors.lock().push(Arc::clone(&rport));

        let rt = Arc::clone(self);
        let accept_port = Arc::clone(&rport);
        let handle = std::thread::Builder::new()
            .name(format!("dcc-rcpt-{stream}"))
            .spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                while !rt.is_stopping() && !accept_port.closed.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((sock, _peer)) => {
                            accept_port.connections.fetch_add(1, Ordering::AcqRel);
                            let rt2 = Arc::clone(&rt);
                            let port2 = Arc::clone(&accept_port);
                            let entry2 = Arc::clone(&entry);
                            // resolve shard addresses per connection, not
                            // per port: promotion re-points shard_ports at
                            // the new primary, and connections accepted
                            // afterwards must ingest there
                            let addrs: Vec<_> = accept_port
                                .shard_ports
                                .lock()
                                .iter()
                                .map(|&(eid, p)| rt.engine(eid).data_addr(p))
                                .collect();
                            conns.retain(|t| !t.is_finished());
                            conns.push(
                                std::thread::Builder::new()
                                    .name(format!("dcc-rcpt-{}-conn", port2.stream))
                                    .spawn(move || {
                                        ingest_connection(&rt2, &port2, &entry2, &addrs, sock)
                                    })
                                    .expect("spawn router ingest thread"),
                            );
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => std::thread::sleep(POLL_INTERVAL),
                    }
                }
                for t in conns {
                    let _ = t.join();
                }
            })
            .expect("spawn router receptor accept thread");
        self.ingress_threads.lock().push(handle);
        Ok(bound)
    }

    // ---- results: one logical emitter port ------------------------------

    /// Open a logical emitter port for `query`; port 0 picks an ephemeral
    /// port. Behind it, one emitter subscription per shard engine, all
    /// merged into every subscriber.
    pub fn attach_emitter(
        self: &Arc<Self>,
        query: &str,
        port: u16,
        format: WireFormat,
    ) -> Result<u16> {
        self.ensure_running()?;
        let entry = self
            .queries
            .lock()
            .get(query)
            .cloned()
            .ok_or_else(|| ServerError::Unknown(format!("query {query}")))?;
        // bind the logical port FIRST (see attach_receptor): local bind
        // failures must not leak engine-side ports or tap threads
        let listener = TcpListener::bind((self.config.data_host.as_str(), port))?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?.port();
        let relay = FrameRelay::new();
        // subscribe to each shard in the *client's* format, so merging is
        // a byte relay — frames are never decoded in the router; attach
        // every shard port before spawning taps so a failure mid-list
        // leaves no thread behind, and detach the shard ports already
        // attached so none leaks on a partial failure
        let mut shard_ports: Vec<(usize, u16)> = Vec::with_capacity(entry.engines.len());
        let mut shard_socks = Vec::with_capacity(entry.engines.len());
        for &eid in &entry.engines {
            let engine = self.engine(eid);
            let attempt = engine
                .control(|c| c.attach_emitter_fmt(query, 0, format))
                .and_then(|p| {
                    shard_ports.push((eid, p));
                    Ok(TcpStream::connect(engine.data_addr(p))?)
                });
            match attempt {
                Ok(sock) => shard_socks.push((eid, sock)),
                Err(e) => {
                    for &(peid, pp) in &shard_ports {
                        let _ = self.engine(peid).control(|c| c.detach_emitter(query, pp));
                    }
                    return Err(e);
                }
            }
        }
        for (eid, sock) in shard_socks {
            let rt = Arc::clone(self);
            let relay2 = Arc::clone(&relay);
            let tap = std::thread::Builder::new()
                .name(format!("dcc-tap-{query}-{eid}"))
                .spawn(move || shard_tap(&rt, &relay2, sock, format))
                .map_err(|e| ServerError::Io(format!("spawn shard tap: {e}")))?;
            self.egress_threads.lock().push(tap);
        }
        let eport = Arc::new(ClusterEmitterPort {
            query: query.to_string(),
            port: bound,
            format,
            connections: AtomicU64::new(0),
            relay,
            closed: Arc::new(AtomicBool::new(false)),
            shard_ports: Mutex::new(shard_ports),
            writers: Mutex::new(Vec::new()),
        });
        self.emitters.lock().push(Arc::clone(&eport));

        let rt = Arc::clone(self);
        let accept_port = Arc::clone(&eport);
        let handle = std::thread::Builder::new()
            .name(format!("dcc-emit-{query}"))
            .spawn(move || {
                while !rt.is_stopping() && !accept_port.closed.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((sock, _peer)) => {
                            accept_port.connections.fetch_add(1, Ordering::AcqRel);
                            let _ = sock.set_write_timeout(Some(WRITE_TIMEOUT));
                            let rx = accept_port.relay.subscribe();
                            let writer = std::thread::Builder::new()
                                .name(format!("dcc-sub-{}", accept_port.query))
                                .spawn(move || subscriber_writer(rx, sock))
                                .expect("spawn subscriber writer");
                            let mut writers = accept_port.writers.lock();
                            writers.retain(|w| !w.is_finished());
                            writers.push(writer);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => std::thread::sleep(POLL_INTERVAL),
                    }
                }
            })
            .expect("spawn router emitter accept thread");
        self.egress_threads.lock().push(handle);
        Ok(bound)
    }

    // ---- detach: close logical ports + their shard-side ports ------------

    /// `DETACH RECEPTOR <stream> PORT <p>`: retire the logical port and
    /// close the shard-side receptor ports behind it. Established ingest
    /// connections drain until their peers hang up. Returns how many
    /// shard-side ports were detached.
    pub fn detach_receptor(&self, stream: &str, port: u16) -> Result<usize> {
        let rport = {
            let mut receptors = self.receptors.lock();
            let idx = receptors
                .iter()
                .position(|r| r.stream == stream && r.port == port)
                .ok_or_else(|| {
                    ServerError::Unknown(format!("receptor {stream} on port {port}"))
                })?;
            receptors.remove(idx)
        };
        rport.closed.store(true, Ordering::Release);
        let mut detached = 0usize;
        for (eid, p) in rport.shard_ports.lock().clone() {
            if self.engine(eid)
                .control(|c| c.detach_receptor(stream, p))
                .is_ok()
            {
                detached += 1;
            }
        }
        Ok(detached)
    }

    /// `DETACH EMITTER <query> PORT <p>`: retire the logical port and
    /// close the shard-side emitter ports behind it. Existing
    /// subscribers keep their streams (the shard taps run until EOF);
    /// the retired port is kept aside so shutdown still drains its
    /// relay and joins its writers. Returns how many shard-side ports
    /// were detached.
    pub fn detach_emitter(&self, query: &str, port: u16) -> Result<usize> {
        let eport = {
            let mut emitters = self.emitters.lock();
            let idx = emitters
                .iter()
                .position(|e| e.query == query && e.port == port)
                .ok_or_else(|| {
                    ServerError::Unknown(format!("emitter {query} on port {port}"))
                })?;
            emitters.remove(idx)
        };
        eport.closed.store(true, Ordering::Release);
        let mut detached = 0usize;
        for (eid, p) in eport.shard_ports.lock().clone() {
            if self.engine(eid)
                .control(|c| c.detach_emitter(query, p))
                .is_ok()
            {
                detached += 1;
            }
        }
        self.detached_emitters.lock().push(eport);
        Ok(detached)
    }

    // ---- telemetry -------------------------------------------------------

    /// Aggregated `METRICS`: per-shard Prometheus expositions merged
    /// bucket-wise (identical series sum, so `dc_fire_micros{query=..}`
    /// histograms aggregate exactly), plus the router's own series and
    /// one `dc_shard_up{shard="i"}` health gauge per engine.
    ///
    /// Shard-local *derived* gauges (uptime, health score, windowed
    /// rates/quantiles) are dropped before the merge: summing them
    /// across shards is meaningless, and the router re-derives the
    /// cluster-level versions from its own snapshot history (and
    /// republishes health as `dc_health_score{shard}`).
    pub fn metrics(&self) -> Vec<String> {
        if self.telemetry.is_enabled() {
            self.telemetry
                .set_gauge("dc_uptime_seconds", &[], self.uptime().as_secs_f64());
        }
        let mut sources: Vec<Vec<String>> = Vec::new();
        let mut up: Vec<(usize, bool)> = Vec::new();
        for (eid, slot) in self.slots.iter().enumerate() {
            match slot.primary().control(|c| c.metrics()) {
                Ok(m) => {
                    sources.push(m.into_iter().filter(|l| !is_derived_gauge(l)).collect());
                    up.push((eid, true));
                }
                Err(_) => up.push((eid, false)),
            }
        }
        sources.push(self.telemetry.render());
        let mut body = dctrace::merge_expositions(&sources);
        body.push("# TYPE dc_shard_up gauge".into());
        for (id, ok) in up {
            body.push(format!(
                "dc_shard_up{{shard=\"{id}\"}} {}",
                if ok { 1 } else { 0 }
            ));
        }
        body
    }

    /// Aggregated `TRACE DUMP`: every shard's flight-recorder events
    /// (each line prefixed `shard=<id>`), then the router's own events
    /// (prefixed `shard=router`).
    pub fn trace_dump(&self, query: Option<&str>) -> Result<Vec<String>> {
        let mut body = Vec::new();
        for (id, slot) in self.slots.iter().enumerate() {
            let lines = slot.primary().control(|c| match query {
                Some(q) => c.trace_dump_query(q),
                None => c.trace_dump(),
            })?;
            body.extend(lines.into_iter().map(|l| format!("shard={id} {l}")));
        }
        if let Some(rec) = self.telemetry.recorder() {
            body.extend(
                rec.dump(query)
                    .into_iter()
                    .map(|l| format!("shard=router {l}")),
            );
        }
        Ok(body)
    }

    /// `METRICS HISTORY [series] [LAST n]` over the router's ring of
    /// cluster-wide snapshots.
    pub fn metrics_history(&self, series: Option<&str>, last: Option<usize>) -> Result<Vec<String>> {
        if !self.telemetry.is_enabled() {
            return Err(ServerError::Protocol(
                "telemetry is disabled on this cluster".into(),
            ));
        }
        Ok(self.history.render(series, last))
    }

    /// Aggregated `TRACE SPANS [BATCH id]`: per-shard span trees merged
    /// by batch id, every span line re-tagged with its origin recorder
    /// (`shard=<id>`, router-local spans as `shard=router`), so one
    /// sampled batch reads as a single cross-process tree.
    pub fn trace_spans(&self, batch: Option<u64>) -> Result<Vec<String>> {
        let mut groups: Vec<(u64, Vec<String>)> = Vec::new();
        let mut add = |id: u64, line: String| match groups.iter_mut().find(|(b, _)| *b == id) {
            Some((_, lines)) => lines.push(line),
            None => groups.push((id, vec![line])),
        };
        // router spans first: a batch enters the cluster at the router,
        // so its receptor/forward hops lead each merged tree
        if let Some(rec) = self.telemetry.recorder() {
            merge_span_lines(&mut add, "router", &dctrace::render_spans(&rec.events(), batch));
        }
        for (eid, slot) in self.slots.iter().enumerate() {
            let lines = slot.primary().control(|c| c.trace_spans(batch))?;
            merge_span_lines(&mut add, &eid.to_string(), &lines);
        }
        let mut out = Vec::new();
        for (id, lines) in groups {
            out.push(format!("batch {id} spans={}", lines.len()));
            out.extend(lines);
        }
        Ok(out)
    }

    /// Poll every shard's `HEALTH`, overlay `unreachable` (score 0) for
    /// engines whose control plane fails, and republish the scores as
    /// `dc_health_score{shard}` plus per-reason `dc_health_degraded`
    /// gauges. Returns one `shard <id> addr=<a> score=<s>
    /// reasons=<csv|->` line per engine — the `HEALTH` response body.
    ///
    /// This poll is also the failure detector: `failover_misses`
    /// consecutive unreachable polls on a shard with a follower trigger
    /// [`ClusterRuntime::promote_shard`].
    fn poll_shard_health(self: &Arc<Self>) -> Vec<String> {
        const REASONS: [&str; 6] = [
            "unreachable",
            "ingest_stalled",
            "reexecute_rate",
            "forward_saturation",
            "wal_fsync_slow",
            "replication_stalled",
        ];
        let mut body = Vec::new();
        for (id, slot) in self.slots.iter().enumerate() {
            let polled = slot.primary().control(|c| c.health());
            let reachable = polled.is_ok();
            let (score, mut reasons) = match polled {
                Ok(lines) => dctrace::HealthReport::parse_head(&lines)
                    .unwrap_or((100, "-".to_string())),
                Err(_) => (0, "unreachable".to_string()),
            };
            if reachable {
                slot.health_misses.store(0, Ordering::Release);
            } else {
                let misses = slot.health_misses.fetch_add(1, Ordering::AcqRel) + 1;
                if misses >= self.config.failover_misses && slot.follower().is_some() {
                    self.promote_shard(id);
                }
            }
            if slot.is_stalled() {
                if reasons == "-" {
                    reasons = "replication_stalled".to_string();
                } else {
                    reasons.push_str(",replication_stalled");
                }
            }
            let shard_label = id.to_string();
            self.telemetry
                .set_gauge("dc_health_score", &[("shard", &shard_label)], score as f64);
            for r in REASONS {
                let degraded = reasons.split(',').any(|x| x == r);
                self.telemetry.set_gauge(
                    "dc_health_degraded",
                    &[("shard", &shard_label), ("reason", r)],
                    if degraded { 1.0 } else { 0.0 },
                );
            }
            body.push(format!(
                "shard {id} addr={} score={score} reasons={reasons}",
                slot.primary().addr()
            ));
        }
        body
    }

    /// `HEALTH` on the router: one freshly-polled line per shard (the
    /// gauges refresh as a side effect, so scraping `HEALTH` and
    /// `METRICS` stays consistent).
    pub fn health(self: &Arc<Self>) -> Result<Vec<String>> {
        Ok(self.poll_shard_health())
    }

    /// `TRACE QUERY <q> ON`: one logical trace-stream port fronting the
    /// query's shards. Each shard's live event stream (text lines) is
    /// relayed into every subscriber, exactly like result merging.
    /// Returns the bound port.
    pub fn trace_on(self: &Arc<Self>, query: &str) -> Result<u16> {
        self.ensure_running()?;
        let entry = self
            .queries
            .lock()
            .get(query)
            .cloned()
            .ok_or_else(|| ServerError::Unknown(format!("query {query}")))?;
        // bind the logical port FIRST (see attach_emitter): local bind
        // failures must not leak shard-side taps
        let listener = TcpListener::bind((self.config.data_host.as_str(), 0))?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?.port();
        let relay = FrameRelay::new();
        let mut shard_socks = Vec::with_capacity(entry.engines.len());
        for &eid in &entry.engines {
            let engine = self.engine(eid);
            let p = engine.control(|c| c.trace_on(query))?;
            shard_socks.push((eid, TcpStream::connect(engine.data_addr(p))?));
        }
        for (eid, sock) in shard_socks {
            let rt = Arc::clone(self);
            let relay2 = Arc::clone(&relay);
            let tap = std::thread::Builder::new()
                .name(format!("dcc-trace-tap-{query}-{eid}"))
                .spawn(move || shard_tap(&rt, &relay2, sock, WireFormat::Text))
                .map_err(|e| ServerError::Io(format!("spawn trace tap: {e}")))?;
            self.egress_threads.lock().push(tap);
        }
        let tport = Arc::new(ClusterTracePort {
            query: query.to_string(),
            port: bound,
            closed: Arc::new(AtomicBool::new(false)),
            relay,
            writers: Mutex::new(Vec::new()),
        });
        self.trace_ports.lock().push(Arc::clone(&tport));

        let rt = Arc::clone(self);
        let accept_port = Arc::clone(&tport);
        let handle = std::thread::Builder::new()
            .name(format!("dcc-trace-{query}"))
            .spawn(move || {
                while !rt.is_stopping() && !accept_port.closed.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((sock, _peer)) => {
                            let _ = sock.set_write_timeout(Some(WRITE_TIMEOUT));
                            let rx = accept_port.relay.subscribe();
                            let writer = std::thread::Builder::new()
                                .name(format!("dcc-trace-sub-{}", accept_port.query))
                                .spawn(move || subscriber_writer(rx, sock))
                                .expect("spawn trace subscriber writer");
                            let mut writers = accept_port.writers.lock();
                            writers.retain(|w| !w.is_finished());
                            writers.push(writer);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => std::thread::sleep(POLL_INTERVAL),
                    }
                }
            })
            .expect("spawn router trace accept thread");
        self.egress_threads.lock().push(handle);
        Ok(bound)
    }

    /// `TRACE QUERY <q> OFF`: close the shard-side taps (their streams
    /// end, the router taps see EOF), retire the logical ports, end
    /// subscriber streams. Returns how many shards were told to stop.
    pub fn trace_off(&self, query: &str) -> Result<usize> {
        let entry = self
            .queries
            .lock()
            .get(query)
            .cloned()
            .ok_or_else(|| ServerError::Unknown(format!("query {query}")))?;
        let mut closed = 0usize;
        for &eid in &entry.engines {
            if self.engine(eid).control(|c| c.trace_off(query)).is_ok() {
                closed += 1;
            }
        }
        let mut ports = self.trace_ports.lock();
        for p in ports.iter().filter(|p| p.query == query) {
            p.closed.store(true, Ordering::Release);
            p.relay.close();
        }
        ports.retain(|p| p.query != query);
        Ok(closed)
    }

    // ---- introspection ---------------------------------------------------

    /// Aggregated `STATS`: cluster-level lines in the same `kind name
    /// k=v` shape as a single engine (so [`StatsReport`] parses them),
    /// with per-stream/per-query metrics **summed across shards**, plus
    /// one `shard` summary line per engine.
    pub fn stats(&self) -> Vec<String> {
        let primaries = self.primaries();
        let reports: Vec<Option<StatsReport>> =
            primaries.iter().map(|e| e.stats().ok()).collect();
        let streams = self.streams.lock();
        let queries = self.queries.lock();
        let receptors = self.receptors.lock();
        let emitters = self.emitters.lock();
        let mut body = Vec::new();
        body.push(format!(
            "server uptime_micros={} sessions={} queries={} receptor_ports={} \
             emitter_ports={} engines={} streams={}",
            self.uptime().as_micros(),
            self.sessions.live_count(),
            queries.len(),
            receptors.len(),
            emitters.len(),
            self.slots.len(),
            streams.len(),
        ));
        let mut stream_names: Vec<&String> = streams.keys().collect();
        stream_names.sort();
        for name in stream_names {
            let s = &streams[name];
            let engine_list: Vec<String> = s.engines.iter().map(usize::to_string).collect();
            body.push(format!(
                "stream {} shards={} key={} engines={}",
                s.name,
                s.engines.len(),
                s.key.as_deref().unwrap_or("-"),
                engine_list.join(","),
            ));
            // aggregate the per-shard basket rows
            let (mut len, mut total_in, mut total_out, mut dropped) = (0u64, 0u64, 0u64, 0u64);
            let (mut high_water, mut cap) = (0u64, 0u64);
            let (mut pending_deletes, mut compactions) = (0u64, 0u64);
            let (mut persistent, mut wal_bytes, mut segments) = (false, 0u64, 0u64);
            let mut wal_fsync_p99 = 0u64;
            for &eid in &s.engines {
                if let Some(b) = reports[eid].as_ref().and_then(|r| r.basket(&s.name)) {
                    len += b.len;
                    total_in += b.total_in;
                    total_out += b.total_out;
                    dropped += b.dropped;
                    high_water = high_water.max(b.high_water);
                    cap = cap.max(b.cap);
                    pending_deletes += b.pending_deletes;
                    compactions += b.compactions;
                    persistent |= b.persistent;
                    wal_bytes += b.wal_bytes;
                    segments += b.segments;
                    // quantiles don't sum — report the slowest shard
                    wal_fsync_p99 = wal_fsync_p99.max(b.wal_fsync_p99_micros);
                }
            }
            let mut line = format!(
                "basket {} len={len} enabled=true in={total_in} out={total_out} \
                 dropped={dropped} high_water={high_water} cap={cap} \
                 pending_deletes={pending_deletes} compactions={compactions} \
                 persistent={persistent} wal_bytes={wal_bytes} segments={segments}",
                s.name
            );
            if persistent {
                line.push_str(&format!(" wal_fsync_p99_micros={wal_fsync_p99}"));
            }
            body.push(line);
        }
        let mut query_names: Vec<&String> = queries.keys().collect();
        query_names.sort();
        for name in query_names {
            let q = &queries[name];
            let mut agg = dcserver::stats::QueryStats {
                name: q.name.clone(),
                ..Default::default()
            };
            for &eid in &q.engines {
                if let Some(row) = reports[eid].as_ref().and_then(|r| r.query(&q.name)) {
                    agg.firings += row.firings;
                    agg.consumed += row.consumed;
                    agg.produced += row.produced;
                    agg.busy_micros += row.busy_micros;
                    agg.lock_micros += row.lock_micros;
                    agg.rows_scanned += row.rows_scanned;
                    agg.rows_out += row.rows_out;
                    agg.plan_micros += row.plan_micros;
                    agg.delta_rows += row.delta_rows;
                    agg.full_reexecutes += row.full_reexecutes;
                    // a gauge, but shard states are disjoint — the
                    // cluster-wide footprint is their sum
                    agg.arrangement_bytes += row.arrangement_bytes;
                    agg.delivered_batches += row.delivered_batches;
                    agg.delivered_tuples += row.delivered_tuples;
                    agg.dropped_batches += row.dropped_batches;
                    // latency quantiles don't sum — report the worst
                    // shard (a conservative cluster-level summary)
                    agg.p50_micros = agg.p50_micros.max(row.p50_micros);
                    agg.p99_micros = agg.p99_micros.max(row.p99_micros);
                    agg.max_micros = agg.max_micros.max(row.max_micros);
                }
            }
            // subscribers are router-side: sockets on this query's
            // logical emitter ports
            let subscribers: usize = emitters
                .iter()
                .filter(|e| e.query == q.name)
                .map(|e| e.relay.subscriber_count())
                .sum();
            let engine_list: Vec<String> = q.engines.iter().map(usize::to_string).collect();
            body.push(format!(
                "query {} firings={} consumed={} produced={} busy_micros={} lock_micros={} \
                 rows_scanned={} rows_out={} plan_micros={} \
                 delta_rows={} full_reexecutes={} arrangement_bytes={} \
                 subscribers={} delivered_batches={} delivered_tuples={} dropped_batches={} \
                 p50_micros={} p99_micros={} max_micros={} engines={}",
                agg.name,
                agg.firings,
                agg.consumed,
                agg.produced,
                agg.busy_micros,
                agg.lock_micros,
                agg.rows_scanned,
                agg.rows_out,
                agg.plan_micros,
                agg.delta_rows,
                agg.full_reexecutes,
                agg.arrangement_bytes,
                subscribers,
                agg.delivered_batches,
                agg.delivered_tuples,
                agg.dropped_batches,
                agg.p50_micros,
                agg.p99_micros,
                agg.max_micros,
                engine_list.join(","),
            ));
        }
        for r in receptors.iter() {
            body.push(format!(
                "receptor {} port={} format={} connections={} accepted={} rejected={}",
                r.stream,
                r.port,
                r.format,
                r.connections.load(Ordering::Acquire),
                r.accepted.load(Ordering::Acquire),
                r.rejected.load(Ordering::Acquire),
            ));
        }
        for e in emitters.iter() {
            let (chunks, bytes) = e.relay.relayed();
            body.push(format!(
                "emitter {} port={} format={} connections={} relayed_chunks={chunks} \
                 relayed_bytes={bytes} dropped_chunks={} lost_sources={}",
                e.query,
                e.port,
                e.format,
                e.connections.load(Ordering::Acquire),
                e.relay.dropped_chunks(),
                e.relay.lost_sources(),
            ));
        }
        for (eid, report) in reports.iter().enumerate() {
            let slot = &self.slots[eid];
            let follower = slot
                .follower()
                .map(|f| f.addr().to_string())
                .unwrap_or_else(|| "-".to_string());
            let failovers = slot.failovers();
            match report {
                Some(r) => body.push(format!(
                    "shard {eid} addr={} baskets_in={} delivered_tuples={} sessions={} \
                     follower={follower} failovers={failovers}",
                    primaries[eid].addr(),
                    r.ingest_load(),
                    r.delivered_tuples(),
                    r.server.sessions,
                )),
                None => body.push(format!(
                    "shard {eid} addr={} unreachable=true follower={follower} \
                     failovers={failovers}",
                    primaries[eid].addr()
                )),
            }
        }
        for s in self.sessions.snapshot() {
            body.push(format!(
                "session {} peer={} commands={}",
                s.id, s.peer, s.commands
            ));
        }
        body
    }

    // ---- shutdown --------------------------------------------------------

    /// Graceful teardown in dependency order: stop taking ingest, flush
    /// final batches into the shards, shut the shard engines down (they
    /// drain and close their emitter streams), drain the relays, join
    /// everything.
    pub fn shutdown(&self) {
        self.request_shutdown();
        // 1. receptor accept loops + ingest connections wind down; their
        //    per-shard forwarders flush and close, so the shard engines
        //    see EOF on every router ingest socket
        for t in std::mem::take(&mut *self.ingress_threads.lock()) {
            let _ = t.join();
        }
        // 2. in-process shard engines shut down gracefully (factories
        //    drain, final results flush, emitter sockets close);
        //    followers after primaries, so the last pump tick's writes
        //    are already on the follower's disk
        for slot in &self.slots {
            slot.primary().shutdown();
        }
        for slot in &self.slots {
            if let Some(f) = slot.follower() {
                f.shutdown();
            }
        }
        // 3. shard taps see EOF and publish their final chunks (the
        //    drain flag releases taps on remote engines that never
        //    close); emitter accept loops observe the stop flag
        self.drain_taps.store(true, Ordering::Release);
        for t in std::mem::take(&mut *self.egress_threads.lock()) {
            let _ = t.join();
        }
        // 4. disconnect subscriber channels and join the writers —
        //    DETACHed emitter ports included, their subscribers may
        //    still be draining
        let mut eports: Vec<Arc<ClusterEmitterPort>> = self.emitters.lock().clone();
        eports.extend(self.detached_emitters.lock().drain(..));
        for eport in &eports {
            eport.relay.close();
        }
        for eport in &eports {
            for w in std::mem::take(&mut *eport.writers.lock()) {
                let _ = w.join();
            }
        }
        let tports: Vec<Arc<ClusterTracePort>> = self.trace_ports.lock().clone();
        for tport in &tports {
            tport.closed.store(true, Ordering::Release);
            tport.relay.close();
        }
        for tport in &tports {
            for w in std::mem::take(&mut *tport.writers.lock()) {
                let _ = w.join();
            }
        }
    }
}

/// Derived per-process gauges that must NOT be summed across shards by
/// the exposition merge: the router recomputes the cluster-level
/// versions itself (see [`ClusterRuntime::metrics`]).
const DERIVED_GAUGES: [&str; 4] = [
    "dc_uptime_seconds",
    "dc_health_score",
    "dc_ingest_rate",
    "dc_fire_p99_window_micros",
];

/// True when `line` is a sample (or `# TYPE` comment) of one of the
/// [`DERIVED_GAUGES`] — matched on the full metric name, not a prefix.
fn is_derived_gauge(line: &str) -> bool {
    let name = line.strip_prefix("# TYPE ").unwrap_or(line);
    DERIVED_GAUGES.iter().any(|g| {
        name.strip_prefix(g).is_some_and(|rest| {
            rest.is_empty() || rest.starts_with('{') || rest.starts_with(' ')
        })
    })
}

/// Fold one recorder's rendered span tree ([`dctrace::render_spans`]
/// output) into the cluster-wide merge: `batch <id> spans=n` headers
/// select the current group; span lines are re-tagged with their origin
/// recorder as `shard=<tag>`.
fn merge_span_lines(add: &mut impl FnMut(u64, String), tag: &str, lines: &[String]) {
    let mut current: Option<u64> = None;
    for l in lines {
        if let Some(rest) = l.strip_prefix("batch ") {
            current = rest.split_whitespace().next().and_then(|id| id.parse().ok());
        } else if let (Some(id), Some(span)) = (current, l.strip_prefix("  ")) {
            add(id, format!("  shard={tag} {span}"));
        }
    }
}

/// Parse a single CREATE statement; returns (kind, name, user schema).
fn parse_create(sql: &str) -> Result<(CreateKind, String, Schema)> {
    let stmts = dcsql::parse_statements(sql)
        .map_err(|e| ServerError::Protocol(format!("DDL: {e}")))?;
    match stmts.as_slice() {
        [Stmt::Create { kind, name, fields }] => Ok((
            *kind,
            name.clone(),
            Schema::new(
                fields
                    .iter()
                    .map(|(n, t)| Field::new(n.clone(), *t))
                    .collect(),
            ),
        )),
        _ => Err(ServerError::Protocol(
            "expected a single CREATE statement".into(),
        )),
    }
}

// ---- ingest plumbing --------------------------------------------------------

/// One sub-batch queued to a shard forwarder, with the trace context to
/// re-stamp onto its wire frame (every split part of a sampled batch
/// carries the same batch id) and the enqueue time, so the forwarder
/// records queue dwell as the batch's `forward` hop.
struct TracedRel {
    rel: Relation,
    trace: Option<frame::TraceHeader>,
    enqueued_micros: u64,
}

/// Sending half of one shard forwarder: the queue plus a liveness flag
/// (the queue length never drains once the forwarder thread dies, so
/// depth alone cannot signal "gone").
struct Forwarder {
    tx: Sender<TracedRel>,
    dead: Arc<AtomicBool>,
    probe: Option<Arc<ForwardProbe>>,
}

/// Router-side telemetry for one shard forwarder queue: counts (and
/// records in the flight recorder) episodes where the splitter backed
/// off on a full queue — the slow-shard signal.
struct ForwardProbe {
    stream: String,
    shard: usize,
    saturations: Arc<AtomicU64>,
    recorder: Arc<dctrace::FlightRecorder>,
}

impl ForwardProbe {
    /// `None` when router telemetry is disabled.
    fn new(t: &dctrace::Telemetry, stream: &str, shard: usize) -> Option<Arc<ForwardProbe>> {
        let shard_label = shard.to_string();
        Some(Arc::new(ForwardProbe {
            stream: stream.to_string(),
            shard,
            saturations: t.counter(
                "dc_forward_saturation_total",
                &[("stream", stream), ("shard", &shard_label)],
            )?,
            recorder: t.recorder()?,
        }))
    }

    fn note_saturation(&self) {
        self.saturations.fetch_add(1, Ordering::Relaxed);
        self.recorder.record(
            "forward_saturation",
            None,
            format!("stream={} shard={}", self.stream, self.shard),
        );
    }

    /// Record the `forward` hop of a traced batch: the dwell between
    /// the splitter's enqueue and this forwarder writing the frame.
    fn note_forward(&self, batch: u64, dwell_micros: u64) {
        self.recorder.record(
            "span",
            None,
            format!(
                "batch={batch} hop=forward dur_micros={dwell_micros} stream={} shard={}",
                self.stream, self.shard
            ),
        );
    }
}

/// Forward sub-batches to one shard engine as binary frames; sampled
/// batches keep their trace header on the shard-bound frame, so the
/// shard's receptor continues the same span tree.
fn shard_forwarder(
    rx: Receiver<TracedRel>,
    sock: TcpStream,
    dead: Arc<AtomicBool>,
    probe: Option<Arc<ForwardProbe>>,
) {
    let mut writer = std::io::BufWriter::new(sock);
    let mut buf: Vec<u8> = Vec::new();
    while let Ok(item) = rx.recv() {
        buf.clear();
        if frame::encode_frame_traced(&mut buf, &item.rel, item.trace.as_ref()).is_err() {
            break;
        }
        if let (Some(p), Some(t)) = (&probe, &item.trace) {
            p.note_forward(
                t.batch,
                dctrace::now_micros().saturating_sub(item.enqueued_micros),
            );
        }
        if writer.write_all(&buf).is_err() {
            break;
        }
        // flush on queue drain: latency when idle, batching under load
        if rx.is_empty() && writer.flush().is_err() {
            break;
        }
    }
    let _ = writer.flush();
    dead.store(true, Ordering::Release);
}

/// Send one sub-batch to a shard forwarder, backing off while its queue
/// is deep (poor-man's bounded channel: backpressure reaches the
/// client's socket through this thread). Returns false when the
/// forwarder is gone or the router is stopping.
fn forward(rt: &ClusterRuntime, f: &Forwarder, item: TracedRel) -> bool {
    if f.tx.len() >= FORWARD_QUEUE_CAP {
        // one saturation event per back-off episode, not per poll
        if let Some(p) = &f.probe {
            p.note_saturation();
        }
        while f.tx.len() >= FORWARD_QUEUE_CAP {
            if rt.is_stopping() || f.dead.load(Ordering::Acquire) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    f.tx.send(item).is_ok()
}

/// Split one decoded batch and forward the non-empty parts. Returns
/// false when a shard forwarder is gone (or the router is stopping): the
/// caller must then drop the client connection, so the sender's next
/// write fails — as it would against a dead single engine — instead of
/// tuples black-holing for one shard while the socket looks healthy.
fn route_batch(
    rt: &ClusterRuntime,
    port: &ClusterReceptorPort,
    entry: &StreamEntry,
    txs: &[Forwarder],
    rel: Relation,
    trace: Option<frame::TraceHeader>,
) -> bool {
    let total = rel.len() as u64;
    let mut sent = 0u64;
    let mut alive = true;
    let enqueued_micros = if trace.is_some() {
        dctrace::now_micros()
    } else {
        0
    };
    match &entry.partitioner {
        None => {
            if forward(
                rt,
                &txs[0],
                TracedRel {
                    rel,
                    trace,
                    enqueued_micros,
                },
            ) {
                sent = total;
            } else {
                alive = false;
            }
        }
        Some(p) => match p.split(&rel) {
            Ok(parts) => {
                for (i, part) in parts.into_iter().enumerate() {
                    if part.is_empty() {
                        continue;
                    }
                    let n = part.len() as u64;
                    // every non-empty part of a sampled batch carries
                    // the same batch id: the shard-side spans of one
                    // logical batch regroup under one tree
                    if forward(
                        rt,
                        &txs[i],
                        TracedRel {
                            rel: part,
                            trace,
                            enqueued_micros,
                        },
                    ) {
                        sent += n;
                    } else {
                        alive = false;
                    }
                }
            }
            // a split failure is structural (schema/key drift), not a
            // bad row: per the contract above, drop the connection
            // rather than silently rejecting every batch from now on
            Err(_) => alive = false,
        },
    }
    port.accepted.fetch_add(sent, Ordering::AcqRel);
    port.rejected.fetch_add(total - sent, Ordering::AcqRel);
    alive
}

/// One client connection on a logical receptor port: decode batches in
/// the port's format, split by partition key, fan out to the shards.
fn ingest_connection(
    rt: &ClusterRuntime,
    port: &ClusterReceptorPort,
    entry: &StreamEntry,
    shard_addrs: &[std::net::SocketAddr],
    sock: TcpStream,
) {
    // single-shard binary ingest never needs the split: relay frames
    // verbatim (schema-free peel, no decode/re-encode on the hot path)
    if shard_addrs.len() == 1 && port.format == WireFormat::Binary {
        let Ok(shard_sock) = TcpStream::connect(shard_addrs[0]) else {
            return;
        };
        ingest_binary_passthrough(rt, port, sock, shard_sock);
        return;
    }
    let mut txs = Vec::with_capacity(shard_addrs.len());
    let mut forwarders = Vec::with_capacity(shard_addrs.len());
    for (shard, addr) in shard_addrs.iter().enumerate() {
        let Ok(shard_sock) = TcpStream::connect(addr) else {
            return; // shard unreachable: refuse the connection outright
        };
        let (tx, rx) = unbounded::<TracedRel>();
        let dead = Arc::new(AtomicBool::new(false));
        let dead2 = Arc::clone(&dead);
        let probe = ForwardProbe::new(&rt.telemetry, &port.stream, shard);
        let probe2 = probe.clone();
        forwarders.push(
            std::thread::Builder::new()
                .name(format!("dcc-fwd-{}", port.stream))
                .spawn(move || shard_forwarder(rx, shard_sock, dead2, probe2))
                .expect("spawn shard forwarder"),
        );
        txs.push(Forwarder { tx, dead, probe });
    }
    match port.format {
        WireFormat::Text => ingest_text(rt, port, entry, &txs, sock),
        WireFormat::Binary => ingest_binary(rt, port, entry, &txs, sock),
    }
    drop(txs); // disconnect the forwarders: they flush and exit
    for f in forwarders {
        let _ = f.join();
    }
}

/// Text ingest: batch wire lines, then split columnar.
fn ingest_text(
    rt: &ClusterRuntime,
    port: &ClusterReceptorPort,
    entry: &StreamEntry,
    txs: &[Forwarder],
    sock: TcpStream,
) {
    let _ = sock.set_read_timeout(Some(POLL_INTERVAL));
    let mut reader = std::io::BufReader::new(sock);
    let mut line = String::new();
    let mut batch = Relation::new(&entry.schema);
    let mut eof = false;
    while !eof {
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(_) => {
                    let trimmed = line.trim_end_matches(['\n', '\r']);
                    if !trimmed.is_empty() {
                        match parse_row(trimmed, &entry.schema) {
                            Ok(row) => {
                                if batch.append_row(&row).is_err() {
                                    port.rejected.fetch_add(1, Ordering::AcqRel);
                                }
                            }
                            Err(_) => {
                                port.rejected.fetch_add(1, Ordering::AcqRel);
                            }
                        }
                    }
                    line.clear();
                    if batch.len() >= ROUTER_BATCH {
                        break;
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if rt.is_stopping() {
                        eof = true;
                    }
                    break;
                }
                Err(_) => {
                    eof = true;
                    break;
                }
            }
        }
        if !batch.is_empty() {
            let full = std::mem::replace(&mut batch, Relation::new(&entry.schema));
            // text clients carry no trace headers: the router is the
            // sampling entry point for their batches
            let trace = rt.telemetry.maybe_sample().map(|b| frame::TraceHeader {
                batch: b,
                origin_micros: dctrace::now_micros(),
            });
            if let Some(t) = &trace {
                rt.telemetry.span(
                    "receptor",
                    t.batch,
                    None,
                    0,
                    &format!("stream={} rows={}", port.stream, full.len()),
                );
            }
            if !route_batch(rt, port, entry, txs, full, trace) {
                break; // shard gone: drop the client connection
            }
        }
        if rt.is_stopping() {
            break;
        }
    }
}

/// Binary ingest: peel complete frames, split each columnar.
fn ingest_binary(
    rt: &ClusterRuntime,
    port: &ClusterReceptorPort,
    entry: &StreamEntry,
    txs: &[Forwarder],
    mut sock: TcpStream,
) {
    let _ = sock.set_read_timeout(Some(POLL_INTERVAL));
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut eof = false;
    while !eof {
        match sock.read(&mut chunk) {
            Ok(0) => eof = true,
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => eof = true,
        }
        let mut consumed = 0usize;
        loop {
            let decode_started = Instant::now();
            match frame::decode_frame_traced(&pending[consumed..], &entry.schema) {
                Ok(Some((rel, used, header))) => {
                    consumed += used;
                    // propagate the client's trace header, or stamp a
                    // fresh sample at the cluster's entry point
                    let trace = header.or_else(|| {
                        rt.telemetry.maybe_sample().map(|b| frame::TraceHeader {
                            batch: b,
                            origin_micros: dctrace::now_micros(),
                        })
                    });
                    if let Some(t) = &trace {
                        rt.telemetry.span(
                            "receptor",
                            t.batch,
                            None,
                            decode_started.elapsed().as_micros() as u64,
                            &format!("stream={} rows={}", port.stream, rel.len()),
                        );
                    }
                    if !route_batch(rt, port, entry, txs, rel, trace) {
                        eof = true; // shard gone: drop the client connection
                        break;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // corrupt stream: count one reject, drop the peer
                    port.rejected.fetch_add(1, Ordering::AcqRel);
                    eof = true;
                    break;
                }
            }
        }
        if consumed > 0 {
            pending.drain(..consumed);
        }
        if rt.is_stopping() {
            break;
        }
    }
}

/// Single-shard binary ingest: peel complete frames off the client
/// socket with the schema-free [`frame::frame_meta`] and write them to
/// the one shard engine byte-for-byte — tuple counters without a decode.
fn ingest_binary_passthrough(
    rt: &ClusterRuntime,
    port: &ClusterReceptorPort,
    mut sock: TcpStream,
    shard_sock: TcpStream,
) {
    let _ = sock.set_read_timeout(Some(POLL_INTERVAL));
    let mut writer = std::io::BufWriter::new(shard_sock);
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut eof = false;
    while !eof {
        match sock.read(&mut chunk) {
            Ok(0) => eof = true,
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => eof = true,
        }
        let mut consumed = 0usize;
        let mut rows = 0u64;
        loop {
            match frame::frame_meta(&pending[consumed..]) {
                Ok(Some((total, n))) => {
                    consumed += total;
                    rows += n;
                }
                Ok(None) => break,
                Err(_) => {
                    // corrupt stream: count one reject, drop the peer
                    port.rejected.fetch_add(1, Ordering::AcqRel);
                    eof = true;
                    break;
                }
            }
        }
        if consumed > 0 {
            if writer
                .write_all(&pending[..consumed])
                .and_then(|()| writer.flush())
                .is_err()
            {
                break; // shard gone: drop the client connection
            }
            port.accepted.fetch_add(rows, Ordering::AcqRel);
            pending.drain(..consumed);
        }
        if rt.is_stopping() {
            break;
        }
    }
    let _ = writer.flush();
}

// ---- result plumbing --------------------------------------------------------

/// Read one shard's result stream and publish complete frames (binary)
/// or complete lines (text) into the relay, byte-for-byte.
pub(crate) fn shard_tap(
    rt: &ClusterRuntime,
    relay: &Arc<FrameRelay>,
    mut sock: TcpStream,
    format: WireFormat,
) {
    let _ = sock.set_read_timeout(Some(POLL_INTERVAL));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match sock.read(&mut chunk) {
            Ok(0) => break, // natural end of the shard's result stream
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // in-process shards end with EOF after their graceful
                // drain; the drain flag (set after engine shutdown) only
                // unsticks taps on remote engines that never close
                if rt.drain_taps.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
            Err(_) => {
                // abnormal end: the merged stream is now missing this
                // shard — surfaced in STATS as lost_sources
                relay.mark_source_lost();
                break;
            }
        }
        // forward every complete, self-delimiting unit in one chunk
        let mut corrupt = false;
        let cut = match format {
            WireFormat::Binary => {
                let mut consumed = 0usize;
                loop {
                    match frame::frame_len(&buf[consumed..]) {
                        Ok(Some(total)) => consumed += total,
                        Ok(None) => break consumed,
                        Err(_) => {
                            // corrupt shard stream: relay the complete
                            // frames peeled before the corruption, then
                            // stop
                            corrupt = true;
                            break consumed;
                        }
                    }
                }
            }
            WireFormat::Text => buf
                .iter()
                .rposition(|&b| b == b'\n')
                .map_or(0, |p| p + 1),
        };
        if cut > 0 {
            relay.publish(buf[..cut].to_vec());
            buf.drain(..cut);
        }
        if corrupt {
            relay.mark_source_lost();
            return;
        }
    }
}

/// Write relayed chunks to one subscriber socket.
fn subscriber_writer(rx: Receiver<Arc<Vec<u8>>>, sock: TcpStream) {
    let mut writer = std::io::BufWriter::new(sock);
    while let Ok(chunk) = rx.recv() {
        if writer.write_all(&chunk).is_err() {
            break;
        }
        if rx.is_empty() && writer.flush().is_err() {
            break;
        }
    }
    let _ = writer.flush();
}
