//! Shard engines — the N `datacelld` instances behind the router.
//!
//! A shard engine is a full, independent DataCell server: its own
//! baskets, factories, scheduler and data-plane ports. The router talks
//! to it exclusively through the public control-plane protocol, so an
//! **in-process** engine (spawned and supervised by the router) and a
//! **remote** engine (a `datacelld` already running elsewhere) are
//! indistinguishable past construction.
//!
//! Every control round-trip is bounded: connects use
//! [`ControlPolicy::connect_timeout`], reads/writes use
//! [`ControlPolicy::io_timeout`], and after a transport failure the
//! session enters a capped exponential backoff window during which
//! further control calls fail immediately instead of re-dialing a dead
//! or wedged engine. Server-reported errors (`ERR ...` responses) keep
//! the session open — the transport is fine, the request was just
//! rejected.

use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dcserver::client::Client;
use dcserver::error::{Result, ServerError};
use dcserver::stats::StatsReport;
use dcserver::ServerConfig;
use parking_lot::Mutex;

/// Where one shard engine runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardSpec {
    /// Spawn a `datacelld` inside the router process (ephemeral ports,
    /// shut down with the cluster).
    InProcess,
    /// Connect to an already-running `datacelld` control plane at
    /// `host:port`. The router never shuts a remote engine down.
    Remote(String),
}

/// Timeouts and backoff governing every router→engine control session.
///
/// A wedged engine (network partition, hung process) must fail the
/// request — control operations serialize per shard, so an unbounded
/// block here would freeze the router's whole control plane, and an
/// eager re-dial loop against a dead engine would stall every
/// STATS/METRICS/HEALTH fan-out on connect timeouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlPolicy {
    /// Upper bound on establishing a control connection.
    pub connect_timeout: Duration,
    /// Upper bound on one control round-trip (read + write).
    pub io_timeout: Duration,
    /// First backoff window after a transport failure; doubles per
    /// consecutive failure.
    pub backoff_base: Duration,
    /// Ceiling for the backoff window.
    pub backoff_max: Duration,
}

impl Default for ControlPolicy {
    fn default() -> ControlPolicy {
        ControlPolicy {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_secs(5),
        }
    }
}

/// The router's control session to one engine: a lazily (re)connected
/// client plus the failure bookkeeping that drives backoff.
struct ControlSession {
    client: Option<Client>,
    /// Consecutive transport failures since the last success.
    failures: u32,
    /// No reconnect attempt before this instant.
    retry_at: Option<Instant>,
}

impl ControlSession {
    fn note_failure(&mut self, policy: &ControlPolicy) {
        self.client = None;
        let shift = self.failures.min(16);
        let window = policy
            .backoff_base
            .saturating_mul(1u32 << shift.min(31))
            .min(policy.backoff_max);
        self.failures = self.failures.saturating_add(1);
        self.retry_at = Some(Instant::now() + window);
    }

    fn note_success(&mut self) {
        self.failures = 0;
        self.retry_at = None;
    }
}

/// One supervised shard engine.
pub struct ShardEngine {
    id: usize,
    addr: SocketAddr,
    policy: ControlPolicy,
    /// The router's control session to this engine. Control operations
    /// are serialized per shard; data-plane connections are separate
    /// sockets and never wait on this lock.
    control: Mutex<ControlSession>,
    /// Serve thread of an in-process engine (`None` for remote).
    serve: Mutex<Option<JoinHandle<()>>>,
}

impl ShardEngine {
    /// Boot an in-process `datacelld` on an ephemeral control port.
    pub fn spawn_in_process(id: usize, config: ServerConfig) -> Result<ShardEngine> {
        ShardEngine::spawn_in_process_with(id, config, ControlPolicy::default())
    }

    /// Boot an in-process engine with an explicit control policy.
    pub fn spawn_in_process_with(
        id: usize,
        config: ServerConfig,
        policy: ControlPolicy,
    ) -> Result<ShardEngine> {
        let server = dcserver::bind("127.0.0.1:0", config)?;
        let addr = server
            .local_addr()
            .map_err(|e| ServerError::Io(format!("shard {id} control addr: {e}")))?;
        let serve = std::thread::Builder::new()
            .name(format!("dc-shard-{id}"))
            .spawn(move || {
                let _ = server.serve();
            })
            .map_err(|e| ServerError::Io(format!("spawn shard {id}: {e}")))?;
        let control = Self::dial(addr, &policy)?;
        Ok(ShardEngine {
            id,
            addr,
            policy,
            control: Mutex::new(ControlSession {
                client: Some(control),
                failures: 0,
                retry_at: None,
            }),
            serve: Mutex::new(Some(serve)),
        })
    }

    /// Adopt a running `datacelld` at `addr` as a shard.
    pub fn connect_remote(id: usize, addr: &str) -> Result<ShardEngine> {
        ShardEngine::connect_remote_with(id, addr, ControlPolicy::default())
    }

    /// Adopt a remote engine with an explicit control policy.
    pub fn connect_remote_with(id: usize, addr: &str, policy: ControlPolicy) -> Result<ShardEngine> {
        let addr: SocketAddr = addr
            .parse()
            .map_err(|e| ServerError::Protocol(format!("shard {id} addr {addr:?}: {e}")))?;
        let control = Self::dial(addr, &policy)?;
        Ok(ShardEngine {
            id,
            addr,
            policy,
            control: Mutex::new(ControlSession {
                client: Some(control),
                failures: 0,
                retry_at: None,
            }),
            serve: Mutex::new(None),
        })
    }

    fn dial(addr: SocketAddr, policy: &ControlPolicy) -> Result<Client> {
        let mut client = Client::connect_timeout(&addr, policy.connect_timeout)?;
        client.set_io_timeout(Some(policy.io_timeout))?;
        Ok(client)
    }

    pub fn id(&self) -> usize {
        self.id
    }

    /// The engine's control-plane address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Address of a data-plane port this engine reported (its data ports
    /// live on the same host as its control plane).
    pub fn data_addr(&self, port: u16) -> SocketAddr {
        SocketAddr::new(self.addr.ip(), port)
    }

    /// Run one control-plane operation against this engine.
    ///
    /// Reconnects lazily if the previous session died; while the backoff
    /// window from a prior transport failure is open the call fails
    /// immediately. A transport error (`ServerError::Io` — broken pipe,
    /// timeout, refused connect) tears the session down and arms the
    /// backoff; server-reported errors pass through without touching the
    /// connection.
    pub fn control<T>(&self, f: impl FnOnce(&mut Client) -> Result<T>) -> Result<T> {
        let mut session = self.control.lock();
        if session.client.is_none() {
            if let Some(at) = session.retry_at {
                if Instant::now() < at {
                    return Err(ServerError::Io(format!(
                        "shard {} control backing off after {} failure(s)",
                        self.id, session.failures
                    )));
                }
            }
            match Self::dial(self.addr, &self.policy) {
                Ok(client) => session.client = Some(client),
                Err(e) => {
                    session.note_failure(&self.policy);
                    return Err(e);
                }
            }
        }
        let client = session.client.as_mut().expect("session connected above");
        match f(client) {
            Ok(v) => {
                session.note_success();
                Ok(v)
            }
            Err(e) => {
                if matches!(e, ServerError::Io(_)) {
                    // The stream may hold a half-read response — the
                    // session is unusable even if the engine recovers.
                    session.note_failure(&self.policy);
                }
                Err(e)
            }
        }
    }

    /// This engine's typed `STATS` — the placement signal.
    pub fn stats(&self) -> Result<StatsReport> {
        self.control(|c| c.stats_report())
    }

    /// Stop an in-process engine (graceful `SHUTDOWN` + join). Remote
    /// engines are left running.
    pub fn shutdown(&self) {
        let Some(handle) = self.serve.lock().take() else {
            return;
        };
        let _ = self.control(|c| c.shutdown());
        let _ = handle.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn in_process_engine_boots_and_shuts_down() {
        let e = ShardEngine::spawn_in_process(0, ServerConfig::default()).unwrap();
        assert_eq!(e.id(), 0);
        e.control(|c| c.ping()).unwrap();
        e.control(|c| c.create_stream("S", "(id int)")).unwrap();
        let stats = e.stats().unwrap();
        assert!(stats.basket("S").is_some());
        e.shutdown();
        // idempotent
        e.shutdown();
    }

    #[test]
    fn remote_engine_is_not_shut_down() {
        let inner = ShardEngine::spawn_in_process(0, ServerConfig::default()).unwrap();
        let remote = ShardEngine::connect_remote(1, &inner.addr().to_string()).unwrap();
        remote.control(|c| c.ping()).unwrap();
        remote.shutdown(); // no-op for remote
        inner.control(|c| c.ping()).unwrap();
        inner.shutdown();
    }

    /// Satellite: a deliberately unresponsive engine (accepts, never
    /// replies) must cost at most one io_timeout, and subsequent calls
    /// inside the backoff window must fail fast without re-dialing.
    #[test]
    fn unresponsive_engine_times_out_then_backs_off() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Accept and hold connections open without ever responding.
        let hold = std::thread::spawn(move || {
            let mut open = Vec::new();
            for sock in listener.incoming() {
                match sock {
                    Ok(s) => open.push(s),
                    Err(_) => break,
                }
            }
        });

        let policy = ControlPolicy {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(200),
            backoff_base: Duration::from_millis(300),
            backoff_max: Duration::from_secs(1),
        };
        let e = ShardEngine::connect_remote_with(7, &addr.to_string(), policy).unwrap();

        let t0 = Instant::now();
        let err = e.control(|c| c.ping()).unwrap_err();
        assert!(matches!(err, ServerError::Io(_)), "got {err:?}");
        let first = t0.elapsed();
        assert!(
            first >= Duration::from_millis(150) && first < Duration::from_secs(2),
            "first call should be bounded by io_timeout, took {first:?}"
        );

        // Inside the backoff window: immediate failure, no new dial.
        let t1 = Instant::now();
        let err = e.control(|c| c.ping()).unwrap_err();
        assert!(matches!(err, ServerError::Io(_)), "got {err:?}");
        assert!(
            t1.elapsed() < Duration::from_millis(100),
            "backoff should fail fast, took {:?}",
            t1.elapsed()
        );

        // After the window expires the router re-dials (and times out
        // again — still bounded, and the window doubles).
        std::thread::sleep(Duration::from_millis(350));
        let t2 = Instant::now();
        assert!(e.control(|c| c.ping()).is_err());
        assert!(t2.elapsed() < Duration::from_secs(2));

        drop(e);
        drop(hold); // listener thread exits with the process
    }

    /// Backoff clears on success: an engine that comes back is adopted
    /// on the first post-window call.
    #[test]
    fn reconnects_after_engine_restart() {
        let e1 = ShardEngine::spawn_in_process(0, ServerConfig::default()).unwrap();
        let addr = e1.addr();
        let remote = ShardEngine::connect_remote_with(
            3,
            &addr.to_string(),
            ControlPolicy {
                backoff_base: Duration::from_millis(10),
                backoff_max: Duration::from_millis(50),
                ..ControlPolicy::default()
            },
        )
        .unwrap();
        remote.control(|c| c.ping()).unwrap();
        e1.shutdown();
        // Session dies; calls fail (possibly a few, while backoff arms).
        assert!(remote.control(|c| c.ping()).is_err());
        // Engine comes back on the same port — not guaranteed bindable
        // on every host, so only assert recovery if the rebind works.
        if let Ok(server) = dcserver::bind(&addr.to_string(), ServerConfig::default()) {
            let serve = std::thread::spawn(move || {
                let _ = server.serve();
            });
            let deadline = Instant::now() + Duration::from_secs(5);
            let mut ok = false;
            while Instant::now() < deadline {
                if remote.control(|c| c.ping()).is_ok() {
                    ok = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            assert!(ok, "router should re-adopt a restarted engine");
            let _ = remote.control(|c| c.shutdown());
            let _ = serve.join();
        }
    }
}
