//! Shard engines — the N `datacelld` instances behind the router.
//!
//! A shard engine is a full, independent DataCell server: its own
//! baskets, factories, scheduler and data-plane ports. The router talks
//! to it exclusively through the public control-plane protocol, so an
//! **in-process** engine (spawned and supervised by the router) and a
//! **remote** engine (a `datacelld` already running elsewhere) are
//! indistinguishable past construction.

use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Duration;

use dcserver::client::Client;
use dcserver::error::{Result, ServerError};
use dcserver::stats::StatsReport;
use dcserver::ServerConfig;
use parking_lot::Mutex;

/// Where one shard engine runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardSpec {
    /// Spawn a `datacelld` inside the router process (ephemeral ports,
    /// shut down with the cluster).
    InProcess,
    /// Connect to an already-running `datacelld` control plane at
    /// `host:port`. The router never shuts a remote engine down.
    Remote(String),
}

/// Upper bound on one control round-trip to a shard engine. A wedged
/// engine (network partition, hung process) must fail the request —
/// control operations serialize per shard, so an unbounded block here
/// would freeze the router's whole control plane.
const CONTROL_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// One supervised shard engine.
pub struct ShardEngine {
    id: usize,
    addr: SocketAddr,
    /// The router's control session to this engine. Control operations
    /// are serialized per shard; data-plane connections are separate
    /// sockets and never wait on this lock.
    control: Mutex<Client>,
    /// Serve thread of an in-process engine (`None` for remote).
    serve: Mutex<Option<JoinHandle<()>>>,
}

impl ShardEngine {
    /// Boot an in-process `datacelld` on an ephemeral control port.
    pub fn spawn_in_process(id: usize, config: ServerConfig) -> Result<ShardEngine> {
        let server = dcserver::bind("127.0.0.1:0", config)?;
        let addr = server
            .local_addr()
            .map_err(|e| ServerError::Io(format!("shard {id} control addr: {e}")))?;
        let serve = std::thread::Builder::new()
            .name(format!("dc-shard-{id}"))
            .spawn(move || {
                let _ = server.serve();
            })
            .map_err(|e| ServerError::Io(format!("spawn shard {id}: {e}")))?;
        let mut control = Client::connect(addr)?;
        control.set_io_timeout(Some(CONTROL_IO_TIMEOUT))?;
        Ok(ShardEngine {
            id,
            addr,
            control: Mutex::new(control),
            serve: Mutex::new(Some(serve)),
        })
    }

    /// Adopt a running `datacelld` at `addr` as a shard.
    pub fn connect_remote(id: usize, addr: &str) -> Result<ShardEngine> {
        let mut control = Client::connect(addr)?;
        control.set_io_timeout(Some(CONTROL_IO_TIMEOUT))?;
        let addr = control.server_addr();
        Ok(ShardEngine {
            id,
            addr,
            control: Mutex::new(control),
            serve: Mutex::new(None),
        })
    }

    pub fn id(&self) -> usize {
        self.id
    }

    /// The engine's control-plane address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Address of a data-plane port this engine reported (its data ports
    /// live on the same host as its control plane).
    pub fn data_addr(&self, port: u16) -> SocketAddr {
        SocketAddr::new(self.addr.ip(), port)
    }

    /// Run one control-plane operation against this engine.
    pub fn control<T>(&self, f: impl FnOnce(&mut Client) -> Result<T>) -> Result<T> {
        f(&mut self.control.lock())
    }

    /// This engine's typed `STATS` — the placement signal.
    pub fn stats(&self) -> Result<StatsReport> {
        self.control(|c| c.stats_report())
    }

    /// Stop an in-process engine (graceful `SHUTDOWN` + join). Remote
    /// engines are left running.
    pub fn shutdown(&self) {
        let Some(handle) = self.serve.lock().take() else {
            return;
        };
        let _ = self.control(|c| c.shutdown());
        let _ = handle.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_engine_boots_and_shuts_down() {
        let e = ShardEngine::spawn_in_process(0, ServerConfig::default()).unwrap();
        assert_eq!(e.id(), 0);
        e.control(|c| c.ping()).unwrap();
        e.control(|c| c.create_stream("S", "(id int)")).unwrap();
        let stats = e.stats().unwrap();
        assert!(stats.basket("S").is_some());
        e.shutdown();
        // idempotent
        e.shutdown();
    }

    #[test]
    fn remote_engine_is_not_shut_down() {
        let inner = ShardEngine::spawn_in_process(0, ServerConfig::default()).unwrap();
        let remote = ShardEngine::connect_remote(1, &inner.addr().to_string()).unwrap();
        remote.control(|c| c.ping()).unwrap();
        remote.shutdown(); // no-op for remote
        inner.control(|c| c.ping()).unwrap();
        inner.shutdown();
    }
}
