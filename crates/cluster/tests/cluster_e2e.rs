//! End-to-end tests of the shard router: boot a 2-shard cluster on
//! ephemeral ports, drive the full loop over TCP — sharded ingest through
//! the logical receptor port, per-shard continuous queries, merged
//! results on the logical emitter port — and check the cluster is
//! **semantically transparent**: the same input through a single engine
//! yields the same result multiset.

use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Duration;

use datacell::frame::WireFormat;
use dccluster::{bind_cluster, ClusterConfig};
use dcserver::client::{Client, ShardedClient};
use dcserver::ServerConfig;
use monet::prelude::*;

fn boot_cluster(n: usize) -> (SocketAddr, JoinHandle<()>) {
    let cluster = bind_cluster("127.0.0.1:0", ClusterConfig::in_process(n)).expect("bind cluster");
    let addr = cluster.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        cluster.serve().expect("serve cluster");
    });
    (addr, handle)
}

fn boot_single() -> (SocketAddr, JoinHandle<()>) {
    let server = dcserver::bind("127.0.0.1:0", ServerConfig::default()).expect("bind engine");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        server.serve().expect("serve engine");
    });
    (addr, handle)
}

/// The workload both topologies run: a stream of (id, v), a continuous
/// query keeping v > threshold, fed the same 400 tuples.
const THRESHOLD: i64 = 150;

fn input_batch() -> Relation {
    Relation::from_columns(vec![
        ("id".into(), Column::from_ints((0..400).collect())),
        (
            "v".into(),
            Column::from_ints((0..400).map(|i| (i * 7919) % 1000).collect()),
        ),
    ])
    .unwrap()
}

fn expected_rows() -> Vec<(i64, i64)> {
    let mut rows: Vec<(i64, i64)> = (0..400)
        .map(|i| (i, (i * 7919) % 1000))
        .filter(|&(_, v)| v > THRESHOLD)
        .collect();
    rows.sort_unstable();
    rows
}

/// Feed the input through one control plane (single engine or cluster)
/// and collect the result multiset, in the given wire format.
fn run_workload(addr: SocketAddr, sharded: bool, format: WireFormat) -> Vec<(i64, i64)> {
    let mut c = ShardedClient::from_client(Client::connect(addr).unwrap());
    if sharded {
        c.create_sharded_stream("S", "(id int, v int)", "id", None)
            .unwrap();
    } else {
        c.create_stream("S", "(id int, v int)").unwrap();
    }
    c.register_query(
        "hot",
        &format!("select id, v from [select * from S] as Z where Z.v > {THRESHOLD}"),
    )
    .unwrap();
    let rport = c.attach_receptor_fmt("S", 0, format).unwrap();
    let eport = c.attach_emitter_fmt("hot", 0, format).unwrap();

    let schema = Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)]);
    let mut sink = c.open_receptor_with(rport, format, &schema).unwrap();
    let mut tap = c.open_emitter_with(eport, format).unwrap();
    tap.set_timeout(Some(Duration::from_secs(30))).unwrap();

    sink.send_batch(&input_batch()).unwrap();
    sink.flush().unwrap();

    let expected = expected_rows().len();
    let raw = tap.take_rows(&schema, expected).unwrap();
    let mut rows: Vec<(i64, i64)> = raw
        .iter()
        .map(|r| match (&r[0], &r[1]) {
            (Value::Int(id), Value::Int(v)) => (*id, *v),
            other => panic!("unexpected row {other:?}"),
        })
        .collect();
    rows.sort_unstable();
    c.shutdown().unwrap();
    rows
}

#[test]
fn two_shard_cluster_matches_single_engine_text_and_binary() {
    // the acceptance loop: identical result multisets from a 2-shard
    // cluster and a single engine, in BOTH wire formats
    for format in [WireFormat::Text, WireFormat::Binary] {
        let (cluster_addr, cluster_thread) = boot_cluster(2);
        let (single_addr, single_thread) = boot_single();
        let from_cluster = run_workload(cluster_addr, true, format);
        let from_single = run_workload(single_addr, false, format);
        assert_eq!(
            from_cluster,
            expected_rows(),
            "{format}: cluster must deliver the full result multiset"
        );
        assert_eq!(
            from_cluster, from_single,
            "{format}: sharding must be semantically transparent"
        );
        cluster_thread.join().unwrap();
        single_thread.join().unwrap();
    }
}

#[test]
fn ingest_is_hash_partitioned_across_both_shards() {
    let (addr, cluster_thread) = boot_cluster(2);
    let mut c = ShardedClient::connect(addr).unwrap();
    c.create_sharded_stream("S", "(id int, v int)", "id", Some(2))
        .unwrap();
    c.register_query("all", "select id from [select * from S] as Z")
        .unwrap();
    let rport = c.attach_receptor_fmt("S", 0, WireFormat::Binary).unwrap();
    let eport = c.attach_emitter_fmt("all", 0, WireFormat::Binary).unwrap();

    let schema = Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)]);
    let mut sink = c.open_receptor_with(rport, WireFormat::Binary, &schema).unwrap();
    let mut tap = c.open_emitter_with(eport, WireFormat::Binary).unwrap();
    tap.set_timeout(Some(Duration::from_secs(30))).unwrap();

    sink.send_batch(&input_batch()).unwrap();
    sink.flush().unwrap();
    let out_schema = Schema::from_pairs(&[("id", ValueType::Int)]);
    let rows = tap.take_rows(&out_schema, 400).unwrap();
    assert_eq!(rows.len(), 400);

    // aggregated STATS parse with the standard typed report, and the
    // shard rows prove both engines carried real load
    let stats = c.stats_report().unwrap();
    assert_eq!(stats.basket("S").unwrap().total_in, 400, "{stats:?}");
    let q = stats.query("all").unwrap();
    assert_eq!(q.delivered_tuples, 400, "{stats:?}");
    assert_eq!(q.subscribers, 1, "{stats:?}");
    assert_eq!(stats.shards.len(), 2, "{stats:?}");
    for shard in &stats.shards {
        assert!(!shard.unreachable, "{shard:?}");
        assert!(
            shard.baskets_in > 50,
            "shard {} must carry a real share of 400 tuples: {shard:?}",
            shard.id
        );
    }

    c.shutdown().unwrap();
    cluster_thread.join().unwrap();
}

#[test]
fn same_key_lands_on_one_shard() {
    // all tuples share one key: exactly one engine must see them
    let (addr, cluster_thread) = boot_cluster(2);
    let mut c = ShardedClient::connect(addr).unwrap();
    c.create_sharded_stream("S", "(sym varchar, px int)", "sym", None)
        .unwrap();
    c.register_query("all", "select sym from [select * from S] as Z")
        .unwrap();
    let rport = c.attach_receptor("S", 0).unwrap();
    let eport = c.attach_emitter("all", 0).unwrap();
    let mut sink = c.open_receptor(rport).unwrap();
    let mut tap = c.open_emitter(eport).unwrap();
    tap.set_timeout(Some(Duration::from_secs(30))).unwrap();
    for _ in 0..60 {
        sink.send_row(&[Value::Str("ACME".into()), Value::Int(1)]).unwrap();
    }
    sink.flush().unwrap();
    let out_schema = Schema::from_pairs(&[("sym", ValueType::Str)]);
    assert_eq!(tap.take_rows(&out_schema, 60).unwrap().len(), 60);

    let stats = c.stats_report().unwrap();
    let loads: Vec<u64> = stats.shards.iter().map(|s| s.baskets_in).collect();
    assert_eq!(loads.iter().sum::<u64>(), 60, "{stats:?}");
    assert!(
        loads.contains(&0),
        "one key must co-locate on one shard: {loads:?}"
    );

    c.shutdown().unwrap();
    cluster_thread.join().unwrap();
}

#[test]
fn unsharded_streams_place_on_least_loaded_engine() {
    let (addr, cluster_thread) = boot_cluster(2);
    let mut c = ShardedClient::connect(addr).unwrap();
    // load shard engines unevenly through a sharded stream first
    c.create_sharded_stream("S", "(id int)", "id", None).unwrap();
    let rport = c.attach_receptor("S", 0).unwrap();
    let mut sink = c.open_receptor(rport).unwrap();
    for i in 0..100i64 {
        sink.send_row(&[Value::Int(i)]).unwrap();
    }
    sink.flush().unwrap();
    // wait until the load registered in shard STATS
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if c.stats_report().unwrap().basket("S").map(|b| b.total_in) == Some(100) {
            break;
        }
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }

    // an unsharded stream is a 1-shard stream; its single engine is
    // chosen by load, and the cluster still serves it end-to-end
    let body = c.request("CREATE STREAM solo (x int)").unwrap();
    assert!(body[0].contains("shards=1"), "{body:?}");
    c.register_query("solo_all", "select x from [select * from solo] as Z")
        .unwrap();
    let rp = c.attach_receptor("solo", 0).unwrap();
    let ep = c.attach_emitter("solo_all", 0).unwrap();
    let mut sink2 = c.open_receptor(rp).unwrap();
    let mut tap = c.open_emitter(ep).unwrap();
    tap.set_timeout(Some(Duration::from_secs(30))).unwrap();
    sink2.send_row(&[Value::Int(7)]).unwrap();
    sink2.flush().unwrap();
    let out_schema = Schema::from_pairs(&[("x", ValueType::Int)]);
    assert_eq!(
        tap.next_row(&out_schema).unwrap(),
        Some(vec![Value::Int(7)])
    );

    c.shutdown().unwrap();
    cluster_thread.join().unwrap();
}

#[test]
fn single_shard_binary_ingest_passthrough_round_trips() {
    // entry.engines.len() == 1 && FORMAT BINARY takes the verbatim
    // frame-relay ingest path (no decode in the router) — results and
    // STATS counters must be identical to the decoding path
    let (addr, cluster_thread) = boot_cluster(2);
    let mut c = ShardedClient::connect(addr).unwrap();
    c.create_sharded_stream("S", "(id int, tag varchar)", "id", Some(1))
        .unwrap();
    c.register_query("all", "select id, tag from [select * from S] as Z")
        .unwrap();
    let rport = c.attach_receptor_fmt("S", 0, WireFormat::Binary).unwrap();
    let eport = c.attach_emitter_fmt("all", 0, WireFormat::Binary).unwrap();
    let schema = Schema::from_pairs(&[("id", ValueType::Int), ("tag", ValueType::Str)]);
    let mut sink = c.open_receptor_with(rport, WireFormat::Binary, &schema).unwrap();
    let mut tap = c.open_emitter_with(eport, WireFormat::Binary).unwrap();
    tap.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut batch = Relation::from_columns(vec![
        ("id".into(), Column::from_ints(vec![1, 2])),
        (
            "tag".into(),
            Column::from_strs(vec!["a|b".into(), String::new()]),
        ),
    ])
    .unwrap();
    batch.append_row(&[Value::Int(3), Value::Null]).unwrap();
    sink.send_batch(&batch).unwrap();
    sink.flush().unwrap();
    let rows = tap.take_rows(&schema, 3).unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0], vec![Value::Int(1), Value::Str("a|b".into())]);
    assert_eq!(rows[1], vec![Value::Int(2), Value::Str(String::new())]);
    assert_eq!(rows[2], vec![Value::Int(3), Value::Null]);
    let stats = c.stats_report().unwrap();
    assert_eq!(stats.receptors[0].accepted, 3, "{stats:?}");
    c.shutdown().unwrap();
    cluster_thread.join().unwrap();
}

#[test]
fn cluster_control_plane_rejects_bad_requests() {
    let (addr, cluster_thread) = boot_cluster(2);
    let mut c = ShardedClient::connect(addr).unwrap();
    c.create_sharded_stream("S", "(id int)", "id", None).unwrap();
    // duplicate stream
    assert!(c.create_sharded_stream("S", "(id int)", "id", None).is_err());
    // unknown key column
    assert!(c
        .create_sharded_stream("T", "(id int)", "nosuch", None)
        .is_err());
    // more shards than engines
    assert!(c
        .create_sharded_stream("U", "(id int)", "id", Some(99))
        .is_err());
    // unknown stream/query on ATTACH
    assert!(c.attach_receptor("nosuch", 0).is_err());
    assert!(c.attach_emitter("nosuch", 0).is_err());
    // bad SQL fans out and fails everywhere
    assert!(c.register_query("broken", "selectt nonsense").is_err());
    // EXEC: a stream create routes through the shard map (placement)...
    let body = c.exec("create stream ES (x int)").unwrap();
    assert!(body[0].contains("shards=1"), "{body:?}");
    // ...setup DDL fans out, but data statements are rejected outright
    c.exec("create table REF (k int)").unwrap();
    assert!(c.exec("insert into REF values (1)").is_err());
    assert!(c.exec("select * from REF").is_err());
    // the session survives all of the above
    c.ping().unwrap();
    c.shutdown().unwrap();
    cluster_thread.join().unwrap();
}

#[test]
fn cluster_metrics_merge_and_trace_dump() {
    // METRICS on the router is the bucket-wise merge of every shard's
    // exposition plus the shard_up gauge; TRACE DUMP carries per-shard
    // firing events tagged with their origin
    let (addr, cluster_thread) = boot_cluster(2);
    let mut c = ShardedClient::connect(addr).unwrap();
    c.create_sharded_stream("S", "(id int, v int)", "id", None)
        .unwrap();
    c.register_query("all", "select id from [select * from S] as Z")
        .unwrap();
    let rport = c.attach_receptor("S", 0).unwrap();
    let eport = c.attach_emitter("all", 0).unwrap();
    let mut sink = c.open_receptor(rport).unwrap();
    let mut tap = c.open_emitter(eport).unwrap();
    tap.set_timeout(Some(Duration::from_secs(30))).unwrap();
    for i in 0..200i64 {
        sink.send_row(&[Value::Int(i), Value::Int(i)]).unwrap();
    }
    sink.flush().unwrap();
    let out_schema = Schema::from_pairs(&[("id", ValueType::Int)]);
    assert_eq!(tap.take_rows(&out_schema, 200).unwrap().len(), 200);

    let body = c.metrics().unwrap();
    let samples = dctrace::parse_exposition(&body).expect("merged exposition must parse");
    // both shards report up
    for shard in 0..2 {
        let up = samples
            .iter()
            .find(|s| s.name == "dc_shard_up" && s.labels == format!("shard=\"{shard}\""))
            .expect("shard_up gauge");
        assert_eq!(up.value, 1.0, "{up:?}");
    }
    // the merged fire histogram sums both shards' firings
    let fire_count = samples
        .iter()
        .find(|s| s.name == "dc_fire_micros_count" && s.labels.contains("query=\"all\""))
        .expect("merged fire histogram");
    assert!(fire_count.value >= 2.0, "both shards fired: {fire_count:?}");

    // aggregated STATS carries the worst-shard latency summary
    let stats = c.stats_report().unwrap();
    let q = stats.query("all").unwrap();
    assert!(q.max_micros >= q.p50_micros, "{q:?}");

    // TRACE DUMP merges shard recorders, each line tagged with its origin
    let dump = c.trace_dump_query("all").unwrap();
    assert!(
        dump.iter()
            .any(|l| l.starts_with("shard=") && l.contains("kind=fire_end")),
        "{dump:?}"
    );
    assert!(c.trace_dump_query("nosuch").unwrap().is_empty());

    c.shutdown().unwrap();
    cluster_thread.join().unwrap();
}

#[test]
fn cluster_trace_stream_relays_shard_events() {
    // TRACE QUERY ON opens a logical tap port relaying live flight-recorder
    // lines from every shard running the query
    let (addr, cluster_thread) = boot_cluster(2);
    let mut c = ShardedClient::connect(addr).unwrap();
    c.create_sharded_stream("S", "(id int)", "id", None).unwrap();
    c.register_query("all", "select id from [select * from S] as Z")
        .unwrap();
    let rport = c.attach_receptor("S", 0).unwrap();
    let eport = c.attach_emitter("all", 0).unwrap();

    let tport = c.trace_on("all").unwrap();
    let mut trace = c.open_trace(tport).unwrap();
    trace.set_timeout(Some(Duration::from_secs(30))).unwrap();

    let mut sink = c.open_receptor(rport).unwrap();
    let mut tap = c.open_emitter(eport).unwrap();
    tap.set_timeout(Some(Duration::from_secs(30))).unwrap();
    for i in 0..50i64 {
        sink.send_row(&[Value::Int(i)]).unwrap();
    }
    sink.flush().unwrap();
    let out_schema = Schema::from_pairs(&[("id", ValueType::Int)]);
    assert_eq!(tap.take_rows(&out_schema, 50).unwrap().len(), 50);

    let line = trace.next_line().unwrap().expect("live trace line");
    assert!(line.contains("kind="), "{line}");
    c.trace_off("all").unwrap();
    assert!(c.trace_on("nosuch").is_err());

    c.shutdown().unwrap();
    cluster_thread.join().unwrap();
}

#[test]
fn explain_routes_through_the_router() {
    let (addr, cluster_thread) = boot_cluster(2);
    let mut c = ShardedClient::connect(addr).unwrap();
    c.create_sharded_stream("S", "(id int, v int, w int)", "id", None)
        .unwrap();
    c.register_query(
        "hot",
        "select id from [select id, v from S where v > 10] as Z",
    )
    .unwrap();

    // raw-script EXPLAIN forwards to a shard engine and comes back whole
    let plan = c
        .explain("select id from [select id, v from S where v > 10] as Z")
        .unwrap()
        .join("\n");
    assert!(plan.contains("fast select"), "{plan}");
    assert!(plan.contains("cols=id,v"), "pruned columns survive routing: {plan}");

    // EXPLAIN QUERY resolves through the router's registry; the shard's
    // live delta line rides along
    let plan = c.explain_query("hot").unwrap().join("\n");
    assert!(plan.starts_with("query hot AS "), "{plan}");
    assert!(plan.contains("lineage=selection-vector"), "{plan}");
    assert!(plan.contains("delta delta_rows="), "{plan}");
    assert!(c.explain_query("nosuch").is_err());

    // delta-capable shapes render their physical operators through the
    // router too
    let plan = c
        .explain("select A.v as a, B.w as b from A, B where A.id = B.id")
        .unwrap()
        .join("\n");
    assert!(plan.contains("hash_join"), "{plan}");
    assert!(plan.contains("arrange A.id (shared)"), "{plan}");
    assert!(plan.contains("mode delta|full"), "{plan}");
    let plan = c
        .explain("select k, count(*) as n from A group by k")
        .unwrap()
        .join("\n");
    assert!(plan.contains("grouped_agg"), "{plan}");

    // aggregated STATS still parses with the new plan fields in the line
    let stats = c.stats_report().unwrap();
    assert!(stats.query("hot").is_some(), "{stats:?}");

    c.shutdown().unwrap();
    cluster_thread.join().unwrap();
}

#[test]
fn detach_fans_out_to_every_shard() {
    let (addr, cluster_thread) = boot_cluster(2);
    let mut c = ShardedClient::connect(addr).unwrap();
    c.create_sharded_stream("S", "(id int, v int)", "id", None)
        .unwrap();
    c.register_query("all", "select id from [select * from S] as Z")
        .unwrap();
    let rport = c.attach_receptor("S", 0).unwrap();
    let eport = c.attach_emitter("all", 0).unwrap();

    // each logical port fronts one shard-side port per engine; DETACH
    // reports how many of those it closed
    let body = c.request(&format!("DETACH RECEPTOR S PORT {rport}")).unwrap();
    assert_eq!(body, vec!["detached=2".to_string()]);
    let body = c.request(&format!("DETACH EMITTER all PORT {eport}")).unwrap();
    assert_eq!(body, vec!["detached=2".to_string()]);

    let stats = c.stats_report().unwrap();
    assert!(stats.receptors.is_empty(), "{stats:?}");
    assert!(stats.emitters.is_empty(), "{stats:?}");
    assert!(c.detach_receptor("S", rport).is_err());

    // fresh attachments still work end to end
    let rport2 = c.attach_receptor("S", 0).unwrap();
    assert_ne!(rport2, 0);

    c.shutdown().unwrap();
    cluster_thread.join().unwrap();
}

#[test]
fn register_query_reports_partial_success_detail() {
    let (addr, cluster_thread) = boot_cluster(2);
    let mut c = ShardedClient::connect(addr).unwrap();
    // an UNSHARDED stream lives on exactly one of the two engines, so a
    // query over it registers on one engine and is declined by the other
    c.create_stream("solo", "(x int)").unwrap();
    let body = c
        .request("REGISTER QUERY one AS select x from [select * from solo] as Z")
        .unwrap();
    let summary = &body[0];
    assert!(summary.starts_with("query=one "), "{summary}");
    assert!(summary.contains("skipped=1"), "{summary}");
    // one detail line per declining engine, carrying its exact error
    assert_eq!(body.len(), 2, "{body:?}");
    assert!(body[1].starts_with("skipped engine="), "{body:?}");
    assert!(body[1].contains("error="), "{body:?}");

    // the typed STATS report shows the narrowed placement
    let stats = c.stats_report().unwrap();
    let q = stats.query("one").expect("query row");
    assert_eq!(q.engines.split(',').count(), 1, "{q:?}");

    // a fully-resolving query reports skipped=0 and both engines
    c.create_sharded_stream("S", "(id int)", "id", None).unwrap();
    let body = c
        .request("REGISTER QUERY all AS select id from [select * from S] as Z")
        .unwrap();
    assert_eq!(body.len(), 1, "{body:?}");
    assert!(body[0].contains("engines=0,1"), "{body:?}");
    assert!(body[0].contains("skipped=0"), "{body:?}");

    c.shutdown().unwrap();
    cluster_thread.join().unwrap();
}

#[test]
fn persistent_sharded_stream_logs_and_seals_per_shard() {
    let dir = std::env::temp_dir().join(format!(
        "dc-cluster-persist-{}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut config = ClusterConfig::in_process(2);
    config.engine.data_dir = Some(dir.clone());
    let cluster = bind_cluster("127.0.0.1:0", config).expect("bind cluster");
    let addr = cluster.local_addr().unwrap();
    let cluster_thread = std::thread::spawn(move || {
        cluster.serve().expect("serve cluster");
    });

    let mut c = ShardedClient::connect(addr).unwrap();
    let body = c
        .request("CREATE STREAM S (id int, v int) PERSIST SHARD BY (id)")
        .unwrap();
    assert!(body[0].contains("persistent=true"), "{body:?}");

    let rport = c.attach_receptor_fmt("S", 0, WireFormat::Binary).unwrap();
    let schema = Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)]);
    let mut sink = c
        .open_receptor_with(rport, WireFormat::Binary, &schema)
        .unwrap();
    sink.send_batch(&input_batch()).unwrap();
    sink.flush().unwrap();

    // aggregated STATS: the logical basket row is persistent and its
    // WAL bytes sum the per-shard logs
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    let basket = loop {
        let stats = c.stats_report().unwrap();
        let b = stats.basket("S").expect("basket row").clone();
        if b.total_in >= 400 || std::time::Instant::now() > deadline {
            break b;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(basket.total_in, 400, "{basket:?}");
    assert!(basket.persistent, "{basket:?}");
    assert!(basket.wal_bytes > 0, "{basket:?}");

    // FLUSH STREAM fans out and sums the per-shard sealed rows
    let sealed = c.flush_stream("S").unwrap();
    assert_eq!(sealed, 400);
    let stats = c.stats_report().unwrap();
    let basket = stats.basket("S").expect("basket row");
    assert!(basket.segments >= 2, "one+ segment per shard: {basket:?}");
    assert_eq!(basket.wal_bytes, 0, "wals truncated after seal: {basket:?}");

    // both shards persisted under their own roots
    assert!(dir.join("shard-0").join("streams").join("S").is_dir());
    assert!(dir.join("shard-1").join("streams").join("S").is_dir());

    c.shutdown().unwrap();
    cluster_thread.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Group rendered `TRACE SPANS` output back into `(batch id, span lines)`.
fn span_groups(lines: &[String]) -> Vec<(u64, Vec<String>)> {
    let mut groups: Vec<(u64, Vec<String>)> = Vec::new();
    for l in lines {
        if let Some(rest) = l.strip_prefix("batch ") {
            let id: u64 = rest
                .split_whitespace()
                .next()
                .and_then(|t| t.parse().ok())
                .unwrap_or_else(|| panic!("bad batch header: {l}"));
            groups.push((id, Vec::new()));
        } else if let Some((_, spans)) = groups.last_mut() {
            spans.push(l.clone());
        }
    }
    groups
}

#[test]
fn distributed_trace_spans_metrics_history_and_health() {
    // the observability acceptance loop: one sampled batch through a
    // 2-shard persistent cluster must reconstruct as a single span tree
    // spanning the router and both shard recorders; the router's
    // snapshot ring must yield a non-zero windowed ingest rate; HEALTH
    // must score both shards
    let dir = std::env::temp_dir().join(format!(
        "dc-cluster-trace-{}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut config = ClusterConfig::in_process(2);
    config.engine.data_dir = Some(dir.clone());
    config.engine.trace_sample = 1; // stamp every batch
    let cluster = bind_cluster("127.0.0.1:0", config).expect("bind cluster");
    let addr = cluster.local_addr().unwrap();
    let rt = std::sync::Arc::clone(cluster.runtime());
    let cluster_thread = std::thread::spawn(move || {
        cluster.serve().expect("serve cluster");
    });

    let mut c = ShardedClient::connect(addr).unwrap();
    c.request("CREATE STREAM S (id int, v int) PERSIST SHARD BY (id)")
        .unwrap();
    c.register_query("all", "select id from [select * from S] as Z")
        .unwrap();
    let rport = c.attach_receptor_fmt("S", 0, WireFormat::Binary).unwrap();
    let eport = c.attach_emitter_fmt("all", 0, WireFormat::Binary).unwrap();
    let schema = Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)]);
    let mut sink = c
        .open_receptor_with(rport, WireFormat::Binary, &schema)
        .unwrap();
    let mut tap = c.open_emitter_with(eport, WireFormat::Binary).unwrap();
    tap.set_timeout(Some(Duration::from_secs(30))).unwrap();

    // baseline snapshot before any ingest, so the next one has a window
    rt.capture_metrics_now();

    sink.send_batch(&input_batch()).unwrap();
    sink.flush().unwrap();
    let out_schema = Schema::from_pairs(&[("id", ValueType::Int)]);
    assert_eq!(tap.take_rows(&out_schema, 400).unwrap().len(), 400);

    // ---- TRACE SPANS: the cross-process span tree --------------------
    // results delivered ⇒ every hop already recorded; poll only to let
    // straggler emitter writes land
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    let (batch_id, spans) = loop {
        let body = c.trace_spans(None).unwrap();
        let groups = span_groups(&body);
        let complete = groups.into_iter().find(|(_, spans)| {
            let router_receptor = spans
                .iter()
                .any(|l| l.contains("shard=router") && l.contains("hop=receptor"));
            let forward = spans
                .iter()
                .any(|l| l.contains("shard=router") && l.contains("hop=forward"));
            let shard_receptor = spans.iter().any(|l| {
                !l.contains("shard=router") && l.contains("hop=receptor")
            });
            let wal = spans.iter().any(|l| l.contains("hop=wal_append"));
            let dwell = spans.iter().any(|l| l.contains("hop=basket_dwell"));
            let fire = spans.iter().any(|l| l.contains("hop=fire"));
            let emitter = spans.iter().any(|l| l.contains("hop=emitter"));
            router_receptor && forward && shard_receptor && wal && dwell && fire && emitter
        });
        if let Some(found) = complete {
            break found;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no complete span tree: {body:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    // the batch hash-split across both shards: both recorders contribute
    // spans under the SAME batch id
    assert!(
        spans.iter().any(|l| l.contains("shard=0 ")),
        "{spans:?}"
    );
    assert!(
        spans.iter().any(|l| l.contains("shard=1 ")),
        "{spans:?}"
    );
    // BATCH filter narrows to exactly this tree
    let one = c.trace_spans(Some(batch_id)).unwrap();
    let one_groups = span_groups(&one);
    assert_eq!(one_groups.len(), 1, "{one:?}");
    assert_eq!(one_groups[0].0, batch_id, "{one:?}");

    // ---- METRICS HISTORY: windowed ingest rate -----------------------
    // wait for both shards' ingest counters, then force two more ticks:
    // the 2nd derives the windowed gauges, the 3rd snapshots them
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    while c.stats_report().unwrap().basket("S").map(|b| b.total_in) != Some(400) {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }
    rt.capture_metrics_now();
    rt.capture_metrics_now();
    let history = c.metrics_history(None, None).unwrap();
    let mut stamps: Vec<&str> = history
        .iter()
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    stamps.dedup();
    assert!(stamps.len() >= 2, "need >= 2 snapshots: {stamps:?}");
    let rate_lines = c.metrics_history(Some("dc_ingest_rate"), None).unwrap();
    assert!(
        rate_lines.iter().any(|l| {
            l.split_whitespace()
                .last()
                .and_then(|v| v.parse::<f64>().ok())
                .is_some_and(|v| v > 0.0)
        }),
        "windowed ingest rate must be non-zero: {rate_lines:?}"
    );
    // LAST n truncates to the most recent snapshots
    let last_one = c.metrics_history(None, Some(1)).unwrap();
    let mut last_stamps: Vec<&str> = last_one
        .iter()
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    last_stamps.dedup();
    assert_eq!(last_stamps.len(), 1, "{last_stamps:?}");

    // ---- HEALTH + health gauges --------------------------------------
    let health = c.health().unwrap();
    assert_eq!(health.len(), 2, "{health:?}");
    for (i, line) in health.iter().enumerate() {
        assert!(line.starts_with(&format!("shard {i} addr=")), "{line}");
        let score: u64 = line
            .split_whitespace()
            .find_map(|t| t.strip_prefix("score="))
            .and_then(|v| v.parse().ok())
            .expect("score field");
        // live in-process shards must never read as down
        assert!(score > 0, "{line}");
        assert!(line.contains("reasons="), "{line}");
    }
    let samples = dctrace::parse_exposition(&c.metrics().unwrap()).unwrap();
    for shard in 0..2 {
        let g = samples
            .iter()
            .find(|s| {
                s.name == "dc_health_score" && s.labels == format!("shard=\"{shard}\"")
            })
            .expect("dc_health_score{shard} gauge");
        assert!(g.value > 0.0, "{g:?}");
    }
    // the router republishes ONE uptime gauge (shard-local copies are
    // dropped before the merge, so the value is never a 3-way sum)
    assert_eq!(
        samples
            .iter()
            .filter(|s| s.name == "dc_uptime_seconds")
            .count(),
        1,
        "derived gauges must not merge across shards"
    );

    c.shutdown().unwrap();
    cluster_thread.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
