//! Router-level replication & failover tests on in-process shard
//! engines: a replicated cluster ships durable state to followers,
//! promotes a follower when the primary's health polls miss, re-points
//! the logical data-plane ports, and survives the classic retry
//! hazards (duplicate CREATE after promotion, dead follower).
//!
//! The real-process `kill -9` version lives in
//! `crates/server/tests/failover_e2e.rs`; these tests exercise the same
//! promotion protocol deterministically by driving the health poll and
//! replication pump by hand.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use datacell::frame::WireFormat;
use datacell::partition::Partitioner;
use dccluster::{bind_cluster, ClusterConfig, ClusterRuntime};
use dcserver::client::{Client, ShardedClient};
use monet::prelude::*;

struct TestCluster {
    addr: SocketAddr,
    rt: Arc<ClusterRuntime>,
    thread: Option<std::thread::JoinHandle<()>>,
    dir: std::path::PathBuf,
}

impl TestCluster {
    fn boot(shards: usize, tag: &str) -> TestCluster {
        let dir = std::env::temp_dir().join(format!(
            "dc-failover-{tag}-{}-{:?}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut config = ClusterConfig::in_process_replicated(shards);
        config.engine.data_dir = Some(dir.clone());
        // fast + deterministic: tests drive the pump and health poll by
        // hand, the background pump just must not get in the way
        config.failover_misses = 2;
        config.control.connect_timeout = Duration::from_millis(500);
        config.control.io_timeout = Duration::from_secs(5);
        config.control.backoff_base = Duration::from_millis(50);
        config.control.backoff_max = Duration::from_millis(200);
        let cluster = bind_cluster("127.0.0.1:0", config).expect("bind cluster");
        let addr = cluster.local_addr().unwrap();
        let rt = Arc::clone(cluster.runtime());
        let thread = std::thread::spawn(move || {
            cluster.serve().expect("serve cluster");
        });
        TestCluster {
            addr,
            rt,
            thread: Some(thread),
            dir,
        }
    }

    /// Pump until every shard of `stream` reports `lag_rows=0`.
    fn pump_until_synced(&self, c: &mut ShardedClient, stream: &str) {
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            self.rt.pump_replication_now();
            let body = c.request(&format!("REPL STATUS {stream}")).unwrap();
            if !body.is_empty() && body.iter().all(|l| l.contains("lag_rows=0")) {
                return;
            }
            assert!(Instant::now() < deadline, "replication never synced: {body:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Kill one engine (primary or follower) by control address — the
    /// in-process equivalent of `kill -9` for connection purposes: after
    /// SHUTDOWN the port refuses, exactly what the health poll sees.
    fn kill_engine(addr: &str) {
        let sock: SocketAddr = addr.parse().unwrap();
        let mut c = Client::connect(sock).unwrap();
        let _ = c.shutdown();
        // wait until the port actually refuses
        let deadline = Instant::now() + Duration::from_secs(10);
        while std::net::TcpStream::connect_timeout(&sock, Duration::from_millis(100)).is_ok() {
            assert!(Instant::now() < deadline, "engine at {addr} never died");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Drive health polls until shard `eid` reports a failover.
    fn wait_for_failover(&self, c: &mut ShardedClient, eid: usize) {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            self.rt.capture_metrics_now();
            let stats = c.stats_report().unwrap();
            if stats.shards[eid].failovers >= 1 {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "shard {eid} never failed over: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    fn finish(mut self, c: &mut ShardedClient) {
        c.shutdown().unwrap();
        self.thread.take().unwrap().join().unwrap();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

const SCHEMA: &str = "(id int, v int)";

fn batch(ids: std::ops::Range<i64>) -> Relation {
    Relation::from_columns(vec![
        ("id".into(), Column::from_ints(ids.clone().collect())),
        ("v".into(), Column::from_ints(ids.map(|i| i * 3).collect())),
    ])
    .unwrap()
}

/// The ids of `rel` that hash to shard `shard` of `shards` — the same
/// deterministic splitmix the router's forwarder uses.
fn ids_on_shard(rel: &Relation, shard: usize, shards: usize) -> Vec<i64> {
    let p = Partitioner::new(0, shards).unwrap();
    let mut out = Vec::new();
    for i in 0..rel.len() {
        if p.shard_of(rel, i).unwrap() == shard {
            match rel.col_at(0).get(i) {
                Value::Int(id) => out.push(id),
                other => panic!("unexpected key {other:?}"),
            }
        }
    }
    out.sort_unstable();
    out
}

#[test]
fn primary_kill_promotes_follower_without_losing_replicated_rows() {
    let tc = TestCluster::boot(2, "promote");
    let mut c = ShardedClient::connect(tc.addr).unwrap();
    let body = c
        .request(&format!("CREATE STREAM S {SCHEMA} PERSIST SHARD BY (id)"))
        .unwrap();
    assert!(body[0].contains("persistent=true"), "{body:?}");
    let rport = c.attach_receptor_fmt("S", 0, WireFormat::Binary).unwrap();
    let schema = Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)]);
    let out_schema = Schema::from_pairs(&[("id", ValueType::Int)]);
    let mut sink = c
        .open_receptor_with(rport, WireFormat::Binary, &schema)
        .unwrap();

    // phase 1: 400 rows with no consumer, sealed into per-shard
    // segments (FLUSH snapshots the basket and truncates the WALs)
    sink.send_batch(&batch(0..400)).unwrap();
    sink.flush().unwrap();
    let deadline = Instant::now() + Duration::from_secs(15);
    while c.stats_report().unwrap().basket("S").map(|b| b.total_in) != Some(400) {
        assert!(Instant::now() < deadline, "phase-1 rows never landed");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(c.flush_stream("S").unwrap(), 400);

    // the standing query watches phase-2 ids only, so registering it
    // (which drains the 400 sealed rows from the baskets) emits nothing
    // and every later emission is attributable
    c.register_query("all", "select id from [select * from S] as Z where Z.id >= 400")
        .unwrap();
    let eport = c.attach_emitter_fmt("all", 0, WireFormat::Binary).unwrap();
    let mut tap = c.open_emitter_with(eport, WireFormat::Binary).unwrap();
    tap.set_timeout(Some(Duration::from_secs(30))).unwrap();

    // phase 2: 100 more rows that stay in the WAL tail
    sink.send_batch(&batch(400..500)).unwrap();
    sink.flush().unwrap();
    assert_eq!(tap.take_rows(&out_schema, 100).unwrap().len(), 100);
    tc.pump_until_synced(&mut c, "S");

    // both replica roots materialized, and shard 0's sealed segments
    // were shipped file-for-file
    let replica0 = tc.dir.join("shard-0-replica").join("streams").join("S");
    assert!(replica0.is_dir());
    assert!(tc.dir.join("shard-1-replica").join("streams").join("S").is_dir());
    let shipped_segs = std::fs::read_dir(&replica0)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".dcs"))
        .count();
    assert!(shipped_segs >= 1, "phase-1 segment must reach the replica");
    let stats = c.stats_report().unwrap();
    let primary0 = stats.shards[0].addr.clone();
    let follower0 = stats.shards[0].follower.clone();
    assert_ne!(follower0, "-", "{stats:?}");
    assert_eq!(stats.shards[0].failovers, 0, "{stats:?}");

    TestCluster::kill_engine(&primary0);
    tc.wait_for_failover(&mut c, 0);

    // topology re-pointed: the follower is the new primary
    let stats = c.stats_report().unwrap();
    assert_eq!(stats.shards[0].addr, follower0, "{stats:?}");
    assert_eq!(stats.shards[0].follower, "-", "{stats:?}");
    assert_eq!(stats.shards[0].failovers, 1, "{stats:?}");
    assert!(!stats.shards[0].unreachable, "{stats:?}");

    // the promoted engine replayed its WAL tail into the live basket and
    // the re-registered query re-emitted those rows (at-least-once): the
    // still-open emitter subscription sees exactly shard 0's slice of
    // the unsealed phase-2 batch
    let wal_resident = ids_on_shard(&batch(400..500), 0, 2);
    assert!(!wal_resident.is_empty(), "test needs phase-2 rows on shard 0");
    let replayed = tap.take_rows(&out_schema, wal_resident.len()).unwrap();
    let mut got: Vec<i64> = replayed
        .iter()
        .map(|r| match r[0] {
            Value::Int(id) => id,
            ref other => panic!("unexpected row {other:?}"),
        })
        .collect();
    got.sort_unstable();
    assert_eq!(got, wal_resident, "replayed emission must be shard 0's WAL tail");

    // fresh ingest flows end-to-end through the promoted topology (new
    // receptor connection: it resolves shard addresses at accept time)
    let mut sink2 = c
        .open_receptor_with(rport, WireFormat::Binary, &schema)
        .unwrap();
    sink2.send_batch(&batch(500..600)).unwrap();
    sink2.flush().unwrap();
    assert_eq!(tap.take_rows(&out_schema, 100).unwrap().len(), 100);

    // HEALTH scores the promoted shard as live again
    let health = c.health().unwrap();
    assert!(
        health[0].starts_with(&format!("shard 0 addr={follower0}")),
        "{health:?}"
    );
    let score: u64 = health[0]
        .split_whitespace()
        .find_map(|t| t.strip_prefix("score="))
        .and_then(|v| v.parse().ok())
        .unwrap();
    assert!(score > 0, "{health:?}");

    tc.finish(&mut c);
}

#[test]
fn create_retry_after_promotion_does_not_double_create_or_leak_ports() {
    let tc = TestCluster::boot(2, "retry");
    let mut c = ShardedClient::connect(tc.addr).unwrap();
    let ddl = format!("CREATE STREAM S {SCHEMA} PERSIST SHARD BY (id)");
    c.request(&ddl).unwrap();
    c.register_query("all", "select id from [select * from S] as Z")
        .unwrap();
    let rport = c.attach_receptor_fmt("S", 0, WireFormat::Binary).unwrap();
    tc.pump_until_synced(&mut c, "S");

    let stats = c.stats_report().unwrap();
    let ports_before = stats.receptors.len();
    TestCluster::kill_engine(&stats.shards[0].addr.clone());
    tc.wait_for_failover(&mut c, 0);

    // a client whose CREATE ack was lost retries the identical DDL after
    // the promotion: the router must reject it as a duplicate...
    let err = c.request(&ddl).expect_err("duplicate CREATE must fail");
    assert!(err.to_string().contains("duplicate"), "{err}");
    // ...without disturbing the shard map, the promoted engine's stream,
    // or the logical port set
    let stats = c.stats_report().unwrap();
    assert_eq!(
        stats.streams.iter().filter(|s| s.name == "S").count(),
        1,
        "{stats:?}"
    );
    assert_eq!(stats.server.streams, 1, "{stats:?}");
    assert_eq!(stats.receptors.len(), ports_before, "{stats:?}");
    assert_eq!(stats.shards[0].failovers, 1, "{stats:?}");

    // the surviving port still ingests into the promoted topology
    let schema = Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)]);
    let mut sink = c
        .open_receptor_with(rport, WireFormat::Binary, &schema)
        .unwrap();
    sink.send_batch(&batch(0..50)).unwrap();
    sink.flush().unwrap();
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let stats = c.stats_report().unwrap();
        if stats.basket("S").map(|b| b.total_in) == Some(50) {
            break;
        }
        assert!(Instant::now() < deadline, "{stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    tc.finish(&mut c);
}

#[test]
fn dead_follower_raises_replication_stalled_without_failover() {
    let tc = TestCluster::boot(2, "stall");
    let mut c = ShardedClient::connect(tc.addr).unwrap();
    c.request(&format!("CREATE STREAM S {SCHEMA} PERSIST SHARD BY (id)"))
        .unwrap();
    tc.pump_until_synced(&mut c, "S");

    let stats = c.stats_report().unwrap();
    let follower0 = stats.shards[0].follower.clone();
    assert_ne!(follower0, "-");
    TestCluster::kill_engine(&follower0);

    // pump into the dead follower until the stall threshold trips
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        tc.rt.pump_replication_now();
        let body = c.request("REPL STATUS S").unwrap();
        if body[0].contains("stalled=true") {
            break;
        }
        assert!(Instant::now() < deadline, "never stalled: {body:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // the primary is unaffected: HEALTH degrades with the new reason but
    // never fails the shard over (there is nothing to promote onto)
    let health = c.health().unwrap();
    assert!(health[0].contains("replication_stalled"), "{health:?}");
    let stats = c.stats_report().unwrap();
    assert_eq!(stats.shards[0].failovers, 0, "{stats:?}");
    assert!(!stats.shards[0].unreachable, "{stats:?}");

    // transfer verbs stay shard-engine-only on the router
    let err = c.request("REPL PROMOTE").expect_err("router must reject");
    assert!(err.to_string().contains("shard-engine"), "{err}");

    tc.finish(&mut c);
}
