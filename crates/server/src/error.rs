//! Server-level errors.

use std::fmt;

use datacell::error::EngineError;

/// Errors raised by `datacelld` — the control plane, session manager and
/// runtime supervision layers.
#[derive(Debug)]
pub enum ServerError {
    /// The underlying DataCell engine rejected an operation.
    Engine(EngineError),
    /// A malformed control-plane command.
    Protocol(String),
    /// Unknown stream/query name.
    Unknown(String),
    /// Name already registered.
    Duplicate(String),
    /// Socket / binding failure.
    Io(String),
    /// The server is shutting down and rejects new work.
    ShuttingDown,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Engine(e) => write!(f, "engine: {e}"),
            ServerError::Protocol(m) => write!(f, "protocol: {m}"),
            ServerError::Unknown(n) => write!(f, "unknown name: {n}"),
            ServerError::Duplicate(n) => write!(f, "duplicate name: {n}"),
            ServerError::Io(m) => write!(f, "io: {m}"),
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<EngineError> for ServerError {
    fn from(e: EngineError) -> Self {
        ServerError::Engine(e)
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e.to_string())
    }
}

/// Server result alias.
pub type Result<T> = std::result::Result<T, ServerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            ServerError::Unknown("q".into()).to_string(),
            "unknown name: q"
        );
        assert_eq!(
            ServerError::Protocol("bad".into()).to_string(),
            "protocol: bad"
        );
        let e: ServerError = EngineError::Duplicate("S".into()).into();
        assert_eq!(e.to_string(), "engine: duplicate name: S");
    }
}
