//! # dcserver — the standalone DataCell stream server
//!
//! The paper's architecture (§3.1) connects a relational kernel to the
//! outside world through receptors and emitters. This crate assembles the
//! `datacell` engine into a long-running daemon, `datacelld`, that real
//! clients talk to over TCP:
//!
//! * a **control plane** (one listener, line-oriented commands — see
//!   [`protocol`]) for DDL, continuous-query registration and
//!   introspection;
//! * a **data plane** of per-stream receptor ports (ingest) and per-query
//!   emitter ports (result delivery), attached on demand;
//! * a **session manager** ([`session`]) tracking client connections and
//!   per-query result fan-out;
//! * a **runtime** ([`runtime`]) supervising the thread-per-factory
//!   scheduler, accept loops and pumps, with graceful shutdown.
//!
//! The [`client`] module is the matching client library (`dcclient`).
//!
//! ## Port layout
//!
//! ```text
//!                 ┌──────────────────────────────────────┐
//!  control :7077  │ CREATE STREAM / REGISTER QUERY /     │
//!  ─────────────▶ │ ATTACH ... / STATS / SHUTDOWN        │
//!                 │                                      │
//!  receptor :p1   │ S ──▶ [baskets] ──▶ factories ──▶ Q  │  emitter :p2
//!  tuples in ───▶ │          (ThreadedScheduler)         │ ───▶ tuples out
//!                 └──────────────────────────────────────┘
//! ```
//!
//! Receptor/emitter ports speak a per-port wire format negotiated at
//! `ATTACH` time: the engine's textual tuple format ([`datacell::net`],
//! `|`-separated fields, one tuple per line — the default) or columnar
//! binary frames ([`datacell::frame`]) that move whole `Relation`
//! batches end-to-end.

pub mod client;
pub mod control;
pub mod error;
pub mod protocol;
pub mod runtime;
pub mod session;
pub mod stats;

pub use client::{Client, ShardedClient};
pub use control::ControlServer;
pub use error::{Result, ServerError};
pub use runtime::{ServerConfig, ServerRuntime};
pub use stats::StatsReport;

use std::sync::Arc;

use datacell::engine::DataCell;

/// Build a server on a fresh engine and bind its control plane.
///
/// Returns the bound control server; call [`ControlServer::serve`] to run
/// it (blocking) and use [`ControlServer::local_addr`] for the actual
/// port when binding ephemeral.
pub fn bind(control_addr: &str, config: ServerConfig) -> Result<ControlServer> {
    let engine = Arc::new(DataCell::new());
    bind_with_engine(control_addr, config, engine)
}

/// Build a server around an existing engine (tests, embedded use).
pub fn bind_with_engine(
    control_addr: &str,
    config: ServerConfig,
    engine: Arc<DataCell>,
) -> Result<ControlServer> {
    // when a data dir is configured, ServerRuntime::new replays the
    // durable state into the engine before the listener is bound — a
    // client can never connect to a partially recovered server
    let runtime = ServerRuntime::new(engine, config)?;
    ControlServer::bind(control_addr, runtime)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_on_ephemeral_port() {
        let server = bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
        // tear down without serving
        server.runtime().request_shutdown();
        server.runtime().shutdown();
    }
}
