//! The server runtime: engine + scheduler + data-plane supervision.
//!
//! Wires the pieces of the paper's Figure 1 into one supervised process:
//! a [`DataCell`] engine, a thread-per-factory [`ThreadedScheduler`] that
//! accepts factories dynamically as clients register queries, receptor
//! accept loops feeding stream baskets from TCP sensors, and emitter
//! fan-out threads delivering query results to TCP subscribers — with a
//! single stop flag driving graceful shutdown of the whole tree.

use std::io::BufRead;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use datacell::emitter::Emitter;
use datacell::engine::{DataCell, QueryOptions};
use datacell::frame::{decode_frame, WireFormat};
use datacell::net::parse_row;
use datacell::scheduler::ThreadedScheduler;
use monet::prelude::*;
use parking_lot::Mutex;

use crate::error::{Result, ServerError};
use crate::session::{QueryHandle, QueryRegistry, SessionManager};

/// How long blocking reads/accepts wait before re-checking the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);
/// Upper bound on a single emitter socket write (a stalled subscriber is
/// disconnected rather than allowed to wedge delivery and shutdown).
const EMITTER_WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Receptor batching: flush after this many buffered rows.
const RECEPTOR_BATCH: usize = 4096;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Host data-plane listeners bind to (control plane binds separately).
    pub data_host: String,
    /// Idle backoff for factory threads.
    pub idle_backoff: Duration,
    /// Pending-batch cap applied to every receptor-fed basket: when a
    /// basket holds this many buffered tuples, its receptor connections
    /// block (backpressure onto the sender's socket) instead of growing
    /// the basket unboundedly. 0 = unbounded (the pre-backpressure
    /// behavior).
    pub receptor_basket_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            data_host: "127.0.0.1".into(),
            idle_backoff: Duration::from_micros(100),
            receptor_basket_cap: 0,
        }
    }
}

/// A receptor data-plane port: accept loop + per-connection reader threads.
pub struct ReceptorPort {
    pub stream: String,
    pub port: u16,
    pub format: WireFormat,
    pub connections: AtomicU64,
    pub accepted: AtomicU64,
    pub rejected: AtomicU64,
}

/// An emitter data-plane port: accept loop + per-subscriber emitter threads.
pub struct EmitterPort {
    pub query: String,
    pub port: u16,
    pub format: WireFormat,
    pub connections: AtomicU64,
    /// Result batches absorbed into a merged frame across this port's
    /// subscribers (adaptive coalescing when a socket is the bottleneck).
    pub coalesced: Arc<AtomicU64>,
    emitters: Mutex<Vec<Emitter>>,
}

/// The running server: owns every supervised thread.
pub struct ServerRuntime {
    engine: Arc<DataCell>,
    config: ServerConfig,
    sched: Mutex<Option<ThreadedScheduler>>,
    pub queries: QueryRegistry,
    pub sessions: SessionManager,
    receptors: Mutex<Vec<Arc<ReceptorPort>>>,
    emitters: Mutex<Vec<Arc<EmitterPort>>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes register_query's engine-registration + factory-takeover
    /// sequence: a concurrent registration from another control session
    /// must not interleave between `register_query` and `take_factories`,
    /// or it would steal the other session's factory.
    registration: Mutex<()>,
    stop: Arc<AtomicBool>,
    started_at: Instant,
}

impl ServerRuntime {
    pub fn new(engine: Arc<DataCell>, config: ServerConfig) -> Arc<ServerRuntime> {
        let sched = ThreadedScheduler::with_backoff(config.idle_backoff);
        Arc::new(ServerRuntime {
            engine,
            config,
            sched: Mutex::new(Some(sched)),
            queries: QueryRegistry::new(),
            sessions: SessionManager::new(),
            receptors: Mutex::new(Vec::new()),
            emitters: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
            registration: Mutex::new(()),
            stop: Arc::new(AtomicBool::new(false)),
            started_at: Instant::now(),
        })
    }

    pub fn engine(&self) -> &Arc<DataCell> {
        &self.engine
    }

    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    pub fn uptime(&self) -> Duration {
        self.started_at.elapsed()
    }

    fn ensure_running(&self) -> Result<()> {
        if self.is_stopping() {
            Err(ServerError::ShuttingDown)
        } else {
            Ok(())
        }
    }

    // ---- control-plane operations ---------------------------------------

    /// Execute DDL or a one-shot script; returns result rows (wire text)
    /// for a trailing SELECT, prefixed with a `#`-marked header line.
    pub fn exec(&self, sql: &str) -> Result<Vec<String>> {
        self.ensure_running()?;
        let result = self.engine.execute(sql)?;
        let mut body = Vec::new();
        if let Some(rel) = result {
            body.push(format!("# {}", rel.names().join("|")));
            for row in rel.iter_rows() {
                body.push(datacell::net::format_row(&row));
            }
        }
        Ok(body)
    }

    /// `EXPLAIN <sql>`: compile the script and render the physical plan
    /// (pruned column sets per scan, predicate order, materialization
    /// boundaries) without executing anything.
    pub fn explain_sql(&self, sql: &str) -> Result<Vec<String>> {
        self.ensure_running()?;
        let stmts = dcsql::parse_statements(sql)
            .map_err(|e| ServerError::Protocol(format!("EXPLAIN: {e}")))?;
        Ok(dcsql::plan::PhysicalPlan::compile(&stmts).describe())
    }

    /// `EXPLAIN QUERY <name>`: the plan of a registered continuous query.
    pub fn explain_query(&self, name: &str) -> Result<Vec<String>> {
        let handle = self
            .queries
            .get(name)
            .ok_or_else(|| ServerError::Unknown(format!("query {name}")))?;
        let mut body = vec![format!("query {} AS {}", handle.name, handle.sql)];
        body.extend(self.explain_sql(&handle.sql)?);
        Ok(body)
    }

    /// Register a continuous query: parse, build the factory, hand it to
    /// the live scheduler, and set up result fan-out.
    pub fn register_query(&self, name: &str, sql: &str) -> Result<Arc<QueryHandle>> {
        self.ensure_running()?;
        let _reg = self.registration.lock();
        if self.queries.contains(name) {
            return Err(ServerError::Duplicate(name.to_string()));
        }
        let rx = self
            .engine
            .register_query(name, sql, QueryOptions::subscribed())?;
        // move the freshly built factory into the running scheduler
        let factories = self.engine.take_factories();
        let mut sched_guard = self.sched.lock();
        let sched = sched_guard.as_mut().ok_or(ServerError::ShuttingDown)?;
        let mut stats = None;
        for f in factories {
            let is_this = f.name() == name;
            let live = sched.add_shared(f);
            if is_this {
                stats = Some(live);
            }
        }
        drop(sched_guard);
        let stats = stats.ok_or_else(|| {
            ServerError::Io("registered factory did not surface in scheduler".into())
        })?;
        let handle = QueryHandle::new(name, sql, stats, rx);
        if !self.queries.insert(Arc::clone(&handle)) {
            return Err(ServerError::Duplicate(name.to_string()));
        }
        Ok(handle)
    }

    /// Open a receptor port for `stream`; port 0 picks an ephemeral port.
    /// Returns the bound port.
    pub fn attach_receptor(
        self: &Arc<Self>,
        stream: &str,
        port: u16,
        format: WireFormat,
    ) -> Result<u16> {
        self.ensure_running()?;
        let basket = self
            .engine
            .basket(stream)
            .map_err(|_| ServerError::Unknown(format!("stream {stream}")))?;
        if self.config.receptor_basket_cap > 0 {
            basket.set_pending_cap(self.config.receptor_basket_cap);
        }
        let listener = TcpListener::bind((self.config.data_host.as_str(), port))?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?.port();
        let rport = Arc::new(ReceptorPort {
            stream: stream.to_string(),
            port: bound,
            format,
            connections: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        self.receptors.lock().push(Arc::clone(&rport));

        let rt = Arc::clone(self);
        let accept_port = Arc::clone(&rport);
        let handle = std::thread::Builder::new()
            .name(format!("dc-rcpt-{stream}"))
            .spawn(move || {
                let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
                while !rt.is_stopping() {
                    match listener.accept() {
                        Ok((sock, _peer)) => {
                            accept_port.connections.fetch_add(1, Ordering::AcqRel);
                            let rt2 = Arc::clone(&rt);
                            let port2 = Arc::clone(&accept_port);
                            let basket2 = Arc::clone(&basket);
                            conn_threads.retain(|t| !t.is_finished());
                            conn_threads.push(
                                std::thread::Builder::new()
                                    .name(format!("dc-rcpt-{}-conn", port2.stream))
                                    .spawn(move || {
                                        receptor_connection(&rt2, &port2, &basket2, sock)
                                    })
                                    .expect("spawn receptor connection thread"),
                            );
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => {
                            // transient accept failures (ECONNABORTED,
                            // EMFILE, ...) must not kill the port — back
                            // off and retry
                            std::thread::sleep(POLL_INTERVAL);
                        }
                    }
                }
                for t in conn_threads {
                    let _ = t.join();
                }
            })
            .expect("spawn receptor accept thread");
        self.threads.lock().push(handle);
        Ok(bound)
    }

    /// Open an emitter port for `query`; port 0 picks an ephemeral port.
    /// Returns the bound port.
    pub fn attach_emitter(
        self: &Arc<Self>,
        query: &str,
        port: u16,
        format: WireFormat,
    ) -> Result<u16> {
        self.ensure_running()?;
        let handle = self
            .queries
            .get(query)
            .ok_or_else(|| ServerError::Unknown(format!("query {query}")))?;
        let broadcast = handle
            .broadcast
            .as_ref()
            .ok_or_else(|| {
                ServerError::Protocol(format!(
                    "query {query} has no subscription output (no bare SELECT)"
                ))
            })?
            .clone();
        let listener = TcpListener::bind((self.config.data_host.as_str(), port))?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?.port();
        let eport = Arc::new(EmitterPort {
            query: query.to_string(),
            port: bound,
            format,
            connections: AtomicU64::new(0),
            coalesced: Arc::new(AtomicU64::new(0)),
            emitters: Mutex::new(Vec::new()),
        });
        self.emitters.lock().push(Arc::clone(&eport));

        let rt = Arc::clone(self);
        let accept_port = Arc::clone(&eport);
        let thread = std::thread::Builder::new()
            .name(format!("dc-emit-{query}"))
            .spawn(move || {
                while !rt.is_stopping() {
                    match listener.accept() {
                        Ok((sock, _peer)) => {
                            accept_port.connections.fetch_add(1, Ordering::AcqRel);
                            // a subscriber that stops reading must not be
                            // able to wedge shutdown behind a full send
                            // buffer — bound the emitter's writes
                            let _ = sock.set_write_timeout(Some(EMITTER_WRITE_TIMEOUT));
                            let rx = broadcast.subscribe();
                            // shared frames: one encoding per batch per
                            // format, shared across every subscriber;
                            // batches queued behind a slow socket coalesce
                            // into one frame (counted per port for STATS)
                            let emitter = Emitter::spawn_tcp_shared_counted(
                                format!("{}@{}", accept_port.query, accept_port.port),
                                rx,
                                sock,
                                accept_port.format,
                                Arc::clone(&accept_port.coalesced),
                            );
                            let mut emitters = accept_port.emitters.lock();
                            emitters.retain(|e| !e.is_finished());
                            emitters.push(emitter);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => {
                            // transient accept failures must not kill the
                            // port — back off and retry
                            std::thread::sleep(POLL_INTERVAL);
                        }
                    }
                }
            })
            .expect("spawn emitter accept thread");
        self.threads.lock().push(thread);
        Ok(bound)
    }

    /// The `STATS` report: one line per server object.
    pub fn stats(&self) -> Vec<String> {
        let mut body = Vec::new();
        body.push(format!(
            "server uptime_micros={} sessions={} queries={} receptor_ports={} emitter_ports={}",
            self.uptime().as_micros(),
            self.sessions.live_count(),
            self.queries.len(),
            self.receptors.lock().len(),
            self.emitters.lock().len(),
        ));
        for b in self.engine.basket_report() {
            body.push(format!(
                "basket {} len={} enabled={} in={} out={} dropped={} high_water={} cap={} \
                 pending_deletes={} compactions={}",
                b.name, b.len, b.enabled, b.total_in, b.total_out, b.dropped,
                b.high_water, b.pending_cap, b.pending_deletes, b.compactions
            ));
        }
        for q in self.queries.snapshot() {
            let s = q.stats.lock().clone();
            let (subs, batches, tuples, dropped) = match &q.broadcast {
                Some(bc) => {
                    let (b, t) = bc.delivered();
                    (bc.subscriber_count(), b, t, bc.dropped_batches())
                }
                None => (0, 0, 0, 0),
            };
            body.push(format!(
                "query {} firings={} consumed={} produced={} busy_micros={} lock_micros={} \
                 rows_scanned={} rows_out={} plan_micros={} \
                 subscribers={} delivered_batches={} delivered_tuples={} dropped_batches={}",
                q.name, s.firings, s.consumed, s.produced, s.busy_micros, s.lock_micros,
                s.rows_scanned, s.rows_out, s.plan_micros,
                subs, batches, tuples, dropped
            ));
        }
        for r in self.receptors.lock().iter() {
            body.push(format!(
                "receptor {} port={} format={} connections={} accepted={} rejected={}",
                r.stream,
                r.port,
                r.format,
                r.connections.load(Ordering::Acquire),
                r.accepted.load(Ordering::Acquire),
                r.rejected.load(Ordering::Acquire),
            ));
        }
        for e in self.emitters.lock().iter() {
            body.push(format!(
                "emitter {} port={} format={} connections={} coalesced_batches={}",
                e.query,
                e.port,
                e.format,
                e.connections.load(Ordering::Acquire),
                e.coalesced.load(Ordering::Acquire),
            ));
        }
        for s in self.sessions.snapshot() {
            body.push(format!(
                "session {} peer={} commands={}",
                s.id, s.peer, s.commands
            ));
        }
        body
    }

    /// Request a graceful stop (idempotent; actual teardown happens in
    /// [`ServerRuntime::shutdown`]).
    pub fn request_shutdown(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Graceful teardown, in dependency order: stop ingest, drain the
    /// scheduler, flush result pumps and emitters, join every thread.
    pub fn shutdown(&self) {
        self.request_shutdown();
        // 1. receptor accept loops + connection readers observe the flag
        //    and flush their final batches into the baskets; emitter accept
        //    loops stop taking subscribers
        let threads: Vec<JoinHandle<()>> = std::mem::take(&mut *self.threads.lock());
        for t in threads {
            let _ = t.join();
        }
        // 2. stop the scheduler — each factory thread drains remaining
        //    input once, then drops its factory (disconnecting result
        //    channels)
        if let Some(sched) = self.sched.lock().take() {
            sched.stop();
        }
        // 3. pumps see the disconnect after forwarding everything; then
        //    broadcasts drop, disconnecting subscriber channels, and the
        //    emitter threads flush and exit
        for q in self.queries.drain() {
            q.join_pump();
        }
        for eport in self.emitters.lock().drain(..) {
            // other clones of the Arc only read stats; the emitter vec is
            // drained through the lock
            for emitter in eport.emitters.lock().drain(..) {
                let _ = emitter.join();
            }
        }
    }
}

/// One receptor TCP connection, dispatched on the port's wire format.
fn receptor_connection(
    rt: &ServerRuntime,
    port: &ReceptorPort,
    basket: &Arc<datacell::basket::Basket>,
    sock: TcpStream,
) {
    match port.format {
        WireFormat::Text => receptor_connection_text(rt, port, basket, sock),
        WireFormat::Binary => receptor_connection_binary(rt, port, basket, sock),
    }
}

/// Text data plane: greedily batch wire rows into the basket.
fn receptor_connection_text(
    rt: &ServerRuntime,
    port: &ReceptorPort,
    basket: &Arc<datacell::basket::Basket>,
    sock: TcpStream,
) {
    let schema = basket.user_schema();
    let clock = Arc::clone(rt.engine.clock());
    let _ = sock.set_read_timeout(Some(POLL_INTERVAL));
    let mut reader = std::io::BufReader::new(sock);
    let mut line = String::new();
    let mut batch: Vec<Vec<Value>> = Vec::new();
    let mut eof = false;
    while !eof {
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(_) => {
                    let trimmed = line.trim_end_matches(['\n', '\r']);
                    if !trimmed.is_empty() {
                        match parse_row(trimmed, &schema) {
                            Ok(row) => batch.push(row),
                            Err(_) => {
                                port.rejected.fetch_add(1, Ordering::AcqRel);
                            }
                        }
                    }
                    line.clear();
                    if batch.len() >= RECEPTOR_BATCH {
                        break;
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // idle: flush what we have, re-check the stop flag;
                    // a partially read line stays in `line` for the next
                    // read_line call to complete
                    if rt.is_stopping() {
                        eof = true;
                    }
                    break;
                }
                Err(_) => {
                    eof = true;
                    break;
                }
            }
        }
        if !batch.is_empty() {
            // backpressure: a capped basket blocks this connection (and
            // thereby the peer's socket) until the factory drains it. A
            // false return also covers "disabled while full" — then fall
            // through so the append soft-rejects exactly like a disabled
            // basket below cap; only shutdown drops the connection.
            if !basket.wait_for_capacity(|| rt.is_stopping()) && rt.is_stopping() {
                break;
            }
            match basket.append_rows(&batch, clock.as_ref()) {
                Ok(n) => {
                    port.accepted.fetch_add(n as u64, Ordering::AcqRel);
                    port.rejected
                        .fetch_add((batch.len() - n) as u64, Ordering::AcqRel);
                }
                Err(_) => {
                    port.rejected.fetch_add(batch.len() as u64, Ordering::AcqRel);
                }
            }
            batch.clear();
        }
        // also honor shutdown between batch flushes — a client streaming
        // continuously never takes the idle branch above
        if rt.is_stopping() {
            break;
        }
    }
}

/// Binary data plane: accumulate bytes, peel off complete columnar
/// frames, append each frame as one columnar basket insert. Frames are
/// self-delimiting, so read timeouts never corrupt the stream — a
/// partial frame just waits in the buffer for its tail.
fn receptor_connection_binary(
    rt: &ServerRuntime,
    port: &ReceptorPort,
    basket: &Arc<datacell::basket::Basket>,
    mut sock: TcpStream,
) {
    use std::io::Read;

    let schema = basket.user_schema();
    let clock = Arc::clone(rt.engine.clock());
    let _ = sock.set_read_timeout(Some(POLL_INTERVAL));
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut eof = false;
    while !eof {
        match sock.read(&mut chunk) {
            Ok(0) => eof = true,
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => eof = true,
        }
        // drain every complete frame that has landed
        let mut consumed = 0usize;
        loop {
            match decode_frame(&pending[consumed..], &schema) {
                Ok(Some((rel, used))) => {
                    consumed += used;
                    let total = rel.len() as u64;
                    // as in the text path: only shutdown drops the
                    // connection; a disabled-while-full basket falls
                    // through to a soft-reject append
                    if !basket.wait_for_capacity(|| rt.is_stopping()) && rt.is_stopping() {
                        eof = true;
                        break;
                    }
                    match basket.append_relation(rel, clock.as_ref()) {
                        Ok(n) => {
                            port.accepted.fetch_add(n as u64, Ordering::AcqRel);
                            port.rejected
                                .fetch_add(total - n as u64, Ordering::AcqRel);
                        }
                        Err(_) => {
                            port.rejected.fetch_add(total, Ordering::AcqRel);
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // corrupt stream: count one reject, drop the peer
                    port.rejected.fetch_add(1, Ordering::AcqRel);
                    eof = true;
                    break;
                }
            }
        }
        if consumed > 0 {
            pending.drain(..consumed);
        }
        if rt.is_stopping() {
            break;
        }
    }
}
