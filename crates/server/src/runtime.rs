//! The server runtime: engine + scheduler + data-plane supervision.
//!
//! Wires the pieces of the paper's Figure 1 into one supervised process:
//! a [`DataCell`] engine, a thread-per-factory [`ThreadedScheduler`] that
//! accepts factories dynamically as clients register queries, receptor
//! accept loops feeding stream baskets from TCP sensors, and emitter
//! fan-out threads delivering query results to TCP subscribers — with a
//! single stop flag driving graceful shutdown of the whole tree.

use std::io::{BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use datacell::emitter::Emitter;
use datacell::engine::{DataCell, QueryOptions};
use datacell::frame::{decode_frame_traced, WireFormat};
use datacell::net::parse_row;
use datacell::scheduler::ThreadedScheduler;
use monet::prelude::*;
use parking_lot::Mutex;

use crate::error::{Result, ServerError};
use crate::session::{QueryHandle, QueryRegistry, SessionManager};

/// How long blocking reads/accepts wait before re-checking the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);
/// Upper bound on a single emitter socket write (a stalled subscriber is
/// disconnected rather than allowed to wedge delivery and shutdown).
const EMITTER_WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Receptor batching: flush after this many buffered rows.
const RECEPTOR_BATCH: usize = 4096;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Host data-plane listeners bind to (control plane binds separately).
    pub data_host: String,
    /// Idle backoff for factory threads.
    pub idle_backoff: Duration,
    /// Pending-batch cap applied to every receptor-fed basket: when a
    /// basket holds this many buffered tuples, its receptor connections
    /// block (backpressure onto the sender's socket) instead of growing
    /// the basket unboundedly. 0 = unbounded (the pre-backpressure
    /// behavior).
    pub receptor_basket_cap: usize,
    /// Collect latency histograms, counters and flight-recorder events
    /// (the `METRICS` / `TRACE` commands). On the hot path this costs
    /// one atomic add per probe point when on, one branch when off.
    pub telemetry_enabled: bool,
    /// Flight-recorder ring capacity (`--trace-ring`): recent structured
    /// events kept for `TRACE DUMP` / `TRACE SPANS`.
    pub trace_ring: usize,
    /// Stamp every Nth ingested batch with a wire trace header and
    /// record its per-hop spans (`--trace-sample`, 0 = off).
    pub trace_sample: u64,
    /// How often the background snapshotter captures `METRICS` into the
    /// history ring (`--metrics-interval-ms`).
    pub metrics_interval: Duration,
    /// Snapshots the history ring retains (`--metrics-depth`).
    pub metrics_depth: usize,
    /// Root of the durable store (`--data-dir`). When set, the runtime
    /// opens a [`dcstore::Store`] there, replays its WALs into the engine
    /// *before* the control plane accepts connections, and honors
    /// `CREATE STREAM ... PERSIST`. `None` = fully in-memory (the
    /// pre-durability behavior).
    pub data_dir: Option<PathBuf>,
    /// WAL fsync policy for durable streams.
    pub fsync: dcstore::FsyncPolicy,
    /// Seal a durable stream's hot rows into a segment once this many
    /// accumulate (0 = only on explicit `FLUSH STREAM`).
    pub seal_rows: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            data_host: "127.0.0.1".into(),
            idle_backoff: Duration::from_micros(100),
            receptor_basket_cap: 0,
            telemetry_enabled: true,
            trace_ring: dctrace::TRACE_RING_CAP,
            trace_sample: 256,
            metrics_interval: Duration::from_secs(1),
            metrics_depth: 120,
            data_dir: None,
            fsync: dcstore::FsyncPolicy::default(),
            seal_rows: 0,
        }
    }
}

/// A receptor data-plane port: accept loop + per-connection reader threads.
pub struct ReceptorPort {
    pub stream: String,
    pub port: u16,
    pub format: WireFormat,
    pub connections: AtomicU64,
    pub accepted: AtomicU64,
    pub rejected: AtomicU64,
    /// `DETACH RECEPTOR` flips this; the accept loop exits and releases
    /// the listener (established connections drain until the peer hangs
    /// up).
    closed: Arc<AtomicBool>,
}

/// An emitter data-plane port: accept loop + per-subscriber emitter threads.
pub struct EmitterPort {
    pub query: String,
    pub port: u16,
    pub format: WireFormat,
    pub connections: AtomicU64,
    /// Result batches absorbed into a merged frame across this port's
    /// subscribers (adaptive coalescing when a socket is the bottleneck).
    pub coalesced: Arc<AtomicU64>,
    emitters: Mutex<Vec<Emitter>>,
    /// `DETACH EMITTER` flips this; the accept loop exits and releases
    /// the listener (existing subscribers keep their streams).
    closed: Arc<AtomicBool>,
}

/// A live `TRACE QUERY <q> ON` port: an accept loop feeding each
/// subscriber the query's future flight-recorder events, one rendered
/// event per line.
pub struct TracePort {
    pub query: String,
    pub port: u16,
    closed: Arc<AtomicBool>,
}

/// The running server: owns every supervised thread.
pub struct ServerRuntime {
    engine: Arc<DataCell>,
    config: ServerConfig,
    sched: Mutex<Option<ThreadedScheduler>>,
    pub queries: QueryRegistry,
    pub sessions: SessionManager,
    receptors: Mutex<Vec<Arc<ReceptorPort>>>,
    emitters: Mutex<Vec<Arc<EmitterPort>>>,
    /// Emitter ports removed by `DETACH` whose subscriber threads still
    /// need joining at shutdown.
    detached_emitters: Mutex<Vec<Arc<EmitterPort>>>,
    trace_ports: Mutex<Vec<Arc<TracePort>>>,
    telemetry: dctrace::Telemetry,
    /// Bounded ring of periodic `METRICS` snapshots (`METRICS HISTORY`,
    /// windowed gauges, health scoring). Populated by the snapshotter
    /// thread; empty when telemetry is disabled.
    history: Arc<dctrace::MetricsHistory>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes register_query's engine-registration + factory-takeover
    /// sequence: a concurrent registration from another control session
    /// must not interleave between `register_query` and `take_factories`,
    /// or it would steal the other session's factory.
    registration: Mutex<()>,
    stop: Arc<AtomicBool>,
    started_at: Instant,
    /// The durable store behind `--data-dir` (`None` = in-memory server).
    store: Option<Arc<dcstore::Store>>,
    /// What boot-time recovery replayed (present when `store` is).
    recovery: Option<dcstore::RecoveryReport>,
}

impl ServerRuntime {
    pub fn new(engine: Arc<DataCell>, config: ServerConfig) -> Result<Arc<ServerRuntime>> {
        let sched = ThreadedScheduler::with_backoff(config.idle_backoff);
        let telemetry = if config.telemetry_enabled {
            let t = dctrace::Telemetry::enabled_with_ring(config.trace_ring);
            t.set_trace_sampling(config.trace_sample);
            t
        } else {
            dctrace::Telemetry::disabled()
        };
        // install before any DDL runs so every basket and factory the
        // engine creates picks up its probes
        engine.set_telemetry(telemetry.clone());
        // durable boot: open the store and replay manifest + WAL tails
        // into the engine BEFORE any connection is accepted, so clients
        // only ever observe the recovered state
        let (store, recovery) = match &config.data_dir {
            Some(dir) => {
                let store = dcstore::Store::open(
                    dir,
                    dcstore::StoreOptions {
                        fsync: config.fsync,
                        seal_rows: config.seal_rows,
                    },
                    telemetry.clone(),
                )?;
                let report = store.recover_into(&engine)?;
                engine.set_durability(Arc::clone(&store) as _);
                (Some(store), Some(report))
            }
            None => (None, None),
        };
        let history = Arc::new(dctrace::MetricsHistory::new(config.metrics_depth));
        let rt = Arc::new(ServerRuntime {
            engine,
            config,
            sched: Mutex::new(Some(sched)),
            queries: QueryRegistry::new(),
            sessions: SessionManager::new(),
            receptors: Mutex::new(Vec::new()),
            emitters: Mutex::new(Vec::new()),
            detached_emitters: Mutex::new(Vec::new()),
            trace_ports: Mutex::new(Vec::new()),
            telemetry,
            history,
            threads: Mutex::new(Vec::new()),
            registration: Mutex::new(()),
            stop: Arc::new(AtomicBool::new(false)),
            started_at: Instant::now(),
            store,
            recovery,
        });
        if rt.telemetry.is_enabled() {
            rt.spawn_snapshotter();
        }
        Ok(rt)
    }

    /// Background metrics snapshotter: every `metrics_interval`, capture
    /// the full exposition into the history ring and refresh the derived
    /// windowed gauges + the node's own health score.
    fn spawn_snapshotter(self: &Arc<Self>) {
        let rt = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("dc-metrics".into())
            .spawn(move || {
                let interval = rt.config.metrics_interval;
                while !rt.is_stopping() {
                    // sleep in small increments so shutdown is prompt even
                    // with a long interval
                    let mut slept = Duration::ZERO;
                    while slept < interval && !rt.is_stopping() {
                        let step = POLL_INTERVAL.min(interval - slept);
                        std::thread::sleep(step);
                        slept += step;
                    }
                    if rt.is_stopping() {
                        break;
                    }
                    rt.capture_metrics_now();
                }
            })
            .expect("spawn metrics snapshotter thread");
        self.threads.lock().push(handle);
    }

    /// One snapshotter tick: capture `METRICS` into the history ring,
    /// then derive the windowed gauges and health score from the last
    /// two snapshots. Public so tests (and the cluster router) can force
    /// a tick without waiting out the interval.
    pub fn capture_metrics_now(&self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let lines = self.metrics();
        self.history.capture(&lines, dctrace::now_micros());
        if let Some((prev, curr)) = self.history.last_two() {
            for s in dctrace::windowed_gauges(&prev, &curr) {
                // map back to 'static metric names for the registry
                let name = match s.name.as_str() {
                    "dc_ingest_rate" => "dc_ingest_rate",
                    "dc_fire_p99_window_micros" => "dc_fire_p99_window_micros",
                    _ => continue,
                };
                self.telemetry.set_gauge_rendered(name, s.labels, s.value);
            }
            let report = dctrace::health::evaluate(&prev, &curr);
            self.telemetry
                .set_gauge("dc_health_score", &[], report.score as f64);
        }
    }

    /// The durable store, when the server runs with a data directory.
    pub fn store(&self) -> Option<&Arc<dcstore::Store>> {
        self.store.as_ref()
    }

    /// What boot-time recovery replayed (`None` on an in-memory server).
    pub fn recovery_report(&self) -> Option<&dcstore::RecoveryReport> {
        self.recovery.as_ref()
    }

    pub fn engine(&self) -> &Arc<DataCell> {
        &self.engine
    }

    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    pub fn uptime(&self) -> Duration {
        self.started_at.elapsed()
    }

    fn ensure_running(&self) -> Result<()> {
        if self.is_stopping() {
            Err(ServerError::ShuttingDown)
        } else {
            Ok(())
        }
    }

    // ---- control-plane operations ---------------------------------------

    /// Execute DDL or a one-shot script; returns result rows (wire text)
    /// for a trailing SELECT, prefixed with a `#`-marked header line.
    pub fn exec(&self, sql: &str) -> Result<Vec<String>> {
        self.ensure_running()?;
        let result = self.engine.execute(sql)?;
        let mut body = Vec::new();
        if let Some(rel) = result {
            body.push(format!("# {}", rel.names().join("|")));
            for row in rel.iter_rows() {
                body.push(datacell::net::format_row(&row));
            }
        }
        Ok(body)
    }

    /// `EXPLAIN <sql>`: compile the script and render the physical plan
    /// (pruned column sets per scan, predicate order, materialization
    /// boundaries) without executing anything.
    pub fn explain_sql(&self, sql: &str) -> Result<Vec<String>> {
        self.ensure_running()?;
        let stmts = dcsql::parse_statements(sql)
            .map_err(|e| ServerError::Protocol(format!("EXPLAIN: {e}")))?;
        Ok(dcsql::plan::PhysicalPlan::compile(&stmts).describe())
    }

    /// `EXPLAIN QUERY <name>`: the plan of a registered continuous query,
    /// plus its live incremental-execution state — lifetime delta/full
    /// counters and the shared arrangements the engine currently holds
    /// (`holders` > 1 means queries are reusing one index).
    pub fn explain_query(&self, name: &str) -> Result<Vec<String>> {
        let handle = self
            .queries
            .get(name)
            .ok_or_else(|| ServerError::Unknown(format!("query {name}")))?;
        let mut body = vec![format!("query {} AS {}", handle.name, handle.sql)];
        body.extend(self.explain_sql(&handle.sql)?);
        let s = handle.stats.lock().clone();
        body.push(format!(
            "delta delta_rows={} full_reexecutes={} arrangement_bytes={}",
            s.delta_rows, s.full_reexecutes, s.arrangement_bytes
        ));
        for (table, column, rows, bytes, holders) in self.engine.arrangements().describe() {
            body.push(format!(
                "arrangement {table}.{column} rows={rows} bytes={bytes} holders={holders}"
            ));
        }
        Ok(body)
    }

    /// Register a continuous query: parse, build the factory, hand it to
    /// the live scheduler, and set up result fan-out.
    pub fn register_query(&self, name: &str, sql: &str) -> Result<Arc<QueryHandle>> {
        self.ensure_running()?;
        let _reg = self.registration.lock();
        if self.queries.contains(name) {
            return Err(ServerError::Duplicate(name.to_string()));
        }
        let rx = self
            .engine
            .register_query(name, sql, QueryOptions::subscribed())?;
        // move the freshly built factory into the running scheduler
        let factories = self.engine.take_factories();
        let mut sched_guard = self.sched.lock();
        let sched = sched_guard.as_mut().ok_or(ServerError::ShuttingDown)?;
        let mut stats = None;
        for f in factories {
            let is_this = f.name() == name;
            let live = sched.add_shared(f);
            if is_this {
                stats = Some(live);
            }
        }
        drop(sched_guard);
        let stats = stats.ok_or_else(|| {
            ServerError::Io("registered factory did not surface in scheduler".into())
        })?;
        let handle = QueryHandle::new(name, sql, stats, rx);
        if !self.queries.insert(Arc::clone(&handle)) {
            return Err(ServerError::Duplicate(name.to_string()));
        }
        Ok(handle)
    }

    /// Open a receptor port for `stream`; port 0 picks an ephemeral port.
    /// Returns the bound port.
    pub fn attach_receptor(
        self: &Arc<Self>,
        stream: &str,
        port: u16,
        format: WireFormat,
    ) -> Result<u16> {
        self.ensure_running()?;
        let basket = self
            .engine
            .basket(stream)
            .map_err(|_| ServerError::Unknown(format!("stream {stream}")))?;
        if self.config.receptor_basket_cap > 0 {
            basket.set_pending_cap(self.config.receptor_basket_cap);
        }
        let listener = TcpListener::bind((self.config.data_host.as_str(), port))?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?.port();
        let rport = Arc::new(ReceptorPort {
            stream: stream.to_string(),
            port: bound,
            format,
            connections: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            closed: Arc::new(AtomicBool::new(false)),
        });
        self.receptors.lock().push(Arc::clone(&rport));

        let rt = Arc::clone(self);
        let accept_port = Arc::clone(&rport);
        let handle = std::thread::Builder::new()
            .name(format!("dc-rcpt-{stream}"))
            .spawn(move || {
                let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
                while !rt.is_stopping() && !accept_port.closed.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((sock, _peer)) => {
                            accept_port.connections.fetch_add(1, Ordering::AcqRel);
                            let rt2 = Arc::clone(&rt);
                            let port2 = Arc::clone(&accept_port);
                            let basket2 = Arc::clone(&basket);
                            conn_threads.retain(|t| !t.is_finished());
                            conn_threads.push(
                                std::thread::Builder::new()
                                    .name(format!("dc-rcpt-{}-conn", port2.stream))
                                    .spawn(move || {
                                        receptor_connection(&rt2, &port2, &basket2, sock)
                                    })
                                    .expect("spawn receptor connection thread"),
                            );
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => {
                            // transient accept failures (ECONNABORTED,
                            // EMFILE, ...) must not kill the port — back
                            // off and retry
                            std::thread::sleep(POLL_INTERVAL);
                        }
                    }
                }
                for t in conn_threads {
                    let _ = t.join();
                }
            })
            .expect("spawn receptor accept thread");
        self.threads.lock().push(handle);
        Ok(bound)
    }

    /// Open an emitter port for `query`; port 0 picks an ephemeral port.
    /// Returns the bound port.
    pub fn attach_emitter(
        self: &Arc<Self>,
        query: &str,
        port: u16,
        format: WireFormat,
    ) -> Result<u16> {
        self.ensure_running()?;
        let handle = self
            .queries
            .get(query)
            .ok_or_else(|| ServerError::Unknown(format!("query {query}")))?;
        let broadcast = handle
            .broadcast
            .as_ref()
            .ok_or_else(|| {
                ServerError::Protocol(format!(
                    "query {query} has no subscription output (no bare SELECT)"
                ))
            })?
            .clone();
        let listener = TcpListener::bind((self.config.data_host.as_str(), port))?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?.port();
        let eport = Arc::new(EmitterPort {
            query: query.to_string(),
            port: bound,
            format,
            connections: AtomicU64::new(0),
            coalesced: Arc::new(AtomicU64::new(0)),
            emitters: Mutex::new(Vec::new()),
            closed: Arc::new(AtomicBool::new(false)),
        });
        self.emitters.lock().push(Arc::clone(&eport));

        let rt = Arc::clone(self);
        let accept_port = Arc::clone(&eport);
        let probe = dctrace::EmitterProbe::new(&self.telemetry, query);
        let thread = std::thread::Builder::new()
            .name(format!("dc-emit-{query}"))
            .spawn(move || {
                while !rt.is_stopping() && !accept_port.closed.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((sock, _peer)) => {
                            accept_port.connections.fetch_add(1, Ordering::AcqRel);
                            // a subscriber that stops reading must not be
                            // able to wedge shutdown behind a full send
                            // buffer — bound the emitter's writes
                            let _ = sock.set_write_timeout(Some(EMITTER_WRITE_TIMEOUT));
                            let rx = broadcast.subscribe();
                            // shared frames: one encoding per batch per
                            // format, shared across every subscriber;
                            // batches queued behind a slow socket coalesce
                            // into one frame (counted per port for STATS)
                            let emitter = Emitter::spawn_tcp_shared_probed(
                                format!("{}@{}", accept_port.query, accept_port.port),
                                rx,
                                sock,
                                accept_port.format,
                                Arc::clone(&accept_port.coalesced),
                                probe.clone(),
                            );
                            let mut emitters = accept_port.emitters.lock();
                            emitters.retain(|e| !e.is_finished());
                            emitters.push(emitter);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => {
                            // transient accept failures must not kill the
                            // port — back off and retry
                            std::thread::sleep(POLL_INTERVAL);
                        }
                    }
                }
            })
            .expect("spawn emitter accept thread");
        self.threads.lock().push(thread);
        Ok(bound)
    }

    /// `DETACH RECEPTOR <stream> PORT <p>`: stop the port's accept loop
    /// and release its listener. Established connections drain until the
    /// peer hangs up. Returns how many ports matched (stream AND port).
    pub fn detach_receptor(&self, stream: &str, port: u16) -> Result<usize> {
        let mut ports = self.receptors.lock();
        let mut n = 0;
        for p in ports.iter() {
            if p.stream == stream && p.port == port && !p.closed.swap(true, Ordering::AcqRel) {
                n += 1;
            }
        }
        ports.retain(|p| !(p.stream == stream && p.port == port));
        drop(ports);
        if n == 0 {
            return Err(ServerError::Unknown(format!(
                "receptor {stream} on port {port}"
            )));
        }
        Ok(n)
    }

    /// `DETACH EMITTER <query> PORT <p>`: stop the port's accept loop and
    /// release its listener. Existing subscribers keep their streams
    /// until the query ends or they hang up. Returns how many ports
    /// matched.
    pub fn detach_emitter(&self, query: &str, port: u16) -> Result<usize> {
        let mut ports = self.emitters.lock();
        let mut n = 0;
        let mut detached = Vec::new();
        for p in ports.iter() {
            if p.query == query && p.port == port && !p.closed.swap(true, Ordering::AcqRel) {
                n += 1;
                detached.push(Arc::clone(p));
            }
        }
        ports.retain(|p| !(p.query == query && p.port == port));
        drop(ports);
        if n == 0 {
            return Err(ServerError::Unknown(format!(
                "emitter {query} on port {port}"
            )));
        }
        // keep the detached ports' subscriber threads joinable at
        // shutdown even though the port left the live list
        self.detached_emitters.lock().extend(detached);
        Ok(n)
    }

    /// Parse a plain `CREATE STREAM` line into the stream's user schema,
    /// checking the declared name matches `stream`. Shared by the
    /// persistent-create and replica-open paths.
    fn parse_stream_ddl(ddl: &str, stream: &str) -> Result<Schema> {
        let stmt = dcsql::parse_statement(ddl)
            .map_err(|e| ServerError::Protocol(format!("stream DDL: {e}")))?;
        let dcsql::ast::Stmt::Create {
            kind: dcsql::ast::CreateKind::Stream,
            name,
            fields,
        } = stmt
        else {
            return Err(ServerError::Protocol(
                "expected a CREATE STREAM statement".into(),
            ));
        };
        if name != stream {
            return Err(ServerError::Protocol(format!(
                "stream name mismatch: {name} vs {stream}"
            )));
        }
        Ok(Schema::new(
            fields
                .iter()
                .map(|(n, t)| Field::new(n.clone(), *t))
                .collect(),
        ))
    }

    /// `CREATE STREAM ... PERSIST`: parse the plain DDL, then create the
    /// stream durably (WAL opened and manifest updated before the OK goes
    /// out). `ddl` is the CREATE STREAM line with the clause stripped.
    pub fn create_stream_persistent(&self, ddl: &str, stream: &str) -> Result<()> {
        self.ensure_running()?;
        let schema = Self::parse_stream_ddl(ddl, stream)?;
        self.engine.create_stream_persistent(stream, &schema)?;
        Ok(())
    }

    // ---- replication (REPL verbs; see dcstore::replica) ------------------

    /// The durable store, or the error every REPL verb shares.
    fn store_required(&self) -> Result<&Arc<dcstore::Store>> {
        self.store.as_ref().ok_or_else(|| {
            ServerError::Protocol("replication requires a daemon running with --data-dir".into())
        })
    }

    /// Replication may only write to **replica** streams — a stream with
    /// a live basket is this engine's own primary state.
    fn ensure_replica(&self, stream: &str) -> Result<()> {
        if self.engine.basket(stream).is_ok() {
            return Err(ServerError::Protocol(format!(
                "stream {stream} has a live basket — replication applies only to replica streams"
            )));
        }
        Ok(())
    }

    /// `REPL OPEN <stream> AS <ddl>`: open a stream in replica mode
    /// (durable layout, no live basket). Idempotent for the same schema.
    pub fn repl_open(&self, stream: &str, ddl: &str) -> Result<()> {
        self.ensure_running()?;
        let schema = Self::parse_stream_ddl(ddl, stream)?;
        self.ensure_replica(stream)?;
        self.store_required()?.open_replica(stream, &schema)?;
        Ok(())
    }

    /// `REPL STATUS <stream>`: the stream's durable catch-up cursor.
    pub fn repl_status(&self, stream: &str) -> Result<Vec<String>> {
        let s = self.store_required()?.replica_status(stream)?;
        Ok(vec![format!(
            "epoch={} wal_bytes={} segments={}",
            s.epoch, s.wal_bytes, s.segments
        )])
    }

    /// `REPL EXPORT`: primary side of one replication round — durable
    /// state past the follower's cursor, hex-encoded for the line
    /// protocol.
    pub fn repl_export(
        &self,
        stream: &str,
        segs: usize,
        epoch: u64,
        offset: u64,
    ) -> Result<Vec<String>> {
        self.ensure_running()?;
        let chunk = self
            .store_required()?
            .export_since(stream, segs, epoch, offset)?;
        let mut body = vec![format!(
            "epoch={} wal_bytes={} pending_rows={}",
            chunk.epoch, chunk.wal_bytes, chunk.pending_rows
        )];
        for s in &chunk.segments {
            body.push(format!(
                "segment file={} rows={} hex={}",
                s.file,
                s.rows,
                dcstore::hex_encode(&s.data)
            ));
        }
        body.push(format!(
            "wal from={} hex={}",
            chunk.wal_from,
            dcstore::hex_encode(&chunk.wal_data)
        ));
        Ok(body)
    }

    /// `REPL SEGMENT`: follower side — land one shipped segment durably.
    pub fn repl_segment(&self, stream: &str, file: &str, rows: u64, hex: &str) -> Result<()> {
        self.ensure_running()?;
        self.ensure_replica(stream)?;
        let data = dcstore::hex_decode(hex)?;
        self.store_required()?
            .apply_segment(stream, file, rows, &data)?;
        Ok(())
    }

    /// `REPL WAL`: follower side — append one shipped WAL chunk.
    pub fn repl_wal(&self, stream: &str, epoch: u64, from: u64, hex: &str) -> Result<()> {
        self.ensure_running()?;
        self.ensure_replica(stream)?;
        let data = dcstore::hex_decode(hex)?;
        self.store_required()?.apply_wal(stream, epoch, from, &data)?;
        Ok(())
    }

    /// `REPL PROMOTE`: replay every replica stream into a live basket
    /// and attach persistence — this follower becomes a primary. Reports
    /// what the replay rebuilt.
    pub fn repl_promote(&self) -> Result<Vec<String>> {
        self.ensure_running()?;
        let report = self.store_required()?.promote_replicas(&self.engine)?;
        Ok(vec![format!(
            "streams={} replayed_batches={} replayed_rows={} segments={}",
            report.streams, report.replayed_batches, report.replayed_rows, report.segments
        )])
    }

    /// `FLUSH STREAM <name>`: seal the durable stream's hot rows into a
    /// segment now. Returns the number of rows sealed.
    pub fn flush_stream(&self, stream: &str) -> Result<usize> {
        self.ensure_running()?;
        Ok(self.engine.flush_stream(stream)?)
    }

    /// The server's telemetry handle (disabled when the config said so).
    pub fn telemetry(&self) -> &dctrace::Telemetry {
        &self.telemetry
    }

    /// The `METRICS` report: every registered series in Prometheus text
    /// exposition format. Empty when telemetry is disabled. Process
    /// gauges (uptime, basket occupancy) are refreshed at render time.
    pub fn metrics(&self) -> Vec<String> {
        if self.telemetry.is_enabled() {
            self.telemetry
                .set_gauge("dc_uptime_seconds", &[], self.uptime().as_secs_f64());
            for b in self.engine.basket_report() {
                self.telemetry
                    .set_gauge("dc_basket_rows", &[("stream", &b.name)], b.len as f64);
                // approximate occupancy: 8-byte cells across the user
                // columns plus the arrival-timestamp column
                let width = self
                    .engine
                    .basket(&b.name)
                    .map(|bk| bk.user_schema().width() + 1)
                    .unwrap_or(1);
                self.telemetry.set_gauge(
                    "dc_basket_bytes",
                    &[("stream", &b.name)],
                    (b.len * width * 8) as f64,
                );
            }
        }
        self.telemetry.render()
    }

    /// The `METRICS HISTORY` report: snapshots from the history ring,
    /// oldest first, optionally filtered to one series and/or the last
    /// `n` snapshots.
    pub fn metrics_history(&self, series: Option<&str>, last: Option<usize>) -> Result<Vec<String>> {
        if !self.telemetry.is_enabled() {
            return Err(ServerError::Protocol(
                "telemetry is disabled on this server".into(),
            ));
        }
        Ok(self.history.render(series, last))
    }

    /// The `TRACE SPANS` report: per-batch span trees reconstructed from
    /// the flight recorder, optionally filtered to one batch id.
    pub fn trace_spans(&self, batch: Option<u64>) -> Result<Vec<String>> {
        let rec = self.recorder()?;
        Ok(dctrace::render_spans(&rec.events(), batch))
    }

    /// The `HEALTH` report: this node's health score from the last two
    /// metrics snapshots (healthy while the ring is still warming up).
    pub fn health(&self) -> Result<Vec<String>> {
        if !self.telemetry.is_enabled() {
            return Err(ServerError::Protocol(
                "telemetry is disabled on this server".into(),
            ));
        }
        let report = match self.history.last_two() {
            Some((prev, curr)) => dctrace::health::evaluate(&prev, &curr),
            None => dctrace::HealthReport::healthy(),
        };
        Ok(report.render())
    }

    /// The `TRACE DUMP` report: flight-recorder events, oldest first,
    /// optionally filtered to one query.
    pub fn trace_dump(&self, query: Option<&str>) -> Result<Vec<String>> {
        let rec = self.recorder()?;
        Ok(rec.dump(query))
    }

    fn recorder(&self) -> Result<Arc<dctrace::FlightRecorder>> {
        self.telemetry
            .recorder()
            .ok_or_else(|| ServerError::Protocol("telemetry is disabled on this server".into()))
    }

    /// `TRACE QUERY <q> ON`: open an emitter-style port streaming the
    /// query's future flight-recorder events to every subscriber, one
    /// rendered event per line. Returns the bound port.
    pub fn trace_on(self: &Arc<Self>, query: &str) -> Result<u16> {
        self.ensure_running()?;
        if !self.queries.contains(query) {
            return Err(ServerError::Unknown(format!("query {query}")));
        }
        let recorder = self.recorder()?;
        let listener = TcpListener::bind((self.config.data_host.as_str(), 0))?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?.port();
        let tport = Arc::new(TracePort {
            query: query.to_string(),
            port: bound,
            closed: Arc::new(AtomicBool::new(false)),
        });
        self.trace_ports.lock().push(Arc::clone(&tport));

        let rt = Arc::clone(self);
        let accept_port = Arc::clone(&tport);
        let handle = std::thread::Builder::new()
            .name(format!("dc-trace-{query}"))
            .spawn(move || {
                let mut writers: Vec<JoinHandle<()>> = Vec::new();
                while !rt.is_stopping() && !accept_port.closed.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((sock, _peer)) => {
                            let _ = sock.set_write_timeout(Some(EMITTER_WRITE_TIMEOUT));
                            let rx = recorder.subscribe(Some(accept_port.query.clone()));
                            let rt2 = Arc::clone(&rt);
                            let closed = Arc::clone(&accept_port.closed);
                            writers.retain(|t| !t.is_finished());
                            writers.push(
                                std::thread::Builder::new()
                                    .name(format!("dc-trace-{}-conn", accept_port.query))
                                    .spawn(move || trace_writer(&rt2, &closed, rx, sock))
                                    .expect("spawn trace writer thread"),
                            );
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                    }
                }
                for t in writers {
                    let _ = t.join();
                }
            })
            .expect("spawn trace accept thread");
        self.threads.lock().push(handle);
        Ok(bound)
    }

    /// `TRACE QUERY <q> OFF`: close the query's live taps (subscribers
    /// drain what they already received, then their stream ends) and
    /// retire its trace ports. Returns how many taps were closed.
    pub fn trace_off(&self, query: &str) -> Result<usize> {
        let recorder = self.recorder()?;
        let mut ports = self.trace_ports.lock();
        for p in ports.iter().filter(|p| p.query == query) {
            p.closed.store(true, Ordering::Release);
        }
        ports.retain(|p| p.query != query);
        drop(ports);
        Ok(recorder.close_taps(Some(query)))
    }

    /// The `STATS` report: one line per server object.
    pub fn stats(&self) -> Vec<String> {
        let mut body = Vec::new();
        body.push(format!(
            "server uptime_micros={} sessions={} queries={} receptor_ports={} emitter_ports={}",
            self.uptime().as_micros(),
            self.sessions.live_count(),
            self.queries.len(),
            self.receptors.lock().len(),
            self.emitters.lock().len(),
        ));
        for b in self.engine.basket_report() {
            let mut line = format!(
                "basket {} len={} enabled={} in={} out={} dropped={} high_water={} cap={} \
                 pending_deletes={} compactions={} persistent={} wal_bytes={} segments={}",
                b.name, b.len, b.enabled, b.total_in, b.total_out, b.dropped,
                b.high_water, b.pending_cap, b.pending_deletes, b.compactions,
                b.persistent, b.wal_bytes, b.segments
            );
            if b.persistent {
                // WAL fsync tail latency (zero when telemetry is off or
                // nothing has been logged yet)
                let fsync = self
                    .telemetry
                    .hist_snapshot("dc_wal_fsync_micros", &[("stream", &b.name)])
                    .unwrap_or_default();
                line.push_str(&format!(" wal_fsync_p99_micros={}", fsync.quantile(0.99)));
            }
            body.push(line);
        }
        for q in self.queries.snapshot() {
            let s = q.stats.lock().clone();
            let (subs, batches, tuples, dropped) = match &q.broadcast {
                Some(bc) => {
                    let (b, t) = bc.delivered();
                    (bc.subscriber_count(), b, t, bc.dropped_batches())
                }
                None => (0, 0, 0, 0),
            };
            // fire-latency summary from the telemetry histogram (zeros
            // when telemetry is off or the query has not fired yet)
            let fire = self
                .telemetry
                .hist_snapshot("dc_fire_micros", &[("query", &q.name)])
                .unwrap_or_default();
            body.push(format!(
                "query {} firings={} consumed={} produced={} busy_micros={} lock_micros={} \
                 rows_scanned={} rows_out={} plan_micros={} \
                 delta_rows={} full_reexecutes={} arrangement_bytes={} \
                 subscribers={} delivered_batches={} delivered_tuples={} dropped_batches={} \
                 p50_micros={} p99_micros={} max_micros={}",
                q.name, s.firings, s.consumed, s.produced, s.busy_micros, s.lock_micros,
                s.rows_scanned, s.rows_out, s.plan_micros,
                s.delta_rows, s.full_reexecutes, s.arrangement_bytes,
                subs, batches, tuples, dropped,
                fire.quantile(0.5), fire.quantile(0.99), fire.max
            ));
        }
        for r in self.receptors.lock().iter() {
            body.push(format!(
                "receptor {} port={} format={} connections={} accepted={} rejected={}",
                r.stream,
                r.port,
                r.format,
                r.connections.load(Ordering::Acquire),
                r.accepted.load(Ordering::Acquire),
                r.rejected.load(Ordering::Acquire),
            ));
        }
        for e in self.emitters.lock().iter() {
            body.push(format!(
                "emitter {} port={} format={} connections={} coalesced_batches={}",
                e.query,
                e.port,
                e.format,
                e.connections.load(Ordering::Acquire),
                e.coalesced.load(Ordering::Acquire),
            ));
        }
        for s in self.sessions.snapshot() {
            body.push(format!(
                "session {} peer={} commands={}",
                s.id, s.peer, s.commands
            ));
        }
        body
    }

    /// Request a graceful stop (idempotent; actual teardown happens in
    /// [`ServerRuntime::shutdown`]).
    pub fn request_shutdown(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Graceful teardown, in dependency order: stop ingest, drain the
    /// scheduler, flush result pumps and emitters, join every thread.
    pub fn shutdown(&self) {
        self.request_shutdown();
        // 0. close every live trace tap so their writer threads see the
        //    channel disconnect and exit with the accept loops
        if let Some(rec) = self.telemetry.recorder() {
            rec.close_taps(None);
        }
        // 1. receptor accept loops + connection readers observe the flag
        //    and flush their final batches into the baskets; emitter accept
        //    loops stop taking subscribers
        let threads: Vec<JoinHandle<()>> = std::mem::take(&mut *self.threads.lock());
        for t in threads {
            let _ = t.join();
        }
        // 2. stop the scheduler — each factory thread drains remaining
        //    input once, then drops its factory (disconnecting result
        //    channels)
        if let Some(sched) = self.sched.lock().take() {
            sched.stop();
        }
        // 3. pumps see the disconnect after forwarding everything; then
        //    broadcasts drop, disconnecting subscriber channels, and the
        //    emitter threads flush and exit
        for q in self.queries.drain() {
            q.join_pump();
        }
        let mut eports: Vec<Arc<EmitterPort>> = self.emitters.lock().drain(..).collect();
        eports.extend(self.detached_emitters.lock().drain(..));
        for eport in eports {
            // other clones of the Arc only read stats; the emitter vec is
            // drained through the lock
            for emitter in eport.emitters.lock().drain(..) {
                let _ = emitter.join();
            }
        }
        // 4. every acknowledged append is already in the WAL; one final
        //    fsync narrows the window of an `off`/`every_n` policy
        if let Some(store) = &self.store {
            let _ = store.sync_all();
        }
    }
}

/// Drain one flight-recorder tap onto a trace subscriber socket until
/// the tap closes (`TRACE ... OFF` / shutdown), the subscriber hangs
/// up, or the server stops.
fn trace_writer(
    rt: &ServerRuntime,
    closed: &AtomicBool,
    rx: std::sync::mpsc::Receiver<String>,
    sock: TcpStream,
) {
    let mut writer = std::io::BufWriter::new(sock);
    loop {
        match rx.recv_timeout(POLL_INTERVAL) {
            Ok(line) => {
                if writeln!(writer, "{line}").is_err() || writer.flush().is_err() {
                    break;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if rt.is_stopping() || closed.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// One receptor TCP connection, dispatched on the port's wire format.
fn receptor_connection(
    rt: &ServerRuntime,
    port: &ReceptorPort,
    basket: &Arc<datacell::basket::Basket>,
    sock: TcpStream,
) {
    match port.format {
        WireFormat::Text => receptor_connection_text(rt, port, basket, sock),
        WireFormat::Binary => receptor_connection_binary(rt, port, basket, sock),
    }
}

/// Text data plane: greedily batch wire rows into the basket.
fn receptor_connection_text(
    rt: &ServerRuntime,
    port: &ReceptorPort,
    basket: &Arc<datacell::basket::Basket>,
    sock: TcpStream,
) {
    let schema = basket.user_schema();
    let clock = Arc::clone(rt.engine.clock());
    let _ = sock.set_read_timeout(Some(POLL_INTERVAL));
    let mut reader = std::io::BufReader::new(sock);
    let mut line = String::new();
    let mut batch: Vec<Vec<Value>> = Vec::new();
    let mut eof = false;
    while !eof {
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(_) => {
                    let trimmed = line.trim_end_matches(['\n', '\r']);
                    if !trimmed.is_empty() {
                        match parse_row(trimmed, &schema) {
                            Ok(row) => batch.push(row),
                            Err(_) => {
                                port.rejected.fetch_add(1, Ordering::AcqRel);
                            }
                        }
                    }
                    line.clear();
                    if batch.len() >= RECEPTOR_BATCH {
                        break;
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // idle: flush what we have, re-check the stop flag;
                    // a partially read line stays in `line` for the next
                    // read_line call to complete
                    if rt.is_stopping() {
                        eof = true;
                    }
                    break;
                }
                Err(_) => {
                    eof = true;
                    break;
                }
            }
        }
        if !batch.is_empty() {
            // backpressure: a capped basket blocks this connection (and
            // thereby the peer's socket) until the factory drains it. A
            // false return also covers "disabled while full" — then fall
            // through so the append soft-rejects exactly like a disabled
            // basket below cap; only shutdown drops the connection.
            let trace_batch = rt.telemetry().maybe_sample().unwrap_or(0);
            let append_started = basket.probe().map(|_| Instant::now());
            if !basket.wait_for_capacity(|| rt.is_stopping()) && rt.is_stopping() {
                break;
            }
            if trace_batch != 0 {
                dctrace::span::set_current(trace_batch);
                // arm the basket mark before the rows land: the firing
                // that consumes them can run the instant append releases
                // the basket lock, and a mark set afterwards would miss
                // it (losing the dwell/fire/emitter spans)
                if let Some(p) = basket.probe() {
                    p.set_trace_mark(trace_batch);
                }
            }
            let appended = match basket.append_rows(&batch, clock.as_ref()) {
                Ok(n) => {
                    port.accepted.fetch_add(n as u64, Ordering::AcqRel);
                    port.rejected
                        .fetch_add((batch.len() - n) as u64, Ordering::AcqRel);
                    n
                }
                Err(_) => {
                    port.rejected.fetch_add(batch.len() as u64, Ordering::AcqRel);
                    0
                }
            };
            dctrace::span::clear_current();
            // decode→append latency for this batch (capacity wait
            // included: that is what the sender experiences)
            if let (Some(p), Some(started)) = (basket.probe(), append_started) {
                let dur = started.elapsed().as_micros() as u64;
                p.note_append_micros(dur);
                if trace_batch != 0 {
                    if appended > 0 {
                        p.note_span("receptor", trace_batch, dur);
                    } else {
                        p.clear_trace_mark(trace_batch);
                    }
                }
            }
            batch.clear();
        }
        // also honor shutdown between batch flushes — a client streaming
        // continuously never takes the idle branch above
        if rt.is_stopping() {
            break;
        }
    }
}

/// Binary data plane: accumulate bytes, peel off complete columnar
/// frames, append each frame as one columnar basket insert. Frames are
/// self-delimiting, so read timeouts never corrupt the stream — a
/// partial frame just waits in the buffer for its tail.
fn receptor_connection_binary(
    rt: &ServerRuntime,
    port: &ReceptorPort,
    basket: &Arc<datacell::basket::Basket>,
    mut sock: TcpStream,
) {
    use std::io::Read;

    let schema = basket.user_schema();
    let clock = Arc::clone(rt.engine.clock());
    let _ = sock.set_read_timeout(Some(POLL_INTERVAL));
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut eof = false;
    while !eof {
        match sock.read(&mut chunk) {
            Ok(0) => eof = true,
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => eof = true,
        }
        // drain every complete frame that has landed
        let mut consumed = 0usize;
        loop {
            match decode_frame_traced(&pending[consumed..], &schema) {
                Ok(Some((rel, used, header))) => {
                    consumed += used;
                    let total = rel.len() as u64;
                    // trace: propagate a wire header stamped upstream
                    // (router → shard hop), otherwise sample locally
                    let trace_batch = header
                        .map(|h| h.batch)
                        .or_else(|| rt.telemetry().maybe_sample())
                        .unwrap_or(0);
                    // as in the text path: only shutdown drops the
                    // connection; a disabled-while-full basket falls
                    // through to a soft-reject append
                    let append_started = basket.probe().map(|_| Instant::now());
                    if !basket.wait_for_capacity(|| rt.is_stopping()) && rt.is_stopping() {
                        eof = true;
                        break;
                    }
                    // the WAL append span learns its batch from the
                    // thread-local while the basket logs under its lock
                    if trace_batch != 0 {
                        dctrace::span::set_current(trace_batch);
                        // arm the mark before the rows land — a firing
                        // racing the append would otherwise consume them
                        // with no trace to inherit
                        if let Some(p) = basket.probe() {
                            p.set_trace_mark(trace_batch);
                        }
                    }
                    let appended = match basket.append_relation(rel, clock.as_ref()) {
                        Ok(n) => {
                            port.accepted.fetch_add(n as u64, Ordering::AcqRel);
                            port.rejected
                                .fetch_add(total - n as u64, Ordering::AcqRel);
                            n
                        }
                        Err(_) => {
                            port.rejected.fetch_add(total, Ordering::AcqRel);
                            0
                        }
                    };
                    dctrace::span::clear_current();
                    if let (Some(p), Some(started)) = (basket.probe(), append_started) {
                        let dur = started.elapsed().as_micros() as u64;
                        p.note_append_micros(dur);
                        if trace_batch != 0 {
                            if appended > 0 {
                                p.note_span("receptor", trace_batch, dur);
                            } else {
                                p.clear_trace_mark(trace_batch);
                            }
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // corrupt stream: count one reject, drop the peer
                    port.rejected.fetch_add(1, Ordering::AcqRel);
                    eof = true;
                    break;
                }
            }
        }
        if consumed > 0 {
            pending.drain(..consumed);
        }
        if rt.is_stopping() {
            break;
        }
    }
}
