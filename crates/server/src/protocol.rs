//! The `datacelld` control-plane wire protocol.
//!
//! Line-oriented text, one request per line, mirroring the paper's choice
//! of "a textual interface for exchanging flat relational tuples" (§3.1)
//! for the control plane as well. Command grammar (keywords are
//! case-insensitive, names and SQL are verbatim):
//!
//! ```text
//! PING
//! CREATE STREAM <name> (<col> <type>, ...)      -- also CREATE TABLE / CREATE BASKET
//!     [PERSIST]                                 -- durable stream (WAL + segments)
//!     [SHARD BY (<col>) [SHARDS <n>]]           -- hash-partitioned stream (dccluster only)
//! FLUSH STREAM <name>                           -- seal a durable stream's hot rows
//! EXEC <sql>                                    -- one-shot statement(s)
//! REGISTER QUERY <name> AS <sql>                -- continuous query
//! ATTACH RECEPTOR <stream> ON PORT <port> [FORMAT TEXT|BINARY]
//! ATTACH EMITTER <query> ON PORT <port> [FORMAT TEXT|BINARY]
//! DETACH RECEPTOR <stream> PORT <port>          -- close an attached receptor port
//! DETACH EMITTER <query> PORT <port>            -- close an attached emitter port
//! EXPLAIN <sql>                                 -- compiled physical plan of a script
//! EXPLAIN QUERY <name>                          -- plan of a registered continuous query
//! STATS
//! METRICS                                       -- Prometheus text exposition
//! METRICS HISTORY [<series>] [LAST <n>]         -- snapshot ring, oldest first
//! TRACE DUMP [QUERY <name>]                     -- flight-recorder ring dump
//! TRACE SPANS [BATCH <id>]                      -- per-batch span trees
//! TRACE QUERY <name> ON|OFF                     -- live trace stream (emitter-style port)
//! HEALTH                                        -- windowed health score + signals
//! REPL OPEN <stream> AS <CREATE STREAM ddl>     -- open a stream in replica mode (follower)
//! REPL STATUS <stream>                          -- a stream's durable catch-up cursor
//! REPL EXPORT <stream> SEGS <k> EPOCH <e> OFFSET <o>
//!                                               -- primary: durable state past the cursor
//! REPL SEGMENT <stream> <file> <rows> <hex>     -- follower: land one shipped segment
//! REPL WAL <stream> EPOCH <e> FROM <o> [<hex>]  -- follower: append one shipped WAL chunk
//! REPL PROMOTE                                  -- follower becomes a primary (replay + attach)
//! QUIT
//! SHUTDOWN
//! ```
//!
//! The `PERSIST` clause declares a durable stream: accepted appends are
//! write-ahead logged before they are acknowledged and periodically
//! sealed into immutable columnar segments (see the `dcstore` crate).
//! It requires the daemon to run with `--data-dir`.
//!
//! The `SHARD BY` clause declares a hash-partitioned stream. The grammar
//! is parsed here (shared with the `dccluster` router, which fronts N
//! engines behind this same protocol); a single `datacelld` engine has
//! nothing to shard across and rejects the clause with a pointer to the
//! router.
//!
//! Port 0 picks an ephemeral port. `FORMAT` selects the data-plane
//! encoding of the attached port: `TEXT` (the default — §3.1 lines,
//! wire-compatible with every pre-existing client) or `BINARY` (columnar
//! frames, see [`datacell::frame`]).
//!
//! Every response is either
//!
//! ```text
//! OK <n>\n        followed by exactly n body lines, or
//! ERR <message>\n
//! ```
//!
//! so clients can parse all replies with one loop.

use std::io::{BufRead, Write};

use datacell::frame::WireFormat;

/// A parsed control-plane request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    Ping,
    /// CREATE STREAM/TABLE/BASKET — the raw SQL line, passed through to
    /// the engine's DDL executor.
    Ddl(String),
    /// `CREATE STREAM ... PERSIST` — a durable stream: appends are
    /// write-ahead logged before acknowledgement and sealed into columnar
    /// segments. Requires a daemon running with a data directory.
    DdlPersist {
        /// The plain `CREATE STREAM` DDL with the PERSIST clause stripped.
        ddl: String,
        stream: String,
    },
    /// `CREATE STREAM ... SHARD BY (col) [SHARDS n]` — a hash-partitioned
    /// stream. Only a `dccluster` router can honor this; a single engine
    /// rejects it.
    DdlSharded {
        /// The plain `CREATE STREAM` DDL with the persist/shard clauses
        /// stripped — what the router forwards to each shard engine.
        ddl: String,
        stream: String,
        /// Partition key column name.
        key: String,
        /// Explicit shard count; `None` = one shard per engine.
        shards: Option<usize>,
        /// `PERSIST` combined with `SHARD BY`: every shard engine opens
        /// a durable stream in its own data directory.
        persist: bool,
    },
    /// `FLUSH STREAM <name>` — seal a durable stream's hot rows into a
    /// segment now (and truncate its WAL).
    FlushStream {
        stream: String,
    },
    /// One-shot SQL script execution.
    Exec(String),
    RegisterQuery {
        name: String,
        sql: String,
    },
    AttachReceptor {
        stream: String,
        port: u16,
        format: WireFormat,
    },
    AttachEmitter {
        query: String,
        port: u16,
        format: WireFormat,
    },
    /// `DETACH RECEPTOR <stream> PORT <p>` — stop accepting on a receptor
    /// port and release it.
    DetachReceptor {
        stream: String,
        port: u16,
    },
    /// `DETACH EMITTER <query> PORT <p>` — stop accepting on an emitter
    /// port and release it.
    DetachEmitter {
        query: String,
        port: u16,
    },
    /// `EXPLAIN <sql>` — print the compiled physical plan of a script.
    Explain(String),
    /// `EXPLAIN QUERY <name>` — plan of a registered continuous query.
    ExplainQuery { name: String },
    Stats,
    /// `METRICS` — the whole telemetry registry in Prometheus text
    /// exposition format.
    Metrics,
    /// `METRICS HISTORY [<series>] [LAST <n>]` — the snapshot ring,
    /// oldest first, optionally filtered to one series (exact metric
    /// name or series-key prefix) and/or the last `n` snapshots.
    MetricsHistory {
        series: Option<String>,
        last: Option<usize>,
    },
    /// `TRACE DUMP [QUERY <name>]` — the flight recorder's ring of
    /// recent events, optionally filtered to one query.
    TraceDump { query: Option<String> },
    /// `TRACE SPANS [BATCH <id>]` — per-batch span trees reconstructed
    /// from the flight recorder, optionally filtered to one batch id.
    TraceSpans { batch: Option<u64> },
    /// `HEALTH` — the node's windowed health score, degraded reasons
    /// and raw signals.
    Health,
    /// `TRACE QUERY <name> ON|OFF` — start (reply carries `port=N`) or
    /// stop streaming that query's trace events live.
    TraceStream { query: String, on: bool },
    /// `REPL OPEN <stream> AS <ddl>` — open a durable stream in replica
    /// mode: manifest entry + directory, no live basket. Idempotent for
    /// an identical schema. Requires `--data-dir`.
    ReplOpen { stream: String, ddl: String },
    /// `REPL STATUS <stream>` — the stream's durable cursor
    /// (`epoch= wal_bytes= segments=`), the position a primary resumes
    /// shipping from.
    ReplStatus { stream: String },
    /// `REPL EXPORT <stream> SEGS <k> EPOCH <e> OFFSET <o>` — primary
    /// side of one replication round: segments past index `k` plus a
    /// WAL chunk from `(e, o)`, hex-encoded.
    ReplExport {
        stream: String,
        segs: usize,
        epoch: u64,
        offset: u64,
    },
    /// `REPL SEGMENT <stream> <file> <rows> <hex>` — follower: land one
    /// shipped segment file durably.
    ReplSegment {
        stream: String,
        file: String,
        rows: u64,
        hex: String,
    },
    /// `REPL WAL <stream> EPOCH <e> FROM <o> [<hex>]` — follower: append
    /// one shipped WAL chunk (empty chunk = pure epoch adoption after a
    /// primary seal).
    ReplWal {
        stream: String,
        epoch: u64,
        from: u64,
        hex: String,
    },
    /// `REPL PROMOTE` — replay every replica stream's WAL tail into a
    /// live basket and attach persistence: the follower becomes a
    /// primary.
    ReplPromote,
    /// Close this control session (the server keeps running).
    Quit,
    /// Stop the whole server gracefully.
    Shutdown,
}

/// Split one leading whitespace-delimited word off `input`.
fn take_word(input: &str) -> (&str, &str) {
    let input = input.trim_start();
    match input.find(char::is_whitespace) {
        Some(i) => (&input[..i], input[i..].trim_start()),
        None => (input, ""),
    }
}

fn expect_kw<'a>(input: &'a str, kw: &str) -> Result<&'a str, String> {
    let (word, rest) = take_word(input);
    if word.eq_ignore_ascii_case(kw) {
        Ok(rest)
    } else {
        Err(format!("expected {kw}, got {word:?}"))
    }
}

/// Parse one whitespace-delimited number off `input`.
fn parse_num<'a, T: std::str::FromStr>(
    input: &'a str,
    what: &str,
) -> Result<(T, &'a str), String> {
    let (word, rest) = take_word(input);
    word.parse()
        .map(|n| (n, rest))
        .map_err(|_| format!("invalid {what} {word:?}"))
}

fn parse_name(input: &str) -> Result<(String, &str), String> {
    let (word, rest) = take_word(input);
    if word.is_empty() {
        return Err("missing name".into());
    }
    if !word
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        return Err(format!("invalid name {word:?}"));
    }
    Ok((word.to_string(), rest))
}

/// `CREATE STREAM <name> (<cols>) [PERSIST] [SHARD BY (<col>) [SHARDS <n>]]`.
///
/// `line` is the whole (trimmed) request, `after_kind` the text after the
/// STREAM keyword. Without a persist/shard clause the line passes through
/// as [`Command::Ddl`], byte-identical to the pre-sharding grammar.
fn parse_create_stream(line: &str, after_kind: &str) -> Result<Command, String> {
    // the name may be glued to the column list ("S(id int)") — the SQL
    // lexer has always accepted that, so the shard-clause scan must too
    let after_kind = after_kind.trim_start();
    let name_end = after_kind
        .char_indices()
        .find(|(_, c)| !c.is_ascii_alphanumeric() && *c != '_')
        .map_or(after_kind.len(), |(i, _)| i);
    if name_end == 0 {
        return Err("missing stream name".into());
    }
    let stream = after_kind[..name_end].to_string();
    let cols = after_kind[name_end..].trim_start();
    if !cols.starts_with('(') {
        return Err("CREATE STREAM requires a (col type, ...) list".into());
    }
    // depth-matched close: column types may carry their own parens
    // (e.g. varchar(20))
    let mut depth = 0usize;
    let mut close = None;
    for (i, c) in cols.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(close) = close else {
        return Err("unterminated column list".into());
    };
    let after_cols_raw = cols[close + 1..].trim();
    // a trailing semicolon was always a legal DDL terminator
    let after_cols = after_cols_raw.trim_end_matches(';').trim_end();
    if after_cols.is_empty() {
        return Ok(Command::Ddl(line.to_string()));
    }
    // the DDL a shard engine (or the persistent-create path) executes:
    // the line up to the column list, clauses stripped
    let clause_at = line.len() - after_cols_raw.len();
    let plain_ddl = line[..clause_at].trim_end().to_string();
    // [PERSIST] — may precede a SHARD BY clause
    let (first, after_first) = take_word(after_cols);
    let (persist, after_cols) = if first.eq_ignore_ascii_case("PERSIST") {
        (true, after_first)
    } else {
        (false, after_cols)
    };
    if after_cols.is_empty() {
        return Ok(Command::DdlPersist {
            ddl: plain_ddl,
            stream,
        });
    }
    // SHARD BY (<col>) [SHARDS <n>]
    let tail = expect_kw(after_cols, "SHARD")?;
    let tail = expect_kw(tail, "BY")?;
    let tail = tail.trim_start();
    let key_body = tail
        .strip_prefix('(')
        .ok_or("SHARD BY requires a parenthesized key column")?;
    let Some(key_close) = key_body.find(')') else {
        return Err("unterminated SHARD BY key".into());
    };
    let (key, extra) = parse_name(&key_body[..key_close])?;
    if !extra.is_empty() {
        return Err("SHARD BY takes exactly one key column".into());
    }
    let tail = key_body[key_close + 1..].trim();
    let shards = if tail.is_empty() {
        None
    } else {
        let tail = expect_kw(tail, "SHARDS")?;
        let (n_word, trailing) = take_word(tail);
        if !trailing.is_empty() {
            return Err(format!("unexpected trailing input {trailing:?}"));
        }
        let n: usize = n_word
            .parse()
            .map_err(|_| format!("invalid shard count {n_word:?}"))?;
        if n == 0 {
            return Err("SHARDS must be at least 1".into());
        }
        Some(n)
    };
    Ok(Command::DdlSharded {
        ddl: plain_ddl,
        stream,
        key,
        shards,
        persist,
    })
}

/// Parse one request line.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let line = line.trim();
    let (head, rest) = take_word(line);
    match head.to_ascii_uppercase().as_str() {
        "" => Err("empty command".into()),
        "PING" => Ok(Command::Ping),
        "STATS" => Ok(Command::Stats),
        "METRICS" => {
            if rest.is_empty() {
                return Ok(Command::Metrics);
            }
            let (sub, tail) = take_word(rest);
            if !sub.eq_ignore_ascii_case("HISTORY") {
                return Err(format!("unexpected trailing input {rest:?}"));
            }
            if tail.is_empty() {
                return Ok(Command::MetricsHistory {
                    series: None,
                    last: None,
                });
            }
            // optional <series> first, optional LAST <n> after
            let (word, _) = take_word(tail);
            let (series, tail) = if word.eq_ignore_ascii_case("LAST") {
                (None, tail)
            } else {
                let (name, after_name) = parse_name(tail)?;
                (Some(name), after_name)
            };
            let last = if tail.is_empty() {
                None
            } else {
                let tail = expect_kw(tail, "LAST")?;
                let (n_word, trailing) = take_word(tail);
                if !trailing.is_empty() {
                    return Err(format!("unexpected trailing input {trailing:?}"));
                }
                let n: usize = n_word
                    .parse()
                    .map_err(|_| format!("invalid snapshot count {n_word:?}"))?;
                Some(n)
            };
            Ok(Command::MetricsHistory { series, last })
        }
        "HEALTH" => {
            if rest.is_empty() {
                Ok(Command::Health)
            } else {
                Err(format!("unexpected trailing input {rest:?}"))
            }
        }
        "TRACE" => {
            let (sub, tail) = take_word(rest);
            match sub.to_ascii_uppercase().as_str() {
                "DUMP" => {
                    if tail.is_empty() {
                        return Ok(Command::TraceDump { query: None });
                    }
                    let tail = expect_kw(tail, "QUERY")?;
                    let (name, trailing) = parse_name(tail)?;
                    if !trailing.is_empty() {
                        return Err(format!("unexpected trailing input {trailing:?}"));
                    }
                    Ok(Command::TraceDump { query: Some(name) })
                }
                "SPANS" => {
                    if tail.is_empty() {
                        return Ok(Command::TraceSpans { batch: None });
                    }
                    let tail = expect_kw(tail, "BATCH")?;
                    let (id_word, trailing) = take_word(tail);
                    if !trailing.is_empty() {
                        return Err(format!("unexpected trailing input {trailing:?}"));
                    }
                    let batch: u64 = id_word
                        .parse()
                        .map_err(|_| format!("invalid batch id {id_word:?}"))?;
                    Ok(Command::TraceSpans { batch: Some(batch) })
                }
                "QUERY" => {
                    let (name, tail) = parse_name(tail)?;
                    let (switch, trailing) = take_word(tail);
                    if !trailing.is_empty() {
                        return Err(format!("unexpected trailing input {trailing:?}"));
                    }
                    let on = match switch.to_ascii_uppercase().as_str() {
                        "ON" => true,
                        "OFF" => false,
                        other => return Err(format!("expected ON or OFF, got {other:?}")),
                    };
                    Ok(Command::TraceStream { query: name, on })
                }
                other => Err(format!("TRACE {other} is not supported")),
            }
        }
        "REPL" => {
            let (sub, tail) = take_word(rest);
            match sub.to_ascii_uppercase().as_str() {
                "OPEN" => {
                    let (stream, tail) = parse_name(tail)?;
                    let ddl = expect_kw(tail, "AS")?;
                    if ddl.is_empty() {
                        return Err("REPL OPEN requires DDL after AS".into());
                    }
                    Ok(Command::ReplOpen {
                        stream,
                        ddl: ddl.to_string(),
                    })
                }
                "STATUS" => {
                    let (stream, trailing) = parse_name(tail)?;
                    if !trailing.is_empty() {
                        return Err(format!("unexpected trailing input {trailing:?}"));
                    }
                    Ok(Command::ReplStatus { stream })
                }
                "EXPORT" => {
                    let (stream, tail) = parse_name(tail)?;
                    let tail = expect_kw(tail, "SEGS")?;
                    let (segs, tail) = parse_num::<usize>(tail, "segment count")?;
                    let tail = expect_kw(tail, "EPOCH")?;
                    let (epoch, tail) = parse_num::<u64>(tail, "epoch")?;
                    let tail = expect_kw(tail, "OFFSET")?;
                    let (offset, trailing) = parse_num::<u64>(tail, "offset")?;
                    if !trailing.is_empty() {
                        return Err(format!("unexpected trailing input {trailing:?}"));
                    }
                    Ok(Command::ReplExport {
                        stream,
                        segs,
                        epoch,
                        offset,
                    })
                }
                "SEGMENT" => {
                    let (stream, tail) = parse_name(tail)?;
                    // segment file names carry '-' and '.', so take the
                    // raw word rather than an identifier
                    let (file, tail) = take_word(tail);
                    if file.is_empty() {
                        return Err("REPL SEGMENT requires a file name".into());
                    }
                    let (rows, tail) = parse_num::<u64>(tail, "row count")?;
                    let (hex, trailing) = take_word(tail);
                    if hex.is_empty() {
                        return Err("REPL SEGMENT requires a hex payload".into());
                    }
                    if !trailing.is_empty() {
                        return Err(format!("unexpected trailing input {trailing:?}"));
                    }
                    Ok(Command::ReplSegment {
                        stream,
                        file: file.to_string(),
                        rows,
                        hex: hex.to_string(),
                    })
                }
                "WAL" => {
                    let (stream, tail) = parse_name(tail)?;
                    let tail = expect_kw(tail, "EPOCH")?;
                    let (epoch, tail) = parse_num::<u64>(tail, "epoch")?;
                    let tail = expect_kw(tail, "FROM")?;
                    let (from, tail) = parse_num::<u64>(tail, "offset")?;
                    // the hex payload may be absent: an empty chunk still
                    // carries an epoch to adopt after a primary seal
                    let (hex, trailing) = take_word(tail);
                    if !trailing.is_empty() {
                        return Err(format!("unexpected trailing input {trailing:?}"));
                    }
                    Ok(Command::ReplWal {
                        stream,
                        epoch,
                        from,
                        hex: hex.to_string(),
                    })
                }
                "PROMOTE" => {
                    if !tail.is_empty() {
                        return Err(format!("unexpected trailing input {tail:?}"));
                    }
                    Ok(Command::ReplPromote)
                }
                other => Err(format!("REPL {other} is not supported")),
            }
        }
        "QUIT" => Ok(Command::Quit),
        "SHUTDOWN" => Ok(Command::Shutdown),
        "CREATE" => {
            let (kind, after_kind) = take_word(rest);
            match kind.to_ascii_uppercase().as_str() {
                "STREAM" => parse_create_stream(line, after_kind),
                "TABLE" | "BASKET" => Ok(Command::Ddl(line.to_string())),
                other => Err(format!("CREATE {other} is not supported")),
            }
        }
        "FLUSH" => {
            let rest = expect_kw(rest, "STREAM")?;
            let (name, trailing) = parse_name(rest)?;
            if !trailing.is_empty() {
                return Err(format!("unexpected trailing input {trailing:?}"));
            }
            Ok(Command::FlushStream { stream: name })
        }
        "EXEC" => {
            if rest.is_empty() {
                Err("EXEC requires a SQL statement".into())
            } else {
                Ok(Command::Exec(rest.to_string()))
            }
        }
        "EXPLAIN" => {
            if rest.is_empty() {
                return Err("EXPLAIN requires SQL or QUERY <name>".into());
            }
            let (word, tail) = take_word(rest);
            // `QUERY <name>` with nothing trailing names a registered
            // query; anything else is a SQL script (no SQL statement
            // starts with the QUERY keyword)
            if word.eq_ignore_ascii_case("QUERY") {
                let (name, trailing) = parse_name(tail)?;
                if !trailing.is_empty() {
                    return Err(format!("unexpected trailing input {trailing:?}"));
                }
                return Ok(Command::ExplainQuery { name });
            }
            Ok(Command::Explain(rest.to_string()))
        }
        "REGISTER" => {
            let rest = expect_kw(rest, "QUERY")?;
            let (name, rest) = parse_name(rest)?;
            let sql = expect_kw(rest, "AS")?;
            if sql.is_empty() {
                return Err("REGISTER QUERY requires SQL after AS".into());
            }
            Ok(Command::RegisterQuery {
                name,
                sql: sql.to_string(),
            })
        }
        "ATTACH" => {
            let (kind, rest) = take_word(rest);
            let (name, rest) = parse_name(rest)?;
            let rest = expect_kw(rest, "ON")?;
            let rest = expect_kw(rest, "PORT")?;
            let (port_word, rest) = take_word(rest);
            let port: u16 = port_word
                .parse()
                .map_err(|_| format!("invalid port {port_word:?}"))?;
            let format = if rest.is_empty() {
                WireFormat::Text
            } else {
                let rest = expect_kw(rest, "FORMAT")?;
                let (fmt_word, trailing) = take_word(rest);
                if !trailing.is_empty() {
                    return Err(format!("unexpected trailing input {trailing:?}"));
                }
                fmt_word.parse::<WireFormat>()?
            };
            match kind.to_ascii_uppercase().as_str() {
                "RECEPTOR" => Ok(Command::AttachReceptor {
                    stream: name,
                    port,
                    format,
                }),
                "EMITTER" => Ok(Command::AttachEmitter {
                    query: name,
                    port,
                    format,
                }),
                other => Err(format!("ATTACH {other} is not supported")),
            }
        }
        "DETACH" => {
            let (kind, rest) = take_word(rest);
            let (name, rest) = parse_name(rest)?;
            let rest = expect_kw(rest, "PORT")?;
            let (port_word, trailing) = take_word(rest);
            if !trailing.is_empty() {
                return Err(format!("unexpected trailing input {trailing:?}"));
            }
            let port: u16 = port_word
                .parse()
                .map_err(|_| format!("invalid port {port_word:?}"))?;
            match kind.to_ascii_uppercase().as_str() {
                "RECEPTOR" => Ok(Command::DetachReceptor { stream: name, port }),
                "EMITTER" => Ok(Command::DetachEmitter { query: name, port }),
                other => Err(format!("DETACH {other} is not supported")),
            }
        }
        other => Err(format!("unknown command {other}")),
    }
}

/// A control-plane reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success, with zero or more body lines.
    Ok(Vec<String>),
    /// Failure, with a single-line message.
    Err(String),
}

impl Response {
    pub fn ok() -> Response {
        Response::Ok(Vec::new())
    }

    pub fn one(line: impl Into<String>) -> Response {
        Response::Ok(vec![line.into()])
    }

    /// Encode onto a writer. Body lines have embedded newlines replaced so
    /// framing always holds.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        match self {
            Response::Ok(body) => {
                writeln!(w, "OK {}", body.len())?;
                for line in body {
                    writeln!(w, "{}", line.replace(['\n', '\r'], " "))?;
                }
            }
            Response::Err(msg) => {
                writeln!(w, "ERR {}", msg.replace(['\n', '\r'], " "))?;
            }
        }
        w.flush()
    }

    /// Decode from a reader (the client side).
    pub fn read_from<R: BufRead>(r: &mut R) -> std::io::Result<Response> {
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        let line = line.trim_end_matches(['\n', '\r']);
        if let Some(msg) = line.strip_prefix("ERR ") {
            return Ok(Response::Err(msg.to_string()));
        }
        let Some(count) = line
            .strip_prefix("OK")
            .map(str::trim)
            .and_then(|n| n.parse::<usize>().ok())
        else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed response header {line:?}"),
            ));
        };
        let mut body = Vec::with_capacity(count);
        for _ in 0..count {
            let mut body_line = String::new();
            if r.read_line(&mut body_line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            body.push(body_line.trim_end_matches(['\n', '\r']).to_string());
        }
        Ok(Response::Ok(body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_commands() {
        assert_eq!(parse_command("ping"), Ok(Command::Ping));
        assert_eq!(parse_command("  STATS  "), Ok(Command::Stats));
        assert_eq!(parse_command("quit"), Ok(Command::Quit));
        assert_eq!(parse_command("Shutdown"), Ok(Command::Shutdown));
    }

    #[test]
    fn ddl_passes_through_verbatim() {
        let line = "create stream S (id int, payload int)";
        assert_eq!(parse_command(line), Ok(Command::Ddl(line.into())));
        assert!(parse_command("CREATE INDEX i").is_err());
    }

    #[test]
    fn shard_clause_parses_and_strips() {
        assert_eq!(
            parse_command("create stream S (id int, v int) shard by (id)"),
            Ok(Command::DdlSharded {
                ddl: "create stream S (id int, v int)".into(),
                stream: "S".into(),
                key: "id".into(),
                shards: None,
                persist: false,
            })
        );
        assert_eq!(
            parse_command("CREATE STREAM trades (sym varchar, px double) SHARD BY (sym) SHARDS 4"),
            Ok(Command::DdlSharded {
                ddl: "CREATE STREAM trades (sym varchar, px double)".into(),
                stream: "trades".into(),
                key: "sym".into(),
                shards: Some(4),
                persist: false,
            })
        );
        // trailing semicolons remain legal, with and without the clause
        let line = "create stream S (id int);";
        assert_eq!(parse_command(line), Ok(Command::Ddl(line.into())));
        assert_eq!(
            parse_command("create stream S (id int) shard by (id) shards 2;"),
            Ok(Command::DdlSharded {
                ddl: "create stream S (id int)".into(),
                stream: "S".into(),
                key: "id".into(),
                shards: Some(2),
                persist: false,
            })
        );
        // parenthesized column types stay inside the column list
        let line = "create stream S (name varchar(20), v int)";
        assert_eq!(parse_command(line), Ok(Command::Ddl(line.into())));
        assert_eq!(
            parse_command("create stream S (name varchar(20), v int) shard by (v)"),
            Ok(Command::DdlSharded {
                ddl: "create stream S (name varchar(20), v int)".into(),
                stream: "S".into(),
                key: "v".into(),
                shards: None,
                persist: false,
            })
        );
        // name glued to the column list parses as it always did
        assert_eq!(
            parse_command("create stream S(id int)"),
            Ok(Command::Ddl("create stream S(id int)".into()))
        );
        assert_eq!(
            parse_command("create stream S(id int) shard by (id)"),
            Ok(Command::DdlSharded {
                ddl: "create stream S(id int)".into(),
                stream: "S".into(),
                key: "id".into(),
                shards: None,
                persist: false,
            })
        );
        assert!(parse_command("CREATE STREAM S (id int) SHARD BY id").is_err());
        assert!(parse_command("CREATE STREAM S (id int) SHARD BY (id, v)").is_err());
        assert!(parse_command("CREATE STREAM S (id int) SHARD BY (id) SHARDS 0").is_err());
        assert!(parse_command("CREATE STREAM S (id int) SHARD BY (id) SHARDS x").is_err());
        assert!(parse_command("CREATE STREAM S (id int) SHARD BY (id) SHARDS 2 junk").is_err());
        assert!(parse_command("CREATE STREAM S (id int) FROBNICATE").is_err());
    }

    #[test]
    fn persist_clause_parses_and_strips() {
        assert_eq!(
            parse_command("create stream S (id int, v int) persist"),
            Ok(Command::DdlPersist {
                ddl: "create stream S (id int, v int)".into(),
                stream: "S".into(),
            })
        );
        // trailing semicolon and glued name stay legal
        assert_eq!(
            parse_command("CREATE STREAM S(id int) PERSIST;"),
            Ok(Command::DdlPersist {
                ddl: "CREATE STREAM S(id int)".into(),
                stream: "S".into(),
            })
        );
        // PERSIST composes with SHARD BY (persist first)
        assert_eq!(
            parse_command("create stream S (id int) persist shard by (id) shards 2"),
            Ok(Command::DdlSharded {
                ddl: "create stream S (id int)".into(),
                stream: "S".into(),
                key: "id".into(),
                shards: Some(2),
                persist: true,
            })
        );
        assert!(parse_command("create stream S (id int) persist nonsense").is_err());
        assert!(parse_command("create stream S (id int) shard by (id) persist").is_err());
    }

    #[test]
    fn flush_and_detach_commands() {
        assert_eq!(
            parse_command("FLUSH STREAM S"),
            Ok(Command::FlushStream {
                stream: "S".into()
            })
        );
        assert_eq!(
            parse_command("detach receptor S port 5001"),
            Ok(Command::DetachReceptor {
                stream: "S".into(),
                port: 5001,
            })
        );
        assert_eq!(
            parse_command("DETACH EMITTER hot PORT 5002"),
            Ok(Command::DetachEmitter {
                query: "hot".into(),
                port: 5002,
            })
        );
        assert!(parse_command("FLUSH STREAM").is_err());
        assert!(parse_command("FLUSH STREAM S extra").is_err());
        assert!(parse_command("FLUSH TABLE T").is_err());
        assert!(parse_command("DETACH RECEPTOR S PORT banana").is_err());
        assert!(parse_command("DETACH RECEPTOR S PORT 1 extra").is_err());
        assert!(parse_command("DETACH TAP S PORT 1").is_err());
        assert!(parse_command("DETACH RECEPTOR S").is_err());
    }

    #[test]
    fn register_query_keeps_sql_verbatim() {
        let cmd = parse_command(
            "REGISTER QUERY hot AS select id from [select * from S where v > 10] as W",
        )
        .unwrap();
        assert_eq!(
            cmd,
            Command::RegisterQuery {
                name: "hot".into(),
                sql: "select id from [select * from S where v > 10] as W".into(),
            }
        );
        // string literals keep their inner spacing
        let cmd = parse_command("register query q as select 'a  b' from T").unwrap();
        assert_eq!(
            cmd,
            Command::RegisterQuery {
                name: "q".into(),
                sql: "select 'a  b' from T".into(),
            }
        );
    }

    #[test]
    fn attach_commands() {
        assert_eq!(
            parse_command("ATTACH RECEPTOR S ON PORT 0"),
            Ok(Command::AttachReceptor {
                stream: "S".into(),
                port: 0,
                format: WireFormat::Text,
            })
        );
        assert_eq!(
            parse_command("attach emitter hot on port 9999"),
            Ok(Command::AttachEmitter {
                query: "hot".into(),
                port: 9999,
                format: WireFormat::Text,
            })
        );
        assert!(parse_command("ATTACH RECEPTOR S ON PORT banana").is_err());
        assert!(parse_command("ATTACH RECEPTOR S ON PORT 1 extra").is_err());
        assert!(parse_command("ATTACH TAP S ON PORT 1").is_err());
    }

    #[test]
    fn attach_with_format() {
        assert_eq!(
            parse_command("ATTACH RECEPTOR S ON PORT 0 FORMAT BINARY"),
            Ok(Command::AttachReceptor {
                stream: "S".into(),
                port: 0,
                format: WireFormat::Binary,
            })
        );
        assert_eq!(
            parse_command("attach emitter hot on port 7 format text"),
            Ok(Command::AttachEmitter {
                query: "hot".into(),
                port: 7,
                format: WireFormat::Text,
            })
        );
        assert!(parse_command("ATTACH RECEPTOR S ON PORT 0 FORMAT csv").is_err());
        assert!(parse_command("ATTACH RECEPTOR S ON PORT 0 FORMAT").is_err());
        assert!(parse_command("ATTACH RECEPTOR S ON PORT 0 BINARY").is_err());
        assert!(parse_command("ATTACH RECEPTOR S ON PORT 0 FORMAT BINARY extra").is_err());
    }

    #[test]
    fn explain_commands() {
        assert_eq!(
            parse_command("EXPLAIN select a from R where a > 1"),
            Ok(Command::Explain("select a from R where a > 1".into()))
        );
        assert_eq!(
            parse_command("explain query hot"),
            Ok(Command::ExplainQuery { name: "hot".into() })
        );
        assert!(parse_command("EXPLAIN").is_err());
        assert!(parse_command("EXPLAIN QUERY").is_err());
        assert!(parse_command("EXPLAIN QUERY hot extra").is_err());
        assert!(parse_command("EXPLAIN QUERY bad-name").is_err());
    }

    #[test]
    fn metrics_and_trace_commands() {
        assert_eq!(parse_command("METRICS"), Ok(Command::Metrics));
        assert_eq!(parse_command("metrics"), Ok(Command::Metrics));
        assert!(parse_command("METRICS now").is_err());
        assert_eq!(
            parse_command("TRACE DUMP"),
            Ok(Command::TraceDump { query: None })
        );
        assert_eq!(
            parse_command("trace dump query hot"),
            Ok(Command::TraceDump {
                query: Some("hot".into())
            })
        );
        assert_eq!(
            parse_command("TRACE QUERY hot ON"),
            Ok(Command::TraceStream {
                query: "hot".into(),
                on: true,
            })
        );
        assert_eq!(
            parse_command("trace query hot off"),
            Ok(Command::TraceStream {
                query: "hot".into(),
                on: false,
            })
        );
        assert_eq!(
            parse_command("METRICS HISTORY"),
            Ok(Command::MetricsHistory {
                series: None,
                last: None
            })
        );
        assert_eq!(
            parse_command("metrics history dc_ingest_rate"),
            Ok(Command::MetricsHistory {
                series: Some("dc_ingest_rate".into()),
                last: None
            })
        );
        assert_eq!(
            parse_command("METRICS HISTORY LAST 5"),
            Ok(Command::MetricsHistory {
                series: None,
                last: Some(5)
            })
        );
        assert_eq!(
            parse_command("METRICS HISTORY dc_ingest_rate LAST 2"),
            Ok(Command::MetricsHistory {
                series: Some("dc_ingest_rate".into()),
                last: Some(2)
            })
        );
        assert!(parse_command("METRICS HISTORY LAST").is_err());
        assert!(parse_command("METRICS HISTORY LAST x").is_err());
        assert!(parse_command("METRICS HISTORY s LAST 2 extra").is_err());
        assert!(parse_command("METRICS HISTORY bad-name").is_err());
        assert_eq!(
            parse_command("TRACE SPANS"),
            Ok(Command::TraceSpans { batch: None })
        );
        assert_eq!(
            parse_command("trace spans batch 12345"),
            Ok(Command::TraceSpans { batch: Some(12345) })
        );
        assert!(parse_command("TRACE SPANS 12345").is_err());
        assert!(parse_command("TRACE SPANS BATCH").is_err());
        assert!(parse_command("TRACE SPANS BATCH x").is_err());
        assert!(parse_command("TRACE SPANS BATCH 1 extra").is_err());
        assert_eq!(parse_command("HEALTH"), Ok(Command::Health));
        assert_eq!(parse_command("health"), Ok(Command::Health));
        assert!(parse_command("HEALTH now").is_err());
        assert!(parse_command("TRACE").is_err());
        assert!(parse_command("TRACE DUMP hot").is_err());
        assert!(parse_command("TRACE DUMP QUERY hot extra").is_err());
        assert!(parse_command("TRACE QUERY hot").is_err());
        assert!(parse_command("TRACE QUERY hot MAYBE").is_err());
        assert!(parse_command("TRACE QUERY bad-name ON").is_err());
    }

    #[test]
    fn rejects_bad_names() {
        assert!(parse_command("REGISTER QUERY bad-name AS select 1").is_err());
        assert!(parse_command("REGISTER QUERY q WITHOUT select 1").is_err());
        assert!(parse_command("frobnicate").is_err());
        assert!(parse_command("").is_err());
    }

    #[test]
    fn repl_commands() {
        assert_eq!(
            parse_command("REPL OPEN S AS CREATE STREAM S (id int)").unwrap(),
            Command::ReplOpen {
                stream: "S".into(),
                ddl: "CREATE STREAM S (id int)".into(),
            }
        );
        assert_eq!(
            parse_command("repl status S").unwrap(),
            Command::ReplStatus { stream: "S".into() }
        );
        assert_eq!(
            parse_command("REPL EXPORT S SEGS 3 EPOCH 7 OFFSET 4096").unwrap(),
            Command::ReplExport {
                stream: "S".into(),
                segs: 3,
                epoch: 7,
                offset: 4096,
            }
        );
        // segment file names carry '-' and '.' — must parse as a raw word
        assert_eq!(
            parse_command("REPL SEGMENT S seg-000002.dcs 128 deadbeef").unwrap(),
            Command::ReplSegment {
                stream: "S".into(),
                file: "seg-000002.dcs".into(),
                rows: 128,
                hex: "deadbeef".into(),
            }
        );
        assert_eq!(
            parse_command("REPL WAL S EPOCH 2 FROM 64 0a0b").unwrap(),
            Command::ReplWal {
                stream: "S".into(),
                epoch: 2,
                from: 64,
                hex: "0a0b".into(),
            }
        );
        // empty chunk: pure epoch adoption after a primary seal
        assert_eq!(
            parse_command("REPL WAL S EPOCH 3 FROM 0").unwrap(),
            Command::ReplWal {
                stream: "S".into(),
                epoch: 3,
                from: 0,
                hex: String::new(),
            }
        );
        assert_eq!(parse_command("REPL PROMOTE").unwrap(), Command::ReplPromote);
        assert!(parse_command("REPL PROMOTE now").is_err());
        assert!(parse_command("REPL EXPORT S SEGS x EPOCH 0 OFFSET 0").is_err());
        assert!(parse_command("REPL SEGMENT S seg-000001.dcs 10").is_err());
        assert!(parse_command("REPL FROBNICATE").is_err());
    }

    #[test]
    fn response_roundtrip() {
        let mut buf = Vec::new();
        Response::Ok(vec!["a=1".into(), "b|2".into()])
            .write_to(&mut buf)
            .unwrap();
        Response::Err("boom".into()).write_to(&mut buf).unwrap();
        Response::ok().write_to(&mut buf).unwrap();
        let mut r = std::io::BufReader::new(&buf[..]);
        assert_eq!(
            Response::read_from(&mut r).unwrap(),
            Response::Ok(vec!["a=1".into(), "b|2".into()])
        );
        assert_eq!(
            Response::read_from(&mut r).unwrap(),
            Response::Err("boom".into())
        );
        assert_eq!(Response::read_from(&mut r).unwrap(), Response::Ok(vec![]));
    }

    #[test]
    fn response_newline_injection_is_neutralized() {
        let mut buf = Vec::new();
        Response::one("evil\nOK 0").write_to(&mut buf).unwrap();
        let mut r = std::io::BufReader::new(&buf[..]);
        assert_eq!(
            Response::read_from(&mut r).unwrap(),
            Response::Ok(vec!["evil OK 0".into()])
        );
    }
}
