//! The control-plane listener: accepts client connections, parses
//! commands (see [`crate::protocol`]) and dispatches them onto the
//! [`ServerRuntime`]. One thread per control connection; the accept loop
//! polls the runtime's stop flag so `SHUTDOWN` (from any session) tears
//! the whole server down gracefully.
//!
//! The accept/read/dispatch/respond plumbing is generic ([`serve_loop`])
//! — the `dccluster` router serves the identical wire protocol with a
//! different dispatch table, so the two daemons share one loop.

use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use crate::error::Result;
use crate::protocol::{parse_command, Command, Response};
use crate::runtime::ServerRuntime;
use crate::session::SessionManager;

use std::time::Duration;

const POLL_INTERVAL: Duration = Duration::from_millis(20);
/// Upper bound on a control-plane response write — a client that stops
/// reading must not wedge its connection thread (and thereby shutdown).
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// The control-plane server.
pub struct ControlServer {
    listener: TcpListener,
    runtime: Arc<ServerRuntime>,
}

impl ControlServer {
    /// Bind the control listener (e.g. `127.0.0.1:7077`, port 0 for
    /// ephemeral).
    pub fn bind(addr: &str, runtime: Arc<ServerRuntime>) -> Result<ControlServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(ControlServer { listener, runtime })
    }

    /// The bound control-plane address (useful with ephemeral ports).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    pub fn runtime(&self) -> &Arc<ServerRuntime> {
        &self.runtime
    }

    /// Serve until a `SHUTDOWN` command arrives (or the stop flag is set
    /// externally), then tear the runtime down. Blocks the caller.
    pub fn serve(self) -> Result<()> {
        let rt = &self.runtime;
        serve_loop(
            &self.listener,
            &rt.sessions,
            &|| rt.is_stopping(),
            &|request| dispatch(rt, request),
        );
        self.runtime.shutdown();
        Ok(())
    }
}

/// The generic control-plane serve loop: accept connections until
/// `is_stopping`, read one command line at a time per connection,
/// hand it to `dispatch`, write the framed [`Response`]. Session
/// bookkeeping (open / per-command count / close) is handled here.
/// Connection threads are scoped, so the loop returns only after every
/// connection wound down.
pub fn serve_loop<S, D>(
    listener: &TcpListener,
    sessions: &SessionManager,
    is_stopping: &S,
    dispatch: &D,
) where
    S: Fn() -> bool + Sync,
    D: Fn(&str) -> (Response, bool) + Sync,
{
    std::thread::scope(|scope| {
        let mut conns: Vec<std::thread::ScopedJoinHandle<'_, ()>> = Vec::new();
        while !is_stopping() {
            match listener.accept() {
                Ok((sock, peer)) => {
                    let peer = peer.to_string();
                    conns.push(
                        std::thread::Builder::new()
                            .name("dc-control-conn".into())
                            .spawn_scoped(scope, move || {
                                control_connection(sessions, is_stopping, dispatch, sock, peer)
                            })
                            .expect("spawn control connection thread"),
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(_) => {
                    // transient accept failures (ECONNABORTED, EMFILE, ...)
                    // must not take the whole daemon down — back off, retry
                    std::thread::sleep(POLL_INTERVAL);
                }
            }
            conns.retain(|t| !t.is_finished());
        }
        // leaving the scope joins the remaining connection threads
    });
}

/// Serve one control connection until QUIT/SHUTDOWN/EOF/stop.
fn control_connection<S, D>(
    sessions: &SessionManager,
    is_stopping: &S,
    dispatch: &D,
    sock: TcpStream,
    peer: String,
) where
    S: Fn() -> bool,
    D: Fn(&str) -> (Response, bool),
{
    let session = sessions.open(&peer);
    let _ = sock.set_read_timeout(Some(POLL_INTERVAL));
    let _ = sock.set_write_timeout(Some(WRITE_TIMEOUT));
    let Ok(write_half) = sock.try_clone() else {
        sessions.close(session);
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(sock);
    let mut line = String::new();
    loop {
        use std::io::BufRead;
        match reader.read_line(&mut line) {
            Ok(0) => break, // client hung up
            Ok(_) => {
                let request = line.trim().to_string();
                line.clear();
                if request.is_empty() {
                    continue;
                }
                sessions.note_command(session);
                let (response, end) = dispatch(&request);
                if response.write_to(&mut writer).is_err() {
                    break;
                }
                let _ = writer.flush();
                // `end` covers QUIT/SHUTDOWN from this session; the stop
                // check covers a shutdown requested elsewhere while this
                // client pipelines commands back-to-back (it would never
                // take the idle branch below)
                if end || is_stopping() {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if is_stopping() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    sessions.close(session);
}

/// Execute one command; the bool says "close this connection afterwards".
fn dispatch(rt: &Arc<ServerRuntime>, request: &str) -> (Response, bool) {
    let cmd = match parse_command(request) {
        Ok(c) => c,
        Err(e) => return (Response::Err(e), false),
    };
    match cmd {
        Command::Ping => (Response::one("pong"), false),
        Command::Ddl(sql) | Command::Exec(sql) => (result_response(rt.exec(&sql)), false),
        Command::DdlPersist { ddl, stream } => {
            match rt.create_stream_persistent(&ddl, &stream) {
                Ok(()) => (Response::one(format!("stream={stream} persistent=true")), false),
                Err(e) => (Response::Err(e.to_string()), false),
            }
        }
        Command::FlushStream { stream } => match rt.flush_stream(&stream) {
            Ok(n) => (Response::one(format!("sealed_rows={n}")), false),
            Err(e) => (Response::Err(e.to_string()), false),
        },
        Command::DdlSharded { stream, .. } => (
            Response::Err(format!(
                "stream {stream}: SHARD BY needs a dccluster shard router \
                 (this is a single datacelld engine)"
            )),
            false,
        ),
        Command::RegisterQuery { name, sql } => {
            match rt.register_query(&name, &sql) {
                Ok(handle) => {
                    let kind = if handle.broadcast.is_some() {
                        "subscribable"
                    } else {
                        "sink"
                    };
                    (Response::one(format!("query={name} kind={kind}")), false)
                }
                Err(e) => (Response::Err(e.to_string()), false),
            }
        }
        Command::AttachReceptor {
            stream,
            port,
            format,
        } => match rt.attach_receptor(&stream, port, format) {
            Ok(p) => (Response::one(format!("port={p}")), false),
            Err(e) => (Response::Err(e.to_string()), false),
        },
        Command::AttachEmitter {
            query,
            port,
            format,
        } => match rt.attach_emitter(&query, port, format) {
            Ok(p) => (Response::one(format!("port={p}")), false),
            Err(e) => (Response::Err(e.to_string()), false),
        },
        Command::DetachReceptor { stream, port } => match rt.detach_receptor(&stream, port) {
            Ok(n) => (Response::one(format!("detached={n}")), false),
            Err(e) => (Response::Err(e.to_string()), false),
        },
        Command::DetachEmitter { query, port } => match rt.detach_emitter(&query, port) {
            Ok(n) => (Response::one(format!("detached={n}")), false),
            Err(e) => (Response::Err(e.to_string()), false),
        },
        Command::Explain(sql) => (result_response(rt.explain_sql(&sql)), false),
        Command::ExplainQuery { name } => (result_response(rt.explain_query(&name)), false),
        Command::Stats => (Response::Ok(rt.stats()), false),
        Command::Metrics => (Response::Ok(rt.metrics()), false),
        Command::MetricsHistory { series, last } => (
            result_response(rt.metrics_history(series.as_deref(), last)),
            false,
        ),
        Command::Health => (result_response(rt.health()), false),
        Command::TraceDump { query } => (result_response(rt.trace_dump(query.as_deref())), false),
        Command::TraceSpans { batch } => (result_response(rt.trace_spans(batch)), false),
        Command::TraceStream { query, on } => {
            if on {
                match rt.trace_on(&query) {
                    Ok(p) => (Response::one(format!("port={p}")), false),
                    Err(e) => (Response::Err(e.to_string()), false),
                }
            } else {
                match rt.trace_off(&query) {
                    Ok(n) => (Response::one(format!("closed_taps={n}")), false),
                    Err(e) => (Response::Err(e.to_string()), false),
                }
            }
        }
        Command::ReplOpen { stream, ddl } => match rt.repl_open(&stream, &ddl) {
            Ok(()) => (Response::one(format!("stream={stream} replica=true")), false),
            Err(e) => (Response::Err(e.to_string()), false),
        },
        Command::ReplStatus { stream } => (result_response(rt.repl_status(&stream)), false),
        Command::ReplExport {
            stream,
            segs,
            epoch,
            offset,
        } => (
            result_response(rt.repl_export(&stream, segs, epoch, offset)),
            false,
        ),
        Command::ReplSegment {
            stream,
            file,
            rows,
            hex,
        } => match rt.repl_segment(&stream, &file, rows, &hex) {
            Ok(()) => (Response::one(format!("segment={file} applied=true")), false),
            Err(e) => (Response::Err(e.to_string()), false),
        },
        Command::ReplWal {
            stream,
            epoch,
            from,
            hex,
        } => match rt.repl_wal(&stream, epoch, from, &hex) {
            Ok(()) => (Response::one(format!("stream={stream} wal_applied=true")), false),
            Err(e) => (Response::Err(e.to_string()), false),
        },
        Command::ReplPromote => (result_response(rt.repl_promote()), false),
        Command::Quit => (Response::ok(), true),
        Command::Shutdown => {
            rt.request_shutdown();
            (Response::ok(), true)
        }
    }
}

fn result_response(r: Result<Vec<String>>) -> Response {
    match r {
        Ok(body) => Response::Ok(body),
        Err(e) => Response::Err(e.to_string()),
    }
}
