//! `datacelld` — the DataCell stream-server daemon.
//!
//! ```text
//! datacelld [--listen HOST:PORT] [--data-host HOST] [--backoff-us N]
//!           [--data-dir PATH] [--fsync always|every_n:N|off] [--seal-rows N]
//!           [--trace-ring N] [--trace-sample N]
//!           [--metrics-interval-ms N] [--metrics-depth N]
//! ```
//!
//! Binds the control plane on `--listen` (default `127.0.0.1:7077`) and
//! serves until a client sends `SHUTDOWN`. Data-plane receptor/emitter
//! ports are opened on `--data-host` (default `127.0.0.1`) by `ATTACH`
//! commands. See the crate docs for the command grammar.
//!
//! `--data-dir` enables durability: `CREATE STREAM ... PERSIST` streams
//! are write-ahead logged and sealed into columnar segments under that
//! directory, and on boot the daemon replays the manifest and WAL tails
//! *before* accepting connections.

use std::time::Duration;

use dcserver::{bind, ServerConfig};

fn main() {
    let mut listen = "127.0.0.1:7077".to_string();
    let mut config = ServerConfig::default();
    let mut data_host_explicit = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(v) => listen = v,
                None => die("--listen requires HOST:PORT"),
            },
            "--data-host" => match args.next() {
                Some(v) => {
                    config.data_host = v;
                    data_host_explicit = true;
                }
                None => die("--data-host requires HOST"),
            },
            "--backoff-us" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(us) => config.idle_backoff = Duration::from_micros(us),
                None => die("--backoff-us requires a number"),
            },
            "--data-dir" => match args.next() {
                Some(v) => config.data_dir = Some(v.into()),
                None => die("--data-dir requires a path"),
            },
            "--fsync" => match args.next().map(|v| v.parse()) {
                Some(Ok(policy)) => config.fsync = policy,
                Some(Err(e)) => die(&format!("--fsync: {e}")),
                None => die("--fsync requires always|every_n:N|off"),
            },
            "--seal-rows" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config.seal_rows = n,
                None => die("--seal-rows requires a number"),
            },
            "--trace-ring" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.trace_ring = n,
                _ => die("--trace-ring requires a positive number"),
            },
            "--trace-sample" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => config.trace_sample = n,
                None => die("--trace-sample requires a number (0 = off)"),
            },
            "--metrics-interval-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) if ms > 0 => config.metrics_interval = Duration::from_millis(ms),
                _ => die("--metrics-interval-ms requires a positive number"),
            },
            "--metrics-depth" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config.metrics_depth = n,
                None => die("--metrics-depth requires a number"),
            },
            "--help" | "-h" => {
                println!(
                    "datacelld [--listen HOST:PORT] [--data-host HOST] [--backoff-us N]\n          \
                     [--data-dir PATH] [--fsync always|every_n:N|off] [--seal-rows N]\n          \
                     [--trace-ring N] [--trace-sample N (0 = off)]\n          \
                     [--metrics-interval-ms N] [--metrics-depth N]\n\n\
                     Control-plane commands (one per line):\n  \
                     PING | CREATE STREAM/TABLE/BASKET ... [PERSIST] | EXEC <sql> |\n  \
                     FLUSH STREAM <name> | REGISTER QUERY <name> AS <sql> |\n  \
                     ATTACH RECEPTOR <stream> ON PORT <p> |\n  \
                     ATTACH EMITTER <query> ON PORT <p> |\n  \
                     DETACH RECEPTOR/EMITTER <name> PORT <p> | STATS |\n  \
                     METRICS | METRICS HISTORY [<series>] [LAST <n>] |\n  \
                     TRACE DUMP | TRACE SPANS [BATCH <id>] | HEALTH | QUIT | SHUTDOWN"
                );
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
    }

    // data-plane ports follow the control-plane interface unless
    // overridden — clients derive data addresses from the host they
    // dialed, so a diverging default would strand ATTACHed ports
    if !data_host_explicit {
        if let Some(host) = listen.rsplit_once(':').map(|(h, _)| h) {
            // IPv6 literals arrive bracketed ([::1]:7077) but bind takes
            // the bare address
            let host = host.trim_start_matches('[').trim_end_matches(']');
            if !host.is_empty() {
                config.data_host = host.to_string();
            }
        }
    }

    let server = match bind(&listen, config) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot bind {listen}: {e}")),
    };
    if let Some(r) = server.runtime().recovery_report() {
        eprintln!(
            "datacelld: recovered {} stream(s): {} segment(s), {} WAL batch(es) / {} row(s) \
             replayed, {} torn tail(s) truncated",
            r.streams, r.segments, r.replayed_batches, r.replayed_rows, r.torn_tails
        );
    }
    match server.local_addr() {
        Ok(addr) => eprintln!("datacelld: control plane on {addr}"),
        Err(_) => eprintln!("datacelld: control plane on {listen}"),
    }
    if let Err(e) = server.serve() {
        die(&format!("server error: {e}"));
    }
    eprintln!("datacelld: shut down cleanly");
}

fn die(msg: &str) -> ! {
    eprintln!("datacelld: {msg}");
    std::process::exit(2);
}
