//! `dcclient` — the client library for `datacelld`.
//!
//! Three connection kinds mirror the server's port layout:
//!
//! * [`Client`] speaks the control-plane protocol (DDL, query
//!   registration, port attachment, stats, shutdown);
//! * [`ReceptorSink`] writes tuple batches into a receptor port;
//! * [`EmitterTap`] reads result batches from an emitter port.
//!
//! The data plane is **batch-first**: [`ReceptorSink::send_batch`] and
//! [`EmitterTap::next_batch`] move whole [`Relation`]s, in either the
//! §3.1 text protocol or the columnar binary frame format
//! ([`datacell::frame`]); the per-row methods are thin convenience
//! wrappers that buffer into batches. Text is the default everywhere, so
//! pre-existing sessions run unmodified.
//!
//! ```no_run
//! use dcserver::client::Client;
//! use monet::prelude::*;
//!
//! let mut c = Client::connect("127.0.0.1:7077").unwrap();
//! c.create_stream("S", "(id int, v int)").unwrap();
//! c.register_query("hot", "select id from [select * from S where S.v > 10] as W")
//!     .unwrap();
//! let rport = c.attach_receptor("S", 0).unwrap();
//! let eport = c.attach_emitter("hot", 0).unwrap();
//! let mut sink = c.open_receptor(rport).unwrap();
//! let mut tap = c.open_emitter(eport).unwrap();
//! sink.send_row(&[Value::Int(1), Value::Int(99)]).unwrap();
//! sink.flush().unwrap();
//! let row = tap
//!     .next_row(&Schema::from_pairs(&[("id", ValueType::Int)]))
//!     .unwrap();
//! assert_eq!(row, Some(vec![Value::Int(1)]));
//! ```
//!
//! The binary fast path negotiates the format at `ATTACH` time and moves
//! columnar batches end-to-end:
//!
//! ```no_run
//! use dcserver::client::Client;
//! use datacell::frame::WireFormat;
//! use monet::prelude::*;
//!
//! let mut c = Client::connect("127.0.0.1:7077").unwrap();
//! c.create_stream("S", "(id int, v int)").unwrap();
//! c.register_query("all", "select id, v from [select * from S] as Z").unwrap();
//! let schema = Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)]);
//! let rport = c.attach_receptor_fmt("S", 0, WireFormat::Binary).unwrap();
//! let eport = c.attach_emitter_fmt("all", 0, WireFormat::Binary).unwrap();
//! let mut sink = c.open_receptor_with(rport, WireFormat::Binary, &schema).unwrap();
//! let mut tap = c.open_emitter_with(eport, WireFormat::Binary).unwrap();
//! let batch = Relation::from_columns(vec![
//!     ("id".into(), Column::from_ints(vec![1, 2])),
//!     ("v".into(), Column::from_ints(vec![10, 20])),
//! ]).unwrap();
//! sink.send_batch(&batch).unwrap();
//! sink.flush().unwrap();
//! let result = tap.next_batch(&schema).unwrap().unwrap();
//! assert_eq!(result.len(), 2);
//! ```

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use datacell::frame::{self, WireFormat};
use datacell::net::{encode_batch_text, parse_row};
use monet::prelude::*;

use crate::error::{Result, ServerError};
use crate::protocol::Response;
use crate::stats::StatsReport;

/// Rows a [`ReceptorSink`] buffers before `send_row` auto-flushes them
/// as one batch.
const SINK_BATCH: usize = 4096;

/// A control-plane connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    server: SocketAddr,
}

impl Client {
    /// Connect to a `datacelld` control port.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let server = stream.peer_addr()?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            server,
        })
    }

    /// Connect with a bounded connect timeout. The cluster router uses
    /// this on its engine control sessions so a dead or unresponsive
    /// host fails the connect in bounded time instead of hanging the
    /// caller on the OS default.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Client> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        let server = stream.peer_addr()?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            server,
        })
    }

    /// The server's control-plane address.
    pub fn server_addr(&self) -> SocketAddr {
        self.server
    }

    /// Bound how long control-plane reads and writes may block. The
    /// cluster router sets this on its per-shard control sessions so one
    /// hung engine fails requests instead of wedging the whole control
    /// plane. After a timeout fires mid-response the connection may be
    /// desynced — treat the peer as broken.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        self.reader.get_ref().set_write_timeout(timeout)?;
        Ok(())
    }

    /// Send one raw command line; return the response body on success.
    pub fn request(&mut self, line: &str) -> Result<Vec<String>> {
        if line.contains(['\n', '\r']) {
            // the control protocol is line-oriented: a newline here would
            // be parsed as a second command, desyncing every later
            // request/response pair (or injecting commands like SHUTDOWN)
            return Err(ServerError::Protocol(
                "control commands must be a single line (flatten SQL before sending)".into(),
            ));
        }
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        match Response::read_from(&mut self.reader)? {
            Response::Ok(body) => Ok(body),
            Response::Err(msg) => Err(ServerError::Protocol(msg)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        self.request("PING").map(|_| ())
    }

    /// `CREATE STREAM name (col type, ...)`.
    pub fn create_stream(&mut self, name: &str, columns: &str) -> Result<()> {
        self.request(&format!("CREATE STREAM {name} {columns}"))
            .map(|_| ())
    }

    /// `CREATE TABLE name (col type, ...)`.
    pub fn create_table(&mut self, name: &str, columns: &str) -> Result<()> {
        self.request(&format!("CREATE TABLE {name} {columns}"))
            .map(|_| ())
    }

    /// `CREATE STREAM name (col type, ...) PERSIST` — a durable stream:
    /// acknowledged appends survive a server crash. Requires a daemon
    /// running with `--data-dir`.
    pub fn create_persistent_stream(&mut self, name: &str, columns: &str) -> Result<()> {
        self.request(&format!("CREATE STREAM {name} {columns} PERSIST"))
            .map(|_| ())
    }

    /// `FLUSH STREAM name` — seal the durable stream's hot rows into a
    /// segment now. Returns the number of rows sealed.
    pub fn flush_stream(&mut self, name: &str) -> Result<u64> {
        let body = self.request(&format!("FLUSH STREAM {name}"))?;
        body.first()
            .and_then(|l| l.strip_prefix("sealed_rows="))
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ServerError::Protocol(format!("malformed FLUSH response {body:?}")))
    }

    /// `DETACH RECEPTOR <stream> PORT <p>` — close a receptor port
    /// previously opened with [`Client::attach_receptor`].
    pub fn detach_receptor(&mut self, stream: &str, port: u16) -> Result<()> {
        self.request(&format!("DETACH RECEPTOR {stream} PORT {port}"))
            .map(|_| ())
    }

    /// `DETACH EMITTER <query> PORT <p>` — close an emitter port
    /// previously opened with [`Client::attach_emitter`].
    pub fn detach_emitter(&mut self, query: &str, port: u16) -> Result<()> {
        self.request(&format!("DETACH EMITTER {query} PORT {port}"))
            .map(|_| ())
    }

    /// One-shot SQL; returns result lines (`# col|col` header then wire
    /// rows) when the script ends in a SELECT.
    pub fn exec(&mut self, sql: &str) -> Result<Vec<String>> {
        self.request(&format!("EXEC {sql}"))
    }

    /// Register a continuous query.
    pub fn register_query(&mut self, name: &str, sql: &str) -> Result<()> {
        self.request(&format!("REGISTER QUERY {name} AS {sql}"))
            .map(|_| ())
    }

    /// Open a text receptor port for `stream` (0 = ephemeral); returns
    /// the bound port.
    pub fn attach_receptor(&mut self, stream: &str, port: u16) -> Result<u16> {
        self.attach_receptor_fmt(stream, port, WireFormat::Text)
    }

    /// Open a receptor port with an explicit wire format.
    pub fn attach_receptor_fmt(
        &mut self,
        stream: &str,
        port: u16,
        format: WireFormat,
    ) -> Result<u16> {
        let body = self.request(&format!(
            "ATTACH RECEPTOR {stream} ON PORT {port}{}",
            format_clause(format)
        ))?;
        parse_port(&body)
    }

    /// Open a text emitter port for `query` (0 = ephemeral); returns the
    /// bound port.
    pub fn attach_emitter(&mut self, query: &str, port: u16) -> Result<u16> {
        self.attach_emitter_fmt(query, port, WireFormat::Text)
    }

    /// Open an emitter port with an explicit wire format.
    pub fn attach_emitter_fmt(
        &mut self,
        query: &str,
        port: u16,
        format: WireFormat,
    ) -> Result<u16> {
        let body = self.request(&format!(
            "ATTACH EMITTER {query} ON PORT {port}{}",
            format_clause(format)
        ))?;
        parse_port(&body)
    }

    /// The server's `STATS` report, raw lines.
    pub fn stats(&mut self) -> Result<Vec<String>> {
        self.request("STATS")
    }

    /// `EXPLAIN <sql>`: the compiled physical plan of a script (pruned
    /// column sets per scan, predicate order, materialization
    /// boundaries), one line per plan row.
    pub fn explain(&mut self, sql: &str) -> Result<Vec<String>> {
        self.request(&format!("EXPLAIN {sql}"))
    }

    /// `EXPLAIN QUERY <name>`: the plan of a registered continuous query.
    pub fn explain_query(&mut self, name: &str) -> Result<Vec<String>> {
        self.request(&format!("EXPLAIN QUERY {name}"))
    }

    /// The server's `STATS` report, parsed into typed rows — the form
    /// machine consumers (the cluster router's placement, tests) want.
    pub fn stats_report(&mut self) -> Result<StatsReport> {
        StatsReport::parse(&self.stats()?)
    }

    /// The server's `METRICS` report: Prometheus text exposition lines
    /// (parse them with [`dctrace::parse_exposition`]).
    pub fn metrics(&mut self) -> Result<Vec<String>> {
        self.request("METRICS")
    }

    /// `METRICS HISTORY [<series>] [LAST <n>]`: snapshots from the
    /// server's metrics-history ring, oldest first, optionally filtered
    /// to one series and/or the last `n` snapshots.
    pub fn metrics_history(
        &mut self,
        series: Option<&str>,
        last: Option<usize>,
    ) -> Result<Vec<String>> {
        let mut line = "METRICS HISTORY".to_string();
        if let Some(s) = series {
            line.push(' ');
            line.push_str(s);
        }
        if let Some(n) = last {
            line.push_str(&format!(" LAST {n}"));
        }
        self.request(&line)
    }

    /// `HEALTH`: the node's windowed health score, degraded reasons and
    /// raw signals (parse the head with [`dctrace::HealthReport::parse_head`]).
    pub fn health(&mut self) -> Result<Vec<String>> {
        self.request("HEALTH")
    }

    /// `TRACE SPANS [BATCH <id>]`: per-batch span trees reconstructed
    /// from the flight recorder.
    pub fn trace_spans(&mut self, batch: Option<u64>) -> Result<Vec<String>> {
        match batch {
            Some(id) => self.request(&format!("TRACE SPANS BATCH {id}")),
            None => self.request("TRACE SPANS"),
        }
    }

    /// `TRACE DUMP`: every flight-recorder event, oldest first.
    pub fn trace_dump(&mut self) -> Result<Vec<String>> {
        self.request("TRACE DUMP")
    }

    /// `TRACE DUMP QUERY <name>`: one query's flight-recorder events.
    pub fn trace_dump_query(&mut self, query: &str) -> Result<Vec<String>> {
        self.request(&format!("TRACE DUMP QUERY {query}"))
    }

    /// `TRACE QUERY <name> ON`: open a live trace-stream port; read it
    /// with [`Client::open_trace`]. Returns the bound port.
    pub fn trace_on(&mut self, query: &str) -> Result<u16> {
        let body = self.request(&format!("TRACE QUERY {query} ON"))?;
        parse_port(&body)
    }

    /// `TRACE QUERY <name> OFF`: close the query's live trace taps.
    pub fn trace_off(&mut self, query: &str) -> Result<()> {
        self.request(&format!("TRACE QUERY {query} OFF")).map(|_| ())
    }

    /// Open a data-plane connection to a trace-stream port (text, one
    /// rendered flight-recorder event per line).
    pub fn open_trace(&self, port: u16) -> Result<EmitterTap> {
        EmitterTap::connect((self.server.ip(), port))
    }

    // ---- replication (REPL verbs; the cluster router's channel) ---------

    /// `REPL OPEN <stream> AS <ddl>` — open a stream in replica mode on
    /// a follower engine.
    pub fn repl_open(&mut self, stream: &str, ddl: &str) -> Result<()> {
        self.request(&format!("REPL OPEN {stream} AS {ddl}")).map(|_| ())
    }

    /// `REPL STATUS <stream>` — the follower's durable catch-up cursor.
    pub fn repl_status(&mut self, stream: &str) -> Result<ReplStatus> {
        let body = self.request(&format!("REPL STATUS {stream}"))?;
        let line = body.first().map(String::as_str).unwrap_or("");
        let bad = || ServerError::Protocol(format!("malformed REPL STATUS response {body:?}"));
        Ok(ReplStatus {
            epoch: kv_num(line, "epoch").ok_or_else(bad)?,
            wal_bytes: kv_num(line, "wal_bytes").ok_or_else(bad)?,
            segments: kv_num(line, "segments").ok_or_else(bad)? as usize,
        })
    }

    /// `REPL EXPORT` — ask a primary for everything past the follower's
    /// `(segs, epoch, offset)` cursor.
    pub fn repl_export(
        &mut self,
        stream: &str,
        segs: usize,
        epoch: u64,
        offset: u64,
    ) -> Result<ReplExport> {
        let body = self.request(&format!(
            "REPL EXPORT {stream} SEGS {segs} EPOCH {epoch} OFFSET {offset}"
        ))?;
        let bad = |what: &str| ServerError::Protocol(format!("malformed REPL EXPORT {what}"));
        let head = body.first().map(String::as_str).unwrap_or("");
        let mut export = ReplExport {
            epoch: kv_num(head, "epoch").ok_or_else(|| bad("head"))?,
            wal_bytes: kv_num(head, "wal_bytes").ok_or_else(|| bad("head"))?,
            pending_rows: kv_num(head, "pending_rows").ok_or_else(|| bad("head"))?,
            segments: Vec::new(),
            wal_from: 0,
            wal_data: Vec::new(),
        };
        for line in &body[1..] {
            if let Some(rest) = line.strip_prefix("segment ") {
                let file = kv(rest, "file").ok_or_else(|| bad("segment line"))?;
                let rows = kv_num(rest, "rows").ok_or_else(|| bad("segment line"))?;
                let hex = kv(rest, "hex").ok_or_else(|| bad("segment line"))?;
                export
                    .segments
                    .push((file.to_string(), rows, dcstore::hex_decode(hex)?));
            } else if let Some(rest) = line.strip_prefix("wal ") {
                export.wal_from = kv_num(rest, "from").ok_or_else(|| bad("wal line"))?;
                export.wal_data = dcstore::hex_decode(kv(rest, "hex").unwrap_or(""))?;
            }
        }
        Ok(export)
    }

    /// `REPL SEGMENT` — land one shipped segment on a follower.
    pub fn repl_segment(&mut self, stream: &str, file: &str, rows: u64, data: &[u8]) -> Result<()> {
        self.request(&format!(
            "REPL SEGMENT {stream} {file} {rows} {}",
            dcstore::hex_encode(data)
        ))
        .map(|_| ())
    }

    /// `REPL WAL` — append one shipped WAL chunk on a follower.
    pub fn repl_wal(&mut self, stream: &str, epoch: u64, from: u64, data: &[u8]) -> Result<()> {
        self.request(&format!(
            "REPL WAL {stream} EPOCH {epoch} FROM {from} {}",
            dcstore::hex_encode(data)
        ))
        .map(|_| ())
    }

    /// `REPL PROMOTE` — make the follower replay its replica streams
    /// into live baskets and become a primary. Returns the replay
    /// report line(s).
    pub fn repl_promote(&mut self) -> Result<Vec<String>> {
        self.request("REPL PROMOTE")
    }

    /// Gracefully stop the server.
    pub fn shutdown(&mut self) -> Result<()> {
        self.request("SHUTDOWN").map(|_| ())
    }

    /// Open a text data-plane connection to a receptor port on this
    /// server's host.
    pub fn open_receptor(&self, port: u16) -> Result<ReceptorSink> {
        ReceptorSink::connect((self.server.ip(), port))
    }

    /// Open a data-plane connection to a receptor port with an explicit
    /// format. The schema (user columns, wire order) lets the sink
    /// buffer rows into columnar batches.
    pub fn open_receptor_with(
        &self,
        port: u16,
        format: WireFormat,
        schema: &Schema,
    ) -> Result<ReceptorSink> {
        ReceptorSink::connect_with((self.server.ip(), port), format, schema)
    }

    /// Open a text data-plane connection to an emitter port on this
    /// server's host.
    pub fn open_emitter(&self, port: u16) -> Result<EmitterTap> {
        EmitterTap::connect((self.server.ip(), port))
    }

    /// Open a data-plane connection to an emitter port with an explicit
    /// format.
    pub fn open_emitter_with(&self, port: u16, format: WireFormat) -> Result<EmitterTap> {
        EmitterTap::connect_with((self.server.ip(), port), format)
    }
}

/// A control-plane connection to a `dccluster` shard router.
///
/// The router speaks the same wire protocol as a single engine, so this
/// is a thin wrapper over [`Client`] (every plain method is available via
/// `Deref`) adding the cluster-only surface: the `SHARD BY` DDL helper.
///
/// ```no_run
/// use dcserver::client::ShardedClient;
///
/// let mut c = ShardedClient::connect("127.0.0.1:7071").unwrap();
/// c.create_sharded_stream("S", "(id int, v int)", "id", None).unwrap();
/// c.register_query("hot", "select id from [select * from S] as Z where Z.v > 10")
///     .unwrap();
/// let rport = c.attach_receptor("S", 0).unwrap();   // one logical port,
/// let eport = c.attach_emitter("hot", 0).unwrap();  // all shards behind it
/// # let _ = (rport, eport);
/// ```
pub struct ShardedClient {
    inner: Client,
}

impl ShardedClient {
    /// Connect to a `dccluster` control port.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ShardedClient> {
        Ok(ShardedClient {
            inner: Client::connect(addr)?,
        })
    }

    /// Wrap an existing control connection (e.g. one already pointed at a
    /// router).
    pub fn from_client(inner: Client) -> ShardedClient {
        ShardedClient { inner }
    }

    /// `CREATE STREAM name (cols) SHARD BY (key) [SHARDS n]` — declare a
    /// hash-partitioned stream. `shards = None` lets the router place one
    /// shard per engine.
    pub fn create_sharded_stream(
        &mut self,
        name: &str,
        columns: &str,
        key: &str,
        shards: Option<usize>,
    ) -> Result<()> {
        let clause = match shards {
            Some(n) => format!(" SHARDS {n}"),
            None => String::new(),
        };
        self.inner
            .request(&format!("CREATE STREAM {name} {columns} SHARD BY ({key}){clause}"))
            .map(|_| ())
    }
}

impl std::ops::Deref for ShardedClient {
    type Target = Client;

    fn deref(&self) -> &Client {
        &self.inner
    }
}

impl std::ops::DerefMut for ShardedClient {
    fn deref_mut(&mut self) -> &mut Client {
        &mut self.inner
    }
}

/// TEXT is the wire default, so it is requested by *omitting* the
/// clause — keeping text-only sessions compatible with daemons that
/// predate the FORMAT grammar.
fn format_clause(format: WireFormat) -> String {
    match format {
        WireFormat::Text => String::new(),
        other => format!(" FORMAT {other}"),
    }
}

fn parse_port(body: &[String]) -> Result<u16> {
    body.first()
        .and_then(|l| l.strip_prefix("port="))
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| ServerError::Protocol(format!("malformed port response {body:?}")))
}

/// A follower's durable catch-up cursor, from `REPL STATUS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplStatus {
    pub epoch: u64,
    pub wal_bytes: u64,
    pub segments: usize,
}

/// One `REPL EXPORT` response: sealed segments past the follower's
/// cursor plus a bounded WAL tail chunk. `pending_rows` counts rows in
/// WAL records beyond this chunk (replication lag still to ship).
#[derive(Debug, Clone, Default)]
pub struct ReplExport {
    pub epoch: u64,
    pub wal_bytes: u64,
    pub pending_rows: u64,
    /// `(file, rows, bytes)` per shipped segment.
    pub segments: Vec<(String, u64, Vec<u8>)>,
    pub wal_from: u64,
    pub wal_data: Vec<u8>,
}

/// Find `key=value` in a space-separated response line.
fn kv<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
}

fn kv_num(line: &str, key: &str) -> Option<u64> {
    kv(line, key).and_then(|v| v.parse().ok())
}

/// Data-plane writer: pushes tuple batches into a receptor port.
pub struct ReceptorSink {
    writer: BufWriter<TcpStream>,
    format: WireFormat,
    /// Row buffer for the convenience `send_row` path; present when the
    /// sink was opened with a schema.
    pending: Option<Relation>,
    /// Reused per-frame scratch buffers.
    text_buf: String,
    bin_buf: Vec<u8>,
}

impl ReceptorSink {
    /// Connect in text mode without a schema. `send_batch` works;
    /// `send_row` writes wire lines directly (the pre-batch behavior).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ReceptorSink> {
        Ok(ReceptorSink {
            writer: BufWriter::new(TcpStream::connect(addr)?),
            format: WireFormat::Text,
            pending: None,
            text_buf: String::new(),
            bin_buf: Vec::new(),
        })
    }

    /// Connect with an explicit wire format. The schema (user columns,
    /// wire order) backs the row-buffering convenience methods.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        format: WireFormat,
        schema: &Schema,
    ) -> Result<ReceptorSink> {
        Ok(ReceptorSink {
            writer: BufWriter::new(TcpStream::connect(addr)?),
            format,
            pending: Some(Relation::new(schema)),
            text_buf: String::new(),
            bin_buf: Vec::new(),
        })
    }

    /// The sink's wire format.
    pub fn format(&self) -> WireFormat {
        self.format
    }

    /// Send one columnar batch as a single frame. Any rows buffered by
    /// `send_row` are flushed first to preserve order.
    pub fn send_batch(&mut self, batch: &Relation) -> Result<usize> {
        self.flush_pending()?;
        self.write_frame_of(batch)?;
        Ok(batch.len())
    }

    fn write_frame_of(&mut self, batch: &Relation) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        match self.format {
            WireFormat::Text => {
                self.text_buf.clear();
                encode_batch_text(&mut self.text_buf, batch);
                self.writer.write_all(self.text_buf.as_bytes())?;
            }
            WireFormat::Binary => {
                self.bin_buf.clear();
                frame::encode_frame(&mut self.bin_buf, batch)
                    .map_err(|e| ServerError::Protocol(e.to_string()))?;
                self.writer.write_all(&self.bin_buf)?;
            }
        }
        Ok(())
    }

    /// Queue one tuple (schema order, user columns only). With a schema
    /// the row lands in a columnar buffer that auto-flushes as one frame
    /// every [`SINK_BATCH`] rows; without one (text mode) it is written
    /// as a wire line immediately.
    pub fn send_row(&mut self, row: &[Value]) -> Result<()> {
        match &mut self.pending {
            Some(rel) => {
                rel.append_row(row)
                    .map_err(|e| ServerError::Protocol(format!("row rejected: {e}")))?;
                if rel.len() >= SINK_BATCH {
                    self.flush_pending()?;
                }
            }
            None => {
                self.text_buf.clear();
                datacell::net::format_row_into(&mut self.text_buf, row);
                self.text_buf.push('\n');
                self.writer.write_all(self.text_buf.as_bytes())?;
            }
        }
        Ok(())
    }

    /// Queue many tuples.
    pub fn send_rows<'a>(&mut self, rows: impl IntoIterator<Item = &'a [Value]>) -> Result<usize> {
        let mut n = 0;
        for row in rows {
            self.send_row(row)?;
            n += 1;
        }
        Ok(n)
    }

    fn flush_pending(&mut self) -> Result<()> {
        let Some(rel) = &mut self.pending else {
            return Ok(());
        };
        if rel.is_empty() {
            return Ok(());
        }
        let batch = std::mem::replace(rel, Relation::new(&rel.schema()));
        self.write_frame_of(&batch)
    }

    /// Push buffered tuples to the server.
    pub fn flush(&mut self) -> Result<()> {
        self.flush_pending()?;
        self.writer.flush()?;
        Ok(())
    }
}

/// Data-plane reader: consumes result batches from an emitter port.
///
/// Reads are timeout-safe in both formats: when a read timeout fires
/// mid-frame (binary) or mid-line (text), the partial input stays
/// buffered and the next call resumes where it left off.
pub struct EmitterTap {
    reader: BufReader<TcpStream>,
    format: WireFormat,
    /// Rows decoded but not yet handed out by `next_row`.
    pending: std::collections::VecDeque<Vec<Value>>,
    /// Bytes received but not yet forming a complete frame (binary) or
    /// a complete newline-terminated line (text). Kept as raw bytes so
    /// a timeout can never land "inside" a multi-byte UTF-8 character
    /// from the decoder's point of view.
    wire_buf: Vec<u8>,
}

impl EmitterTap {
    /// Connect in text mode.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<EmitterTap> {
        EmitterTap::connect_with(addr, WireFormat::Text)
    }

    /// Connect with an explicit wire format.
    pub fn connect_with(addr: impl ToSocketAddrs, format: WireFormat) -> Result<EmitterTap> {
        Ok(EmitterTap {
            reader: BufReader::new(TcpStream::connect(addr)?),
            format,
            pending: std::collections::VecDeque::new(),
            wire_buf: Vec::new(),
        })
    }

    /// The tap's wire format.
    pub fn format(&self) -> WireFormat {
        self.format
    }

    /// Bound how long reads block waiting for a result.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Next raw wire line (text format only); `None` once the server
    /// closes the stream.
    pub fn next_line(&mut self) -> Result<Option<String>> {
        if self.format != WireFormat::Text {
            return Err(ServerError::Protocol(
                "next_line reads the text protocol; this tap is binary".into(),
            ));
        }
        self.read_line_blocking()
    }

    /// Pop the next complete, non-blank line out of `wire_buf`, if one
    /// is fully buffered. Never touches the socket.
    fn take_buffered_line(&mut self) -> Result<Option<String>> {
        loop {
            let Some(pos) = self.wire_buf.iter().position(|&b| b == b'\n') else {
                return Ok(None);
            };
            let raw: Vec<u8> = self.wire_buf.drain(..=pos).collect();
            if let Some(line) = finish_line(&raw)? {
                return Ok(Some(line));
            }
        }
    }

    /// Pull whatever the reader has already buffered into `wire_buf`
    /// without a syscall.
    fn slurp_readahead(&mut self) {
        let buffered = self.reader.buffer();
        if !buffered.is_empty() {
            let n = buffered.len();
            self.wire_buf.extend_from_slice(buffered);
            self.reader.consume(n);
        }
    }

    /// Block for the next complete line. Timeout-safe: a timeout error
    /// leaves all received bytes in `wire_buf` and the next call resumes
    /// — even when the cut lands inside a multi-byte UTF-8 character
    /// (bytes are only decoded once a full line is present).
    fn read_line_blocking(&mut self) -> Result<Option<String>> {
        loop {
            if let Some(line) = self.take_buffered_line()? {
                return Ok(Some(line));
            }
            let chunk = self.reader.fill_buf()?;
            if chunk.is_empty() {
                // EOF: surface a trailing unterminated line, then end
                let raw = std::mem::take(&mut self.wire_buf);
                return finish_line(&raw);
            }
            let n = chunk.len();
            self.wire_buf.extend_from_slice(chunk);
            self.reader.consume(n);
        }
    }

    /// A complete line already received, if any — no blocking, no
    /// syscall.
    fn buffered_line(&mut self) -> Result<Option<String>> {
        if let Some(line) = self.take_buffered_line()? {
            return Ok(Some(line));
        }
        self.slurp_readahead();
        self.take_buffered_line()
    }

    /// Next result batch, parsed against the result schema; `None` once
    /// the server closes the stream.
    ///
    /// Binary taps return exactly one wire frame (the batch boundary the
    /// server chose). Text taps block for the first tuple, then greedily
    /// take every further tuple already buffered — one batch per burst.
    pub fn next_batch(&mut self, schema: &Schema) -> Result<Option<Relation>> {
        match self.format {
            WireFormat::Binary => self.next_frame(schema),
            WireFormat::Text => {
                let Some(first) = self.read_line_blocking()? else {
                    return Ok(None);
                };
                let mut rel = Relation::new(schema);
                append_parsed(&mut rel, &first, schema)?;
                while let Some(line) = self.buffered_line()? {
                    append_parsed(&mut rel, &line, schema)?;
                }
                Ok(Some(rel))
            }
        }
    }

    /// Accumulate bytes until one complete binary frame is buffered,
    /// then decode it. A read timeout mid-frame leaves the partial frame
    /// in `wire_buf`; the next call resumes accumulating.
    fn next_frame(&mut self, schema: &Schema) -> Result<Option<Relation>> {
        loop {
            if let Some((rel, used)) =
                frame::decode_frame(&self.wire_buf, schema).map_err(ServerError::Engine)?
            {
                self.wire_buf.drain(..used);
                return Ok(Some(rel));
            }
            let chunk = self.reader.fill_buf()?;
            if chunk.is_empty() {
                if self.wire_buf.is_empty() {
                    return Ok(None); // clean EOF between frames
                }
                return Err(ServerError::Protocol(
                    "stream closed mid-frame".into(),
                ));
            }
            let n = chunk.len();
            self.wire_buf.extend_from_slice(chunk);
            self.reader.consume(n);
        }
    }

    /// Next tuple, parsed against the result schema. A convenience
    /// wrapper over [`EmitterTap::next_batch`]: decoded batches are
    /// buffered and handed out row by row.
    pub fn next_row(&mut self, schema: &Schema) -> Result<Option<Vec<Value>>> {
        loop {
            if let Some(row) = self.pending.pop_front() {
                return Ok(Some(row));
            }
            match self.next_batch(schema)? {
                Some(batch) => {
                    self.pending.extend(batch.iter_rows());
                }
                None => return Ok(None),
            }
        }
    }

    /// Collect rows until `n` arrive or the stream ends.
    pub fn take_rows(&mut self, schema: &Schema, n: usize) -> Result<Vec<Vec<Value>>> {
        let mut rows = Vec::with_capacity(n);
        while rows.len() < n {
            match self.next_row(schema)? {
                Some(row) => rows.push(row),
                None => break,
            }
        }
        Ok(rows)
    }
}

/// Decode one raw wire line (terminator included, if any): validate
/// UTF-8, strip the terminator, map blank lines to `None`.
fn finish_line(raw: &[u8]) -> Result<Option<String>> {
    let s = std::str::from_utf8(raw)
        .map_err(|_| ServerError::Protocol("wire line is not UTF-8".into()))?;
    let trimmed = s.trim_end_matches(['\n', '\r']);
    if trimmed.is_empty() {
        Ok(None)
    } else {
        Ok(Some(trimmed.to_string()))
    }
}

fn append_parsed(rel: &mut Relation, line: &str, schema: &Schema) -> Result<()> {
    let row = parse_row(line, schema)?;
    rel.append_row(&row)
        .map_err(|e| ServerError::Protocol(format!("result row rejected: {e}")))
}
