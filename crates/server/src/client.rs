//! `dcclient` — the client library for `datacelld`.
//!
//! Three connection kinds mirror the server's port layout:
//!
//! * [`Client`] speaks the control-plane protocol (DDL, query
//!   registration, port attachment, stats, shutdown);
//! * [`ReceptorSink`] writes wire-format tuples into a receptor port;
//! * [`EmitterTap`] reads result tuples from an emitter port.
//!
//! ```no_run
//! use dcserver::client::Client;
//! use monet::prelude::*;
//!
//! let mut c = Client::connect("127.0.0.1:7077").unwrap();
//! c.create_stream("S", "(id int, v int)").unwrap();
//! c.register_query("hot", "select id from [select * from S where S.v > 10] as W")
//!     .unwrap();
//! let rport = c.attach_receptor("S", 0).unwrap();
//! let eport = c.attach_emitter("hot", 0).unwrap();
//! let mut sink = c.open_receptor(rport).unwrap();
//! let mut tap = c.open_emitter(eport).unwrap();
//! sink.send_row(&[Value::Int(1), Value::Int(99)]).unwrap();
//! sink.flush().unwrap();
//! let row = tap
//!     .next_row(&Schema::from_pairs(&[("id", ValueType::Int)]))
//!     .unwrap();
//! assert_eq!(row, Some(vec![Value::Int(1)]));
//! ```

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use datacell::net::{format_row, parse_row};
use monet::prelude::*;

use crate::error::{Result, ServerError};
use crate::protocol::Response;

/// A control-plane connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    server: SocketAddr,
}

impl Client {
    /// Connect to a `datacelld` control port.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let server = stream.peer_addr()?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            server,
        })
    }

    /// The server's control-plane address.
    pub fn server_addr(&self) -> SocketAddr {
        self.server
    }

    /// Send one raw command line; return the response body on success.
    pub fn request(&mut self, line: &str) -> Result<Vec<String>> {
        if line.contains(['\n', '\r']) {
            // the control protocol is line-oriented: a newline here would
            // be parsed as a second command, desyncing every later
            // request/response pair (or injecting commands like SHUTDOWN)
            return Err(ServerError::Protocol(
                "control commands must be a single line (flatten SQL before sending)".into(),
            ));
        }
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        match Response::read_from(&mut self.reader)? {
            Response::Ok(body) => Ok(body),
            Response::Err(msg) => Err(ServerError::Protocol(msg)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        self.request("PING").map(|_| ())
    }

    /// `CREATE STREAM name (col type, ...)`.
    pub fn create_stream(&mut self, name: &str, columns: &str) -> Result<()> {
        self.request(&format!("CREATE STREAM {name} {columns}"))
            .map(|_| ())
    }

    /// `CREATE TABLE name (col type, ...)`.
    pub fn create_table(&mut self, name: &str, columns: &str) -> Result<()> {
        self.request(&format!("CREATE TABLE {name} {columns}"))
            .map(|_| ())
    }

    /// One-shot SQL; returns result lines (`# col|col` header then wire
    /// rows) when the script ends in a SELECT.
    pub fn exec(&mut self, sql: &str) -> Result<Vec<String>> {
        self.request(&format!("EXEC {sql}"))
    }

    /// Register a continuous query.
    pub fn register_query(&mut self, name: &str, sql: &str) -> Result<()> {
        self.request(&format!("REGISTER QUERY {name} AS {sql}"))
            .map(|_| ())
    }

    /// Open a receptor port for `stream` (0 = ephemeral); returns the
    /// bound port.
    pub fn attach_receptor(&mut self, stream: &str, port: u16) -> Result<u16> {
        let body = self.request(&format!("ATTACH RECEPTOR {stream} ON PORT {port}"))?;
        parse_port(&body)
    }

    /// Open an emitter port for `query` (0 = ephemeral); returns the
    /// bound port.
    pub fn attach_emitter(&mut self, query: &str, port: u16) -> Result<u16> {
        let body = self.request(&format!("ATTACH EMITTER {query} ON PORT {port}"))?;
        parse_port(&body)
    }

    /// The server's `STATS` report.
    pub fn stats(&mut self) -> Result<Vec<String>> {
        self.request("STATS")
    }

    /// Gracefully stop the server.
    pub fn shutdown(&mut self) -> Result<()> {
        self.request("SHUTDOWN").map(|_| ())
    }

    /// Open a data-plane connection to a receptor port on this server's
    /// host.
    pub fn open_receptor(&self, port: u16) -> Result<ReceptorSink> {
        ReceptorSink::connect((self.server.ip(), port))
    }

    /// Open a data-plane connection to an emitter port on this server's
    /// host.
    pub fn open_emitter(&self, port: u16) -> Result<EmitterTap> {
        EmitterTap::connect((self.server.ip(), port))
    }
}

fn parse_port(body: &[String]) -> Result<u16> {
    body.first()
        .and_then(|l| l.strip_prefix("port="))
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| ServerError::Protocol(format!("malformed port response {body:?}")))
}

/// Data-plane writer: pushes tuples into a receptor port.
pub struct ReceptorSink {
    writer: BufWriter<TcpStream>,
}

impl ReceptorSink {
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ReceptorSink> {
        Ok(ReceptorSink {
            writer: BufWriter::new(TcpStream::connect(addr)?),
        })
    }

    /// Queue one tuple (schema order, user columns only).
    pub fn send_row(&mut self, row: &[Value]) -> Result<()> {
        writeln!(self.writer, "{}", format_row(row))?;
        Ok(())
    }

    /// Queue many tuples.
    pub fn send_rows<'a>(&mut self, rows: impl IntoIterator<Item = &'a [Value]>) -> Result<usize> {
        let mut n = 0;
        for row in rows {
            self.send_row(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Push buffered tuples to the server.
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }
}

/// Data-plane reader: consumes result tuples from an emitter port.
pub struct EmitterTap {
    reader: BufReader<TcpStream>,
}

impl EmitterTap {
    pub fn connect(addr: impl ToSocketAddrs) -> Result<EmitterTap> {
        Ok(EmitterTap {
            reader: BufReader::new(TcpStream::connect(addr)?),
        })
    }

    /// Bound how long [`EmitterTap::next_line`] blocks waiting for a
    /// result.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Next raw wire line; `None` once the server closes the stream.
    pub fn next_line(&mut self) -> Result<Option<String>> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Ok(None);
            }
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if !trimmed.is_empty() {
                return Ok(Some(trimmed.to_string()));
            }
        }
    }

    /// Next tuple, parsed against the result schema.
    pub fn next_row(&mut self, schema: &Schema) -> Result<Option<Vec<Value>>> {
        match self.next_line()? {
            Some(line) => Ok(Some(parse_row(&line, schema)?)),
            None => Ok(None),
        }
    }

    /// Collect rows until `n` arrive or the stream ends.
    pub fn take_rows(&mut self, schema: &Schema, n: usize) -> Result<Vec<Vec<Value>>> {
        let mut rows = Vec::with_capacity(n);
        while rows.len() < n {
            match self.next_row(schema)? {
                Some(row) => rows.push(row),
                None => break,
            }
        }
        Ok(rows)
    }
}
