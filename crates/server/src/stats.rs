//! Typed parsing of the `STATS` report.
//!
//! The control-plane `STATS` command replies with one line per server
//! object (`kind [name] k=v k=v ...` — see [`crate::runtime::ServerRuntime::stats`]).
//! [`StatsReport::parse`] turns that body into typed rows so machine
//! consumers — the `dccluster` router's placement logic, tests, dashboards
//! — read fields instead of scraping strings.
//!
//! Parsing is deliberately lenient: unknown line kinds and unknown keys
//! are ignored, missing numeric keys default to zero. A newer server can
//! add telemetry without breaking older clients.

use std::collections::HashMap;

use crate::error::{Result, ServerError};

/// The `server ...` summary line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub uptime_micros: u64,
    pub sessions: u64,
    pub queries: u64,
    pub receptor_ports: u64,
    pub emitter_ports: u64,
    /// Shard engines behind this control plane (`dccluster` only; 0 on
    /// a single engine).
    pub engines: u64,
    /// Sharded logical streams (`dccluster` only).
    pub streams: u64,
}

/// One `basket <name> ...` line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BasketStats {
    pub name: String,
    pub len: u64,
    pub enabled: bool,
    pub total_in: u64,
    pub total_out: u64,
    pub dropped: u64,
    pub high_water: u64,
    pub cap: u64,
    /// Logically-deleted rows awaiting physical compaction.
    pub pending_deletes: u64,
    /// Lifetime physical compactions of the basket store.
    pub compactions: u64,
    /// Whether the basket is a durable stream (WAL + segments behind it).
    pub persistent: bool,
    /// Bytes currently in the stream's write-ahead log (0 if transient).
    pub wal_bytes: u64,
    /// Sealed immutable segments backing the stream (0 if transient).
    pub segments: u64,
    /// 99th-percentile WAL fsync latency, µs (rendered only on
    /// persistent baskets; 0 when telemetry is off or transient).
    pub wal_fsync_p99_micros: u64,
}

/// One `query <name> ...` line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryStats {
    pub name: String,
    pub firings: u64,
    pub consumed: u64,
    pub produced: u64,
    pub busy_micros: u64,
    /// Time spent holding basket locks, out of `busy_micros` (contention).
    pub lock_micros: u64,
    /// Snapshot rows the plan executed over, lifetime.
    pub rows_scanned: u64,
    /// Rows the plan emitted (results + inserts), lifetime.
    pub rows_out: u64,
    /// One-time plan compile cost, µs (reported once per factory).
    pub plan_micros: u64,
    /// Rows processed incrementally (delta executions only), lifetime.
    pub delta_rows: u64,
    /// Standing statements that fell back to full re-execution, lifetime.
    pub full_reexecutes: u64,
    /// Current bytes held in delta state + shared arrangements (gauge).
    pub arrangement_bytes: u64,
    pub subscribers: u64,
    pub delivered_batches: u64,
    pub delivered_tuples: u64,
    pub dropped_batches: u64,
    /// Median firing latency, µs (from the `dc_fire_micros` telemetry
    /// histogram; 0 when telemetry is off or the query never fired).
    pub p50_micros: u64,
    /// 99th-percentile firing latency, µs.
    pub p99_micros: u64,
    /// Worst observed firing latency, µs.
    pub max_micros: u64,
    /// Comma-joined engine ids hosting this query (`dccluster` only —
    /// empty on a single engine, and rendered only when non-empty).
    /// A query registered on fewer engines than the cluster has was a
    /// partial-success registration; the missing engines declined it.
    pub engines: String,
}

/// One `receptor <stream> ...` line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReceptorStats {
    pub stream: String,
    pub port: u16,
    pub format: String,
    pub connections: u64,
    pub accepted: u64,
    pub rejected: u64,
}

/// One `emitter <query> ...` line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EmitterStats {
    pub query: String,
    pub port: u16,
    pub format: String,
    pub connections: u64,
    pub coalesced_batches: u64,
}

/// One `session <id> ...` line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    pub id: u64,
    pub peer: String,
    pub commands: u64,
}

/// One `stream <name> ...` line (`dccluster` only): a sharded logical
/// stream's placement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    pub name: String,
    pub shards: u64,
    /// Hash-partition key column (`-` = round-robin placement).
    pub key: String,
    /// Comma-joined engine ids hosting a shard of this stream.
    pub engines: String,
}

/// One `shard <id> ...` line (`dccluster` only): a shard engine's
/// health summary. An unreachable engine reports only its address.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    pub id: u64,
    pub addr: String,
    pub baskets_in: u64,
    pub delivered_tuples: u64,
    pub sessions: u64,
    pub unreachable: bool,
    /// Follower replica's control address (`-` = shard has no follower;
    /// empty = pre-replication router). Rendered on both reachable and
    /// unreachable shards — an unreachable primary with a follower is
    /// exactly the failover case.
    pub follower: String,
    /// Lifetime promotions of a follower to primary on this shard.
    pub failovers: u64,
}

/// The whole `STATS` body, typed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsReport {
    pub server: ServerStats,
    pub baskets: Vec<BasketStats>,
    pub queries: Vec<QueryStats>,
    pub receptors: Vec<ReceptorStats>,
    pub emitters: Vec<EmitterStats>,
    pub sessions: Vec<SessionStats>,
    pub streams: Vec<StreamStats>,
    pub shards: Vec<ShardStats>,
}

/// Split one report line into (kind, name, key→value map). The `server`
/// line has no name.
fn tokenize(line: &str) -> Option<(&str, &str, HashMap<&str, &str>)> {
    let mut words = line.split_whitespace();
    let kind = words.next()?;
    let mut name = "";
    let mut kv = HashMap::new();
    for w in words {
        match w.split_once('=') {
            Some((k, v)) => {
                kv.insert(k, v);
            }
            // the first bare word after the kind is the object name
            None if name.is_empty() => name = w,
            None => return None,
        }
    }
    Some((kind, name, kv))
}

fn num(kv: &HashMap<&str, &str>, key: &str) -> u64 {
    kv.get(key).and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn text(kv: &HashMap<&str, &str>, key: &str) -> String {
    kv.get(key).map(|v| v.to_string()).unwrap_or_default()
}

impl StatsReport {
    /// Parse a `STATS` response body. Unknown kinds/keys are ignored;
    /// a line that fails to tokenize at all is an error.
    pub fn parse(lines: &[String]) -> Result<StatsReport> {
        let mut report = StatsReport::default();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let Some((kind, name, kv)) = tokenize(line) else {
                return Err(ServerError::Protocol(format!(
                    "malformed STATS line {line:?}"
                )));
            };
            match kind {
                "server" => {
                    report.server = ServerStats {
                        uptime_micros: num(&kv, "uptime_micros"),
                        sessions: num(&kv, "sessions"),
                        queries: num(&kv, "queries"),
                        receptor_ports: num(&kv, "receptor_ports"),
                        emitter_ports: num(&kv, "emitter_ports"),
                        engines: num(&kv, "engines"),
                        streams: num(&kv, "streams"),
                    };
                }
                "basket" => report.baskets.push(BasketStats {
                    name: name.to_string(),
                    len: num(&kv, "len"),
                    enabled: kv.get("enabled").is_some_and(|v| *v == "true"),
                    total_in: num(&kv, "in"),
                    total_out: num(&kv, "out"),
                    dropped: num(&kv, "dropped"),
                    high_water: num(&kv, "high_water"),
                    cap: num(&kv, "cap"),
                    pending_deletes: num(&kv, "pending_deletes"),
                    compactions: num(&kv, "compactions"),
                    persistent: kv.get("persistent").is_some_and(|v| *v == "true"),
                    wal_bytes: num(&kv, "wal_bytes"),
                    segments: num(&kv, "segments"),
                    wal_fsync_p99_micros: num(&kv, "wal_fsync_p99_micros"),
                }),
                "query" => report.queries.push(QueryStats {
                    name: name.to_string(),
                    firings: num(&kv, "firings"),
                    consumed: num(&kv, "consumed"),
                    produced: num(&kv, "produced"),
                    busy_micros: num(&kv, "busy_micros"),
                    lock_micros: num(&kv, "lock_micros"),
                    rows_scanned: num(&kv, "rows_scanned"),
                    rows_out: num(&kv, "rows_out"),
                    plan_micros: num(&kv, "plan_micros"),
                    delta_rows: num(&kv, "delta_rows"),
                    full_reexecutes: num(&kv, "full_reexecutes"),
                    arrangement_bytes: num(&kv, "arrangement_bytes"),
                    subscribers: num(&kv, "subscribers"),
                    delivered_batches: num(&kv, "delivered_batches"),
                    delivered_tuples: num(&kv, "delivered_tuples"),
                    dropped_batches: num(&kv, "dropped_batches"),
                    p50_micros: num(&kv, "p50_micros"),
                    p99_micros: num(&kv, "p99_micros"),
                    max_micros: num(&kv, "max_micros"),
                    engines: text(&kv, "engines"),
                }),
                "receptor" => report.receptors.push(ReceptorStats {
                    stream: name.to_string(),
                    port: num(&kv, "port") as u16,
                    format: text(&kv, "format"),
                    connections: num(&kv, "connections"),
                    accepted: num(&kv, "accepted"),
                    rejected: num(&kv, "rejected"),
                }),
                "emitter" => report.emitters.push(EmitterStats {
                    query: name.to_string(),
                    port: num(&kv, "port") as u16,
                    format: text(&kv, "format"),
                    connections: num(&kv, "connections"),
                    coalesced_batches: num(&kv, "coalesced_batches"),
                }),
                "session" => report.sessions.push(SessionStats {
                    id: name.parse().unwrap_or(0),
                    peer: text(&kv, "peer"),
                    commands: num(&kv, "commands"),
                }),
                "stream" => report.streams.push(StreamStats {
                    name: name.to_string(),
                    shards: num(&kv, "shards"),
                    key: text(&kv, "key"),
                    engines: text(&kv, "engines"),
                }),
                "shard" => report.shards.push(ShardStats {
                    id: name.parse().unwrap_or(0),
                    addr: text(&kv, "addr"),
                    baskets_in: num(&kv, "baskets_in"),
                    delivered_tuples: num(&kv, "delivered_tuples"),
                    sessions: num(&kv, "sessions"),
                    unreachable: kv.get("unreachable").is_some_and(|v| *v == "true"),
                    follower: text(&kv, "follower"),
                    failovers: num(&kv, "failovers"),
                }),
                _ => {} // forward compatibility: skip unknown kinds
            }
        }
        Ok(report)
    }

    /// Render the report back into wire lines — the exact `kind [name]
    /// k=v ...` shapes the daemons emit, so `parse(render(r)) == r`
    /// (names and text values must be whitespace/`=`-free, as on the
    /// wire). This is what the cluster router uses to re-emit
    /// aggregated rows, and what the roundtrip property test pins.
    pub fn render(&self) -> Vec<String> {
        let mut body = Vec::new();
        let s = &self.server;
        let mut line = format!(
            "server uptime_micros={} sessions={} queries={} receptor_ports={} emitter_ports={}",
            s.uptime_micros, s.sessions, s.queries, s.receptor_ports, s.emitter_ports
        );
        if s.engines > 0 || s.streams > 0 {
            line.push_str(&format!(" engines={} streams={}", s.engines, s.streams));
        }
        body.push(line);
        for st in &self.streams {
            body.push(format!(
                "stream {} shards={} key={} engines={}",
                st.name, st.shards, st.key, st.engines
            ));
        }
        for b in &self.baskets {
            let mut line = format!(
                "basket {} len={} enabled={} in={} out={} dropped={} high_water={} cap={} \
                 pending_deletes={} compactions={} persistent={} wal_bytes={} segments={}",
                b.name, b.len, b.enabled, b.total_in, b.total_out, b.dropped, b.high_water,
                b.cap, b.pending_deletes, b.compactions, b.persistent, b.wal_bytes, b.segments
            );
            if b.persistent {
                line.push_str(&format!(
                    " wal_fsync_p99_micros={}",
                    b.wal_fsync_p99_micros
                ));
            }
            body.push(line);
        }
        for q in &self.queries {
            let mut line = format!(
                "query {} firings={} consumed={} produced={} busy_micros={} lock_micros={} \
                 rows_scanned={} rows_out={} plan_micros={} \
                 delta_rows={} full_reexecutes={} arrangement_bytes={} \
                 subscribers={} delivered_batches={} delivered_tuples={} dropped_batches={} \
                 p50_micros={} p99_micros={} max_micros={}",
                q.name, q.firings, q.consumed, q.produced, q.busy_micros, q.lock_micros,
                q.rows_scanned, q.rows_out, q.plan_micros,
                q.delta_rows, q.full_reexecutes, q.arrangement_bytes,
                q.subscribers, q.delivered_batches, q.delivered_tuples, q.dropped_batches,
                q.p50_micros, q.p99_micros, q.max_micros
            );
            if !q.engines.is_empty() {
                line.push_str(&format!(" engines={}", q.engines));
            }
            body.push(line);
        }
        for r in &self.receptors {
            body.push(format!(
                "receptor {} port={} format={} connections={} accepted={} rejected={}",
                r.stream, r.port, r.format, r.connections, r.accepted, r.rejected
            ));
        }
        for e in &self.emitters {
            body.push(format!(
                "emitter {} port={} format={} connections={} coalesced_batches={}",
                e.query, e.port, e.format, e.connections, e.coalesced_batches
            ));
        }
        for sh in &self.shards {
            let mut line = if sh.unreachable {
                format!("shard {} addr={} unreachable=true", sh.id, sh.addr)
            } else {
                format!(
                    "shard {} addr={} baskets_in={} delivered_tuples={} sessions={}",
                    sh.id, sh.addr, sh.baskets_in, sh.delivered_tuples, sh.sessions
                )
            };
            if !sh.follower.is_empty() {
                line.push_str(&format!(
                    " follower={} failovers={}",
                    sh.follower, sh.failovers
                ));
            }
            body.push(line);
        }
        for se in &self.sessions {
            body.push(format!(
                "session {} peer={} commands={}",
                se.id, se.peer, se.commands
            ));
        }
        body
    }

    /// Basket row by name.
    pub fn basket(&self, name: &str) -> Option<&BasketStats> {
        self.baskets.iter().find(|b| b.name == name)
    }

    /// Query row by name.
    pub fn query(&self, name: &str) -> Option<&QueryStats> {
        self.queries.iter().find(|q| q.name == name)
    }

    /// Lifetime tuples ingested across all baskets — the load signal the
    /// cluster router's placement uses.
    pub fn ingest_load(&self) -> u64 {
        self.baskets.iter().map(|b| b.total_in).sum()
    }

    /// Lifetime tuples delivered to subscribers across all queries.
    pub fn delivered_tuples(&self) -> u64 {
        self.queries.iter().map(|q| q.delivered_tuples).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_report() {
        let body = lines(&[
            "server uptime_micros=1234 sessions=2 queries=1 receptor_ports=1 emitter_ports=1",
            "basket S len=3 enabled=true in=100 out=97 dropped=0 high_water=50 cap=256 \
             pending_deletes=4 compactions=2",
            "query hot firings=7 consumed=100 produced=42 busy_micros=999 lock_micros=111 \
             rows_scanned=640 rows_out=42 plan_micros=17 \
             subscribers=2 delivered_batches=5 delivered_tuples=42 dropped_batches=0",
            "receptor S port=5001 format=binary connections=1 accepted=100 rejected=2",
            "emitter hot port=5002 format=text connections=2 coalesced_batches=3",
            "session 1 peer=127.0.0.1:9 commands=12",
        ]);
        let r = StatsReport::parse(&body).unwrap();
        assert_eq!(r.server.sessions, 2);
        assert_eq!(r.basket("S").unwrap().total_in, 100);
        assert_eq!(r.basket("S").unwrap().high_water, 50);
        assert_eq!(r.basket("S").unwrap().pending_deletes, 4);
        assert_eq!(r.basket("S").unwrap().compactions, 2);
        assert!(r.basket("S").unwrap().enabled);
        let q = r.query("hot").unwrap();
        assert_eq!(q.delivered_tuples, 42);
        assert_eq!(q.lock_micros, 111);
        assert_eq!(q.rows_scanned, 640);
        assert_eq!(q.rows_out, 42);
        assert_eq!(q.plan_micros, 17);
        assert_eq!(q.subscribers, 2);
        assert_eq!(r.receptors[0].port, 5001);
        assert_eq!(r.receptors[0].format, "binary");
        assert_eq!(r.emitters[0].coalesced_batches, 3);
        assert_eq!(r.sessions[0].id, 1);
        assert_eq!(r.sessions[0].commands, 12);
        assert_eq!(r.ingest_load(), 100);
        assert_eq!(r.delivered_tuples(), 42);
    }

    #[test]
    fn unknown_kinds_and_keys_are_ignored() {
        let body = lines(&[
            "wormhole X flux=9",
            "basket S len=1 enabled=false in=5 out=4 dropped=0 high_water=1 cap=0 shiny=yes",
        ]);
        let r = StatsReport::parse(&body).unwrap();
        assert_eq!(r.baskets.len(), 1);
        assert!(!r.baskets[0].enabled);
        assert_eq!(r.baskets[0].total_in, 5);
    }

    #[test]
    fn missing_keys_default_to_zero() {
        let r = StatsReport::parse(&lines(&["query q firings=3"])).unwrap();
        assert_eq!(r.query("q").unwrap().firings, 3);
        assert_eq!(r.query("q").unwrap().delivered_tuples, 0);
    }

    #[test]
    fn stray_bare_words_are_errors() {
        assert!(StatsReport::parse(&lines(&["basket S whoops extra"])).is_err());
    }

    #[test]
    fn parses_cluster_lines() {
        let body = lines(&[
            "server uptime_micros=9 sessions=1 queries=1 receptor_ports=1 emitter_ports=1 \
             engines=2 streams=1",
            "stream S shards=2 key=id engines=0,1",
            "shard 0 addr=127.0.0.1:9001 baskets_in=50 delivered_tuples=7 sessions=1 \
             follower=127.0.0.1:9101 failovers=0",
            "shard 1 addr=127.0.0.1:9002 unreachable=true follower=- failovers=2",
        ]);
        let r = StatsReport::parse(&body).unwrap();
        assert_eq!(r.server.engines, 2);
        assert_eq!(r.server.streams, 1);
        assert_eq!(r.streams[0].key, "id");
        assert_eq!(r.streams[0].engines, "0,1");
        assert_eq!(r.shards[0].baskets_in, 50);
        assert!(!r.shards[0].unreachable);
        assert_eq!(r.shards[0].follower, "127.0.0.1:9101");
        assert_eq!(r.shards[0].failovers, 0);
        assert!(r.shards[1].unreachable);
        assert_eq!(r.shards[1].addr, "127.0.0.1:9002");
        assert_eq!(r.shards[1].follower, "-");
        assert_eq!(r.shards[1].failovers, 2);
    }

    #[test]
    fn render_parse_roundtrips() {
        let body = lines(&[
            "server uptime_micros=9 sessions=1 queries=1 receptor_ports=1 emitter_ports=1 \
             engines=2 streams=1",
            "stream S shards=2 key=- engines=0,1",
            "basket S len=3 enabled=true in=100 out=97 dropped=0 high_water=50 cap=256 \
             pending_deletes=4 compactions=2 persistent=true wal_bytes=2048 segments=3 \
             wal_fsync_p99_micros=840",
            "query hot firings=7 consumed=100 produced=42 busy_micros=999 lock_micros=111 \
             rows_scanned=640 rows_out=42 plan_micros=17 \
             delta_rows=120 full_reexecutes=2 arrangement_bytes=4096 \
             subscribers=2 delivered_batches=5 delivered_tuples=42 dropped_batches=0 \
             p50_micros=8 p99_micros=64 max_micros=70",
            "receptor S port=5001 format=binary connections=1 accepted=100 rejected=2",
            "emitter hot port=5002 format=text connections=2 coalesced_batches=3",
            "shard 0 addr=127.0.0.1:9001 baskets_in=50 delivered_tuples=7 sessions=1 \
             follower=127.0.0.1:9101 failovers=1",
            "shard 1 addr=127.0.0.1:9002 unreachable=true follower=- failovers=0",
            "session 1 peer=127.0.0.1:9 commands=12",
        ]);
        let r = StatsReport::parse(&body).unwrap();
        assert_eq!(r.query("hot").unwrap().p99_micros, 64);
        assert_eq!(r.query("hot").unwrap().delta_rows, 120);
        assert_eq!(r.query("hot").unwrap().full_reexecutes, 2);
        assert_eq!(r.query("hot").unwrap().arrangement_bytes, 4096);
        assert!(r.basket("S").unwrap().persistent);
        assert_eq!(r.basket("S").unwrap().wal_bytes, 2048);
        assert_eq!(r.basket("S").unwrap().segments, 3);
        assert_eq!(r.basket("S").unwrap().wal_fsync_p99_micros, 840);
        let r2 = StatsReport::parse(&r.render()).unwrap();
        assert_eq!(r, r2);
    }
}
