//! Client sessions and result subscriptions.
//!
//! The control plane tracks every connected client as a session; each
//! registered continuous query owns a [`Broadcast`] that fans its result
//! batches out to all subscribed emitter sockets. A broadcast with no
//! subscribers buffers a bounded backlog so that results produced between
//! `REGISTER QUERY` and the first `ATTACH EMITTER` are not lost.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use datacell::frame::SharedFrame;
use datacell::scheduler::FactoryStats;
use monet::prelude::*;
use parking_lot::Mutex;

/// Batches a subscriber-less broadcast will hold before dropping oldest.
pub const BACKLOG_CAP: usize = 1024;

// ---- sessions ---------------------------------------------------------------

/// One control-plane connection.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    pub id: u64,
    pub peer: String,
    pub commands: u64,
}

/// Registry of live control sessions.
#[derive(Default)]
pub struct SessionManager {
    next: AtomicU64,
    sessions: Mutex<HashMap<u64, SessionInfo>>,
    opened_total: AtomicU64,
}

impl SessionManager {
    pub fn new() -> Self {
        SessionManager::default()
    }

    /// Register a new session, returning its id.
    pub fn open(&self, peer: impl Into<String>) -> u64 {
        let id = self.next.fetch_add(1, Ordering::AcqRel) + 1;
        self.opened_total.fetch_add(1, Ordering::AcqRel);
        self.sessions.lock().insert(
            id,
            SessionInfo {
                id,
                peer: peer.into(),
                commands: 0,
            },
        );
        id
    }

    /// Count one executed command against a session.
    pub fn note_command(&self, id: u64) {
        if let Some(s) = self.sessions.lock().get_mut(&id) {
            s.commands += 1;
        }
    }

    pub fn close(&self, id: u64) {
        self.sessions.lock().remove(&id);
    }

    pub fn live_count(&self) -> usize {
        self.sessions.lock().len()
    }

    pub fn opened_total(&self) -> u64 {
        self.opened_total.load(Ordering::Acquire)
    }

    /// Snapshot of live sessions, sorted by id.
    pub fn snapshot(&self) -> Vec<SessionInfo> {
        let mut v: Vec<SessionInfo> = self.sessions.lock().values().cloned().collect();
        v.sort_by_key(|s| s.id);
        v
    }
}

// ---- result fan-out ---------------------------------------------------------

/// Generic fan-out of `Arc<T>` items to a dynamic set of subscribers,
/// with a bounded backlog while no subscriber is attached.
///
/// The delivery skeleton shared by [`Broadcast`] (result batches to
/// emitter sockets) and the cluster router's byte relay: subscribe with
/// backlog replay, publish with dead-subscriber reaping, item/weight
/// counters. `weight_of` defines the second counter (tuples for
/// batches, bytes for wire chunks).
pub struct FanOut<T> {
    subs: Mutex<Vec<Sender<Arc<T>>>>,
    backlog: Mutex<VecDeque<Arc<T>>>,
    backlog_cap: usize,
    weight_of: fn(&T) -> u64,
    delivered_items: AtomicU64,
    delivered_weight: AtomicU64,
    dropped: AtomicU64,
}

impl<T> FanOut<T> {
    pub fn new(backlog_cap: usize, weight_of: fn(&T) -> u64) -> FanOut<T> {
        FanOut {
            subs: Mutex::new(Vec::new()),
            backlog: Mutex::new(VecDeque::new()),
            backlog_cap,
            weight_of,
            delivered_items: AtomicU64::new(0),
            delivered_weight: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Add a subscriber. Any backlog accumulated while no subscriber was
    /// attached is replayed to the new subscriber first, under the subs
    /// lock so `publish` cannot interleave a new item between the backlog
    /// and the live stream.
    pub fn subscribe(&self) -> Receiver<Arc<T>> {
        let (tx, rx) = unbounded();
        let mut subs = self.subs.lock();
        let backlog: Vec<Arc<T>> = self.backlog.lock().drain(..).collect();
        for item in backlog {
            self.count(&item);
            let _ = tx.send(item);
        }
        subs.push(tx);
        rx
    }

    /// Publish one item to all live subscribers (or the backlog when
    /// there are none, dropping oldest beyond the cap). Subscribers
    /// whose receiver hung up are reaped. Items are shared by `Arc` —
    /// fan-out never clones payloads.
    pub fn publish(&self, item: Arc<T>) {
        let mut subs = self.subs.lock();
        if !subs.is_empty() {
            let old = std::mem::take(&mut *subs);
            let mut live = Vec::with_capacity(old.len());
            for tx in old {
                if tx.send(Arc::clone(&item)).is_ok() {
                    live.push(tx);
                }
            }
            let delivered = !live.is_empty();
            *subs = live;
            if delivered {
                self.count(&item);
                return;
            }
        }
        let mut backlog = self.backlog.lock();
        if backlog.len() >= self.backlog_cap {
            backlog.pop_front();
            self.dropped.fetch_add(1, Ordering::AcqRel);
        }
        backlog.push_back(item);
    }

    fn count(&self, item: &Arc<T>) {
        self.delivered_items.fetch_add(1, Ordering::AcqRel);
        self.delivered_weight
            .fetch_add((self.weight_of)(item), Ordering::AcqRel);
    }

    /// Disconnect every subscriber channel (each drains what it already
    /// received, then ends) — the shutdown path.
    pub fn close(&self) {
        self.subs.lock().clear();
    }

    pub fn subscriber_count(&self) -> usize {
        self.subs.lock().len()
    }

    /// (items, total weight) delivered to at least one subscriber.
    pub fn delivered(&self) -> (u64, u64) {
        (
            self.delivered_items.load(Ordering::Acquire),
            self.delivered_weight.load(Ordering::Acquire),
        )
    }

    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Acquire)
    }
}

/// Fan-out of one query's result batches to a dynamic set of subscribers.
///
/// Batches travel as [`SharedFrame`]s: the wire encoding of a batch is
/// produced at most once per format no matter how many subscriber
/// emitters (or how many backlog replays) deliver it.
pub struct Broadcast {
    inner: FanOut<SharedFrame>,
}

impl Broadcast {
    pub fn new() -> Arc<Broadcast> {
        Arc::new(Broadcast {
            inner: FanOut::new(BACKLOG_CAP, |f| f.len() as u64),
        })
    }

    /// Add a subscriber (backlog replayed first).
    pub fn subscribe(&self) -> Receiver<Arc<SharedFrame>> {
        self.inner.subscribe()
    }

    /// Publish one result batch, wrapped in one [`SharedFrame`] shared
    /// across the whole subscriber set.
    pub fn publish(&self, batch: Relation) {
        self.inner.publish(SharedFrame::new(batch));
    }

    pub fn subscriber_count(&self) -> usize {
        self.inner.subscriber_count()
    }

    /// (batches, tuples) delivered.
    pub fn delivered(&self) -> (u64, u64) {
        self.inner.delivered()
    }

    pub fn dropped_batches(&self) -> u64 {
        self.inner.dropped()
    }
}

/// One registered continuous query and its delivery machinery.
pub struct QueryHandle {
    pub name: String,
    pub sql: String,
    pub registered_at: Instant,
    /// Live scheduler-side statistics (shared with the factory thread).
    pub stats: Arc<Mutex<FactoryStats>>,
    /// Fan-out of result batches; `None` for queries with no bare SELECT
    /// (e.g. INSERT chains) — those cannot take emitters.
    pub broadcast: Option<Arc<Broadcast>>,
    /// The pump thread moving batches from the factory channel into the
    /// broadcast; joined at shutdown.
    pump: Mutex<Option<JoinHandle<()>>>,
}

impl QueryHandle {
    pub fn new(
        name: impl Into<String>,
        sql: impl Into<String>,
        stats: Arc<Mutex<FactoryStats>>,
        results: Option<Receiver<Relation>>,
    ) -> Arc<QueryHandle> {
        let name = name.into();
        let (broadcast, pump) = match results {
            Some(rx) => {
                let bc = Broadcast::new();
                let bc2 = Arc::clone(&bc);
                let handle = std::thread::Builder::new()
                    .name(format!("dc-pump-{name}"))
                    .spawn(move || {
                        while let Ok(batch) = rx.recv() {
                            bc2.publish(batch);
                        }
                    })
                    .expect("spawn pump thread");
                (Some(bc), Some(handle))
            }
            None => (None, None),
        };
        Arc::new(QueryHandle {
            name,
            sql: sql.into(),
            registered_at: Instant::now(),
            stats,
            broadcast,
            pump: Mutex::new(pump),
        })
    }

    /// Wait for the pump to flush (valid once the factory's sender side
    /// has been dropped, i.e. after the scheduler stopped).
    pub fn join_pump(&self) {
        if let Some(h) = self.pump.lock().take() {
            let _ = h.join();
        }
    }
}

/// Registry of continuous queries by name.
#[derive(Default)]
pub struct QueryRegistry {
    queries: Mutex<HashMap<String, Arc<QueryHandle>>>,
}

impl QueryRegistry {
    pub fn new() -> Self {
        QueryRegistry::default()
    }

    pub fn insert(&self, handle: Arc<QueryHandle>) -> bool {
        let mut q = self.queries.lock();
        if q.contains_key(&handle.name) {
            return false;
        }
        q.insert(handle.name.clone(), handle);
        true
    }

    pub fn contains(&self, name: &str) -> bool {
        self.queries.lock().contains_key(name)
    }

    pub fn get(&self, name: &str) -> Option<Arc<QueryHandle>> {
        self.queries.lock().get(name).cloned()
    }

    pub fn len(&self) -> usize {
        self.queries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.queries.lock().is_empty()
    }

    /// Snapshot sorted by name.
    pub fn snapshot(&self) -> Vec<Arc<QueryHandle>> {
        let mut v: Vec<Arc<QueryHandle>> = self.queries.lock().values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Drain all handles (shutdown path).
    pub fn drain(&self) -> Vec<Arc<QueryHandle>> {
        self.queries.lock().drain().map(|(_, h)| h).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(vals: &[i64]) -> Relation {
        Relation::from_columns(vec![("x".into(), Column::from_ints(vals.to_vec()))]).unwrap()
    }

    #[test]
    fn sessions_open_count_close() {
        let m = SessionManager::new();
        let a = m.open("1.2.3.4:5");
        let b = m.open("6.7.8.9:10");
        assert_ne!(a, b);
        m.note_command(a);
        m.note_command(a);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].commands, 2);
        m.close(a);
        assert_eq!(m.live_count(), 1);
        assert_eq!(m.opened_total(), 2);
    }

    #[test]
    fn broadcast_delivers_to_all_subscribers() {
        let bc = Broadcast::new();
        let rx1 = bc.subscribe();
        let rx2 = bc.subscribe();
        bc.publish(batch(&[1, 2]));
        let f1 = rx1.recv().unwrap();
        let f2 = rx2.recv().unwrap();
        assert_eq!(f1.len(), 2);
        assert_eq!(f2.len(), 2);
        assert!(
            Arc::ptr_eq(&f1, &f2),
            "subscribers share one frame, not clones"
        );
        assert_eq!(bc.delivered(), (1, 2));
    }

    #[test]
    fn broadcast_backlog_replays_to_first_subscriber() {
        let bc = Broadcast::new();
        bc.publish(batch(&[1]));
        bc.publish(batch(&[2, 3]));
        assert_eq!(bc.delivered(), (0, 0), "nothing delivered yet");
        let rx = bc.subscribe();
        assert_eq!(rx.recv().unwrap().len(), 1);
        assert_eq!(rx.recv().unwrap().len(), 2);
        assert_eq!(bc.delivered(), (2, 3));
    }

    #[test]
    fn broadcast_backlog_is_bounded() {
        let bc = Broadcast::new();
        for i in 0..(BACKLOG_CAP + 10) {
            bc.publish(batch(&[i as i64]));
        }
        assert_eq!(bc.dropped_batches(), 10);
        let rx = bc.subscribe();
        // oldest 10 dropped: first replayed batch holds value 10
        assert_eq!(
            rx.recv()
                .unwrap()
                .relation()
                .column("x")
                .unwrap()
                .ints()
                .unwrap(),
            &[10]
        );
    }

    #[test]
    fn dead_subscribers_are_reaped() {
        let bc = Broadcast::new();
        let rx = bc.subscribe();
        drop(rx);
        bc.publish(batch(&[1]));
        assert_eq!(bc.subscriber_count(), 0);
    }
}
