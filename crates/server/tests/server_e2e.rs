//! End-to-end test of the daemon: boot `datacelld` on ephemeral ports,
//! drive the paper's §3.1 loop entirely over TCP — ingest through a
//! receptor socket, a continuous query fires inside the engine, results
//! arrive on an emitter socket — then shut down gracefully.

use std::thread::JoinHandle;
use std::time::Duration;

use datacell::frame::WireFormat;
use dcserver::client::Client;
use dcserver::{bind, ServerConfig};
use monet::prelude::*;

/// Boot a daemon on an ephemeral control port; returns (control addr,
/// serve-thread handle).
fn boot() -> (std::net::SocketAddr, JoinHandle<()>) {
    let server = bind("127.0.0.1:0", ServerConfig::default()).expect("bind control plane");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        server.serve().expect("serve");
    });
    (addr, handle)
}

#[test]
fn full_section_3_1_loop_over_sockets() {
    let (addr, server_thread) = boot();
    let mut c = Client::connect(addr).unwrap();
    c.ping().unwrap();

    // control plane: DDL + continuous query + port attachment
    c.create_stream("S", "(id int, payload int)").unwrap();
    c.register_query(
        "hot",
        "select id, payload from [select * from S] as Z where Z.payload > 100",
    )
    .unwrap();
    let rport = c.attach_receptor("S", 0).unwrap();
    let eport = c.attach_emitter("hot", 0).unwrap();
    assert_ne!(rport, 0);
    assert_ne!(eport, 0);
    assert_ne!(rport, eport);

    // data plane: ingest over the receptor socket
    let mut sink = c.open_receptor(rport).unwrap();
    let mut tap = c.open_emitter(eport).unwrap();
    tap.set_timeout(Some(Duration::from_secs(10))).unwrap();
    for i in 0..200i64 {
        sink.send_row(&[Value::Int(i), Value::Int(i * 10)]).unwrap();
    }
    sink.flush().unwrap();

    // results: payload > 100 keeps ids 11..=199
    let schema = Schema::from_pairs(&[("id", ValueType::Int), ("payload", ValueType::Int)]);
    let rows = tap.take_rows(&schema, 189).unwrap();
    assert_eq!(rows.len(), 189);
    let mut ids: Vec<i64> = rows
        .iter()
        .map(|r| match r[0] {
            Value::Int(v) => v,
            ref other => panic!("unexpected value {other:?}"),
        })
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, (11..=199).collect::<Vec<i64>>());
    for r in &rows {
        match (&r[0], &r[1]) {
            (Value::Int(id), Value::Int(p)) => assert_eq!(*p, id * 10),
            other => panic!("unexpected row {other:?}"),
        }
    }

    // STATS reflects the run (typed report — no string scraping)
    let stats = c.stats_report().unwrap();
    let hot = stats.query("hot").expect("query row in STATS");
    assert_eq!(hot.delivered_tuples, 189, "{hot:?}");
    assert!(
        stats.receptors.iter().any(|r| r.stream == "S"),
        "{stats:?}"
    );

    // graceful shutdown from the control plane
    c.shutdown().unwrap();
    server_thread.join().unwrap();

    // the emitter stream closes after the final flush
    assert_eq!(tap.next_row(&schema).unwrap(), None);
}

#[test]
fn results_survive_between_register_and_attach() {
    // tuples ingested before any emitter attaches are buffered in the
    // query's broadcast backlog and replayed to the first subscriber
    let (addr, server_thread) = boot();
    let mut c = Client::connect(addr).unwrap();
    c.create_stream("S", "(id int, v int)").unwrap();
    c.register_query("all", "select id from [select * from S] as Z")
        .unwrap();
    let rport = c.attach_receptor("S", 0).unwrap();
    let mut sink = c.open_receptor(rport).unwrap();
    sink.send_row(&[Value::Int(7), Value::Int(1)]).unwrap();
    sink.flush().unwrap();

    // wait until the engine consumed the tuple
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = c.stats_report().unwrap();
        let consumed = stats
            .query("all")
            .map(|q| q.delivered_batches == 0 && q.consumed == 1)
            .unwrap_or(false);
        if consumed {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "engine never consumed the tuple: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // only now attach the emitter: the backlog must replay
    let eport = c.attach_emitter("all", 0).unwrap();
    let mut tap = c.open_emitter(eport).unwrap();
    tap.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let schema = Schema::from_pairs(&[("id", ValueType::Int)]);
    assert_eq!(tap.next_row(&schema).unwrap(), Some(vec![Value::Int(7)]));

    c.shutdown().unwrap();
    server_thread.join().unwrap();
}

#[test]
fn two_clients_fan_out_same_query() {
    let (addr, server_thread) = boot();
    let mut c = Client::connect(addr).unwrap();
    c.create_stream("S", "(id int, v int)").unwrap();
    c.register_query("all", "select id from [select * from S] as Z")
        .unwrap();
    let rport = c.attach_receptor("S", 0).unwrap();
    let eport = c.attach_emitter("all", 0).unwrap();

    // a second control session sees the same server
    let mut c2 = Client::connect(addr).unwrap();
    let stats = c2.stats_report().unwrap();
    assert_eq!(stats.server.sessions, 2, "{stats:?}");

    // two subscribers on one emitter port each get every result
    let mut tap1 = c.open_emitter(eport).unwrap();
    let mut tap2 = c2.open_emitter(eport).unwrap();
    tap1.set_timeout(Some(Duration::from_secs(10))).unwrap();
    tap2.set_timeout(Some(Duration::from_secs(10))).unwrap();
    // give the emitter accept loop a moment to register both subscribers
    // before results flow (subscription later than delivery only costs
    // the backlog replay, but both-subscribed is the interesting case)
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = c.stats_report().unwrap();
        if stats.query("all").map(|q| q.subscribers) == Some(2) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "subscribers never registered: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut sink = c.open_receptor(rport).unwrap();
    for i in 0..50i64 {
        sink.send_row(&[Value::Int(i), Value::Int(0)]).unwrap();
    }
    sink.flush().unwrap();

    let schema = Schema::from_pairs(&[("id", ValueType::Int)]);
    let rows1 = tap1.take_rows(&schema, 50).unwrap();
    let rows2 = tap2.take_rows(&schema, 50).unwrap();
    assert_eq!(rows1.len(), 50);
    assert_eq!(rows1, rows2);

    c.shutdown().unwrap();
    server_thread.join().unwrap();
}

#[test]
fn control_plane_rejects_bad_requests() {
    let (addr, server_thread) = boot();
    let mut c = Client::connect(addr).unwrap();
    c.create_stream("S", "(id int)").unwrap();

    // duplicate stream
    let err = c.create_stream("S", "(id int)").unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
    // unknown stream/query on ATTACH
    assert!(c.attach_receptor("nosuch", 0).is_err());
    assert!(c.attach_emitter("nosuch", 0).is_err());
    // bad SQL in REGISTER
    assert!(c.register_query("broken", "selectt nonsense").is_err());
    // duplicate query name
    c.register_query("q", "select id from [select * from S] as Z")
        .unwrap();
    let err = c
        .register_query("q", "select id from [select * from S] as Z")
        .unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
    // unparseable command line
    assert!(c.request("FROBNICATE THE BASKETS").is_err());
    // SHARD BY parses, but a single engine cannot honor it
    let err = c
        .request("CREATE STREAM P (id int) SHARD BY (id) SHARDS 2")
        .unwrap_err();
    assert!(err.to_string().contains("dccluster"), "{err}");
    // the session survives all of the above
    c.ping().unwrap();

    c.shutdown().unwrap();
    server_thread.join().unwrap();
}

#[test]
fn binary_data_plane_round_trip() {
    // the full §3.1 loop with columnar frames on both sides, including
    // strings with framing hazards, NULLs and empty strings
    let (addr, server_thread) = boot();
    let mut c = Client::connect(addr).unwrap();
    c.create_stream("S", "(id int, tag varchar)").unwrap();
    c.register_query("all", "select id, tag from [select * from S] as Z")
        .unwrap();
    let rport = c.attach_receptor_fmt("S", 0, WireFormat::Binary).unwrap();
    let eport = c.attach_emitter_fmt("all", 0, WireFormat::Binary).unwrap();

    let schema = Schema::from_pairs(&[("id", ValueType::Int), ("tag", ValueType::Str)]);
    let mut sink = c.open_receptor_with(rport, WireFormat::Binary, &schema).unwrap();
    let mut tap = c.open_emitter_with(eport, WireFormat::Binary).unwrap();
    tap.set_timeout(Some(Duration::from_secs(10))).unwrap();

    let mut batch = Relation::from_columns(vec![
        ("id".into(), Column::from_ints(vec![1, 2, 3])),
        (
            "tag".into(),
            Column::from_strs(vec!["a|b".into(), String::new(), "line\n2 ☂".into()]),
        ),
    ])
    .unwrap();
    batch.append_row(&[Value::Int(4), Value::Null]).unwrap();
    sink.send_batch(&batch).unwrap();
    sink.flush().unwrap();

    let rows = tap.take_rows(&schema, 4).unwrap();
    assert_eq!(rows.len(), 4);
    assert_eq!(rows[0], vec![Value::Int(1), Value::Str("a|b".into())]);
    assert_eq!(rows[1], vec![Value::Int(2), Value::Str(String::new())]);
    assert_eq!(rows[2], vec![Value::Int(3), Value::Str("line\n2 ☂".into())]);
    assert_eq!(rows[3], vec![Value::Int(4), Value::Null]);

    // STATS names the formats
    let stats = c.stats_report().unwrap();
    assert!(
        stats
            .receptors
            .iter()
            .any(|r| r.stream == "S" && r.format == "binary"),
        "{stats:?}"
    );
    assert!(
        stats
            .emitters
            .iter()
            .any(|e| e.query == "all" && e.format == "binary"),
        "{stats:?}"
    );

    c.shutdown().unwrap();
    server_thread.join().unwrap();
}

#[test]
fn cross_format_sessions_interoperate() {
    // BINARY receptor feeding a TEXT emitter, and a second TEXT receptor
    // feeding a BINARY emitter on the same query — formats are per-port,
    // results identical
    let (addr, server_thread) = boot();
    let mut c = Client::connect(addr).unwrap();
    c.create_stream("S", "(id int, v int)").unwrap();
    c.register_query("all", "select id, v from [select * from S] as Z")
        .unwrap();
    let rport_bin = c.attach_receptor_fmt("S", 0, WireFormat::Binary).unwrap();
    let rport_txt = c.attach_receptor("S", 0).unwrap();
    let eport_txt = c.attach_emitter_fmt("all", 0, WireFormat::Text).unwrap();
    let eport_bin = c.attach_emitter_fmt("all", 0, WireFormat::Binary).unwrap();

    let schema = Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)]);
    let mut tap_txt = c.open_emitter_with(eport_txt, WireFormat::Text).unwrap();
    let mut tap_bin = c.open_emitter_with(eport_bin, WireFormat::Binary).unwrap();
    tap_txt.set_timeout(Some(Duration::from_secs(10))).unwrap();
    tap_bin.set_timeout(Some(Duration::from_secs(10))).unwrap();

    // wait for both subscribers so each sees every result
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = c.stats_report().unwrap();
        if stats.query("all").map(|q| q.subscribers) == Some(2) {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "{stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // half the tuples over the binary receptor...
    let mut sink_bin = c
        .open_receptor_with(rport_bin, WireFormat::Binary, &schema)
        .unwrap();
    let batch = Relation::from_columns(vec![
        ("id".into(), Column::from_ints((0..25).collect())),
        ("v".into(), Column::from_ints((0..25).map(|i| i * 2).collect())),
    ])
    .unwrap();
    sink_bin.send_batch(&batch).unwrap();
    sink_bin.flush().unwrap();
    // ...half over the text receptor (row convenience path)
    let mut sink_txt = c.open_receptor(rport_txt).unwrap();
    for i in 25..50i64 {
        sink_txt.send_row(&[Value::Int(i), Value::Int(i * 2)]).unwrap();
    }
    sink_txt.flush().unwrap();

    let mut rows_txt = tap_txt.take_rows(&schema, 50).unwrap();
    let mut rows_bin = tap_bin.take_rows(&schema, 50).unwrap();
    assert_eq!(rows_txt.len(), 50);
    assert_eq!(rows_bin.len(), 50);
    let key = |r: &Vec<Value>| match r[0] {
        Value::Int(v) => v,
        _ => panic!("unexpected row"),
    };
    rows_txt.sort_by_key(key);
    rows_bin.sort_by_key(key);
    assert_eq!(rows_txt, rows_bin, "formats must agree on content");
    for (i, r) in rows_txt.iter().enumerate() {
        assert_eq!(r[0], Value::Int(i as i64));
        assert_eq!(r[1], Value::Int(i as i64 * 2));
    }

    c.shutdown().unwrap();
    server_thread.join().unwrap();
}

#[test]
fn receptor_backpressure_caps_basket_growth() {
    // a server with a tiny receptor cap: the basket never grows far past
    // the cap, everything still arrives, and STATS reports the high-water
    let config = ServerConfig {
        receptor_basket_cap: 256,
        ..ServerConfig::default()
    };
    let server = bind("127.0.0.1:0", config).expect("bind control plane");
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || {
        server.serve().expect("serve");
    });

    let mut c = Client::connect(addr).unwrap();
    c.create_stream("S", "(id int, v int)").unwrap();
    c.register_query("all", "select id from [select * from S] as Z")
        .unwrap();
    let rport = c.attach_receptor_fmt("S", 0, WireFormat::Binary).unwrap();
    let eport = c.attach_emitter("all", 0).unwrap();

    let schema = Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)]);
    let mut sink = c.open_receptor_with(rport, WireFormat::Binary, &schema).unwrap();
    let mut tap = c.open_emitter(eport).unwrap();
    tap.set_timeout(Some(Duration::from_secs(30))).unwrap();
    // wait until the tap's subscription registered, so no result batch
    // can age out of the broadcast backlog during the flood below
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = c.stats_report().unwrap();
        if stats.query("all").map(|q| q.subscribers) == Some(1) {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "{stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    const N: i64 = 20_000;
    let writer = std::thread::spawn(move || {
        for start in (0..N).step_by(100) {
            let batch = Relation::from_columns(vec![
                ("id".into(), Column::from_ints((start..start + 100).collect())),
                ("v".into(), Column::from_ints(vec![0; 100])),
            ])
            .unwrap();
            sink.send_batch(&batch).unwrap();
        }
        sink.flush().unwrap();
    });

    let out_schema = Schema::from_pairs(&[("id", ValueType::Int)]);
    let rows = tap.take_rows(&out_schema, N as usize).unwrap();
    assert_eq!(rows.len(), N as usize, "backpressure must not lose tuples");
    writer.join().unwrap();

    let stats = c.stats_report().unwrap();
    let basket = stats.basket("S").expect("basket row in STATS");
    assert_eq!(basket.cap, 256, "{basket:?}");
    assert!(basket.high_water > 0, "{basket:?}");
    assert!(
        basket.high_water <= 256 + 100,
        "occupancy bounded by cap + one in-flight batch: {basket:?}"
    );

    c.shutdown().unwrap();
    server_thread.join().unwrap();
}

#[test]
fn tap_survives_read_timeouts_mid_frame() {
    // a frame (binary) and a line (text) delivered byte-dribbled across
    // read timeouts must decode intact once complete — partial input
    // stays buffered in the tap between calls
    use dcserver::client::EmitterTap;
    use std::io::Write as _;

    for format in [WireFormat::Binary, WireFormat::Text] {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let schema = Schema::from_pairs(&[("id", ValueType::Int), ("tag", ValueType::Str)]);
        let rel = Relation::from_columns(vec![
            ("id".into(), Column::from_ints(vec![1, 2])),
            ("tag".into(), Column::from_strs(vec!["a".into(), "b|c".into()])),
        ])
        .unwrap();
        let wire = match format {
            WireFormat::Binary => {
                let mut buf = Vec::new();
                datacell::frame::encode_frame(&mut buf, &rel).unwrap();
                buf
            }
            WireFormat::Text => b"1|a\n2|b\\pc\n".to_vec(),
        };
        let server = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            for chunk in wire.chunks(3) {
                sock.write_all(chunk).unwrap();
                sock.flush().unwrap();
                std::thread::sleep(Duration::from_millis(30));
            }
        });
        let mut tap = EmitterTap::connect_with(addr, format).unwrap();
        tap.set_timeout(Some(Duration::from_millis(5))).unwrap();
        let mut rows = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while rows.len() < 2 {
            assert!(std::time::Instant::now() < deadline, "{format}: tap stalled");
            match tap.next_row(&schema) {
                Ok(Some(row)) => rows.push(row),
                Ok(None) => break,
                Err(_) => continue, // timeout fired mid-frame/mid-line: retry
            }
        }
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Str("a".into())],
                vec![Value::Int(2), Value::Str("b|c".into())],
            ],
            "{format}: dribbled input must decode intact"
        );
        server.join().unwrap();
    }
}

#[test]
fn metrics_exposition_after_firings() {
    // the CI smoke: boot, drive firings over sockets, then assert the
    // Prometheus exposition parses and carries non-zero fire latency
    // histograms, STATS carries the latency summary, TRACE DUMP holds
    // firing events, and a live TRACE stream delivers events
    let (addr, server_thread) = boot();
    let mut c = Client::connect(addr).unwrap();
    c.create_stream("S", "(id int, v int)").unwrap();
    c.register_query("hot", "select id from [select * from S] as Z where Z.v > 10")
        .unwrap();
    let rport = c.attach_receptor("S", 0).unwrap();
    let eport = c.attach_emitter("hot", 0).unwrap();

    // subscribe a live trace stream BEFORE the firings so it sees them
    let tport = c.trace_on("hot").unwrap();
    let mut trace = c.open_trace(tport).unwrap();
    trace.set_timeout(Some(Duration::from_secs(10))).unwrap();

    let mut sink = c.open_receptor(rport).unwrap();
    let mut tap = c.open_emitter(eport).unwrap();
    tap.set_timeout(Some(Duration::from_secs(10))).unwrap();
    for i in 0..100i64 {
        sink.send_row(&[Value::Int(i), Value::Int(i)]).unwrap();
    }
    sink.flush().unwrap();
    let schema = Schema::from_pairs(&[("id", ValueType::Int)]);
    assert_eq!(tap.take_rows(&schema, 89).unwrap().len(), 89);

    // METRICS: valid exposition with a fired histogram
    let body = c.metrics().unwrap();
    let samples = dctrace::parse_exposition(&body).expect("exposition must parse");
    let fire_count = samples
        .iter()
        .find(|s| s.name == "dc_fire_micros_count" && s.labels.contains("query=\"hot\""))
        .expect("fire histogram present");
    assert!(fire_count.value >= 1.0, "{fire_count:?}");
    assert!(
        samples
            .iter()
            .any(|s| s.name == "dc_fire_phase_micros_count"
                && s.labels.contains("phase=\"execute\"")),
        "phase breakdown present"
    );
    assert!(
        samples
            .iter()
            .any(|s| s.name == "dc_tuple_latency_micros_count" && s.value >= 1.0),
        "end-to-end tuple latency recorded: {samples:?}"
    );

    // STATS: latency summary columns filled in from the histogram
    let stats = c.stats_report().unwrap();
    let hot = stats.query("hot").unwrap();
    assert!(hot.max_micros >= hot.p50_micros, "{hot:?}");
    assert!(hot.p99_micros >= hot.p50_micros, "{hot:?}");

    // TRACE DUMP: firing events, filtered and unfiltered
    let dump = c.trace_dump_query("hot").unwrap();
    assert!(
        dump.iter().any(|l| l.contains("kind=fire_start")),
        "{dump:?}"
    );
    assert!(
        dump.iter().any(|l| l.contains("kind=fire_end")),
        "{dump:?}"
    );
    assert!(!c.trace_dump().unwrap().is_empty());

    // the live stream saw a firing event too
    let line = trace.next_line().unwrap().expect("live trace line");
    assert!(line.contains("kind=fire_"), "{line}");

    // OFF ends the live stream (drain remaining, then EOF)
    c.trace_off("hot").unwrap();
    while trace.next_line().unwrap().is_some() {}

    c.shutdown().unwrap();
    server_thread.join().unwrap();
}

#[test]
fn telemetry_disabled_is_clean() {
    // telemetry off: METRICS is empty, TRACE errors, STATS still works
    let server = bind(
        "127.0.0.1:0",
        ServerConfig {
            telemetry_enabled: false,
            ..ServerConfig::default()
        },
    )
    .expect("bind control plane");
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || {
        server.serve().expect("serve");
    });
    let mut c = Client::connect(addr).unwrap();
    c.create_stream("S", "(id int)").unwrap();
    c.register_query("all", "select id from [select * from S] as Z")
        .unwrap();
    assert_eq!(c.metrics().unwrap(), Vec::<String>::new());
    assert!(c.trace_dump().is_err());
    assert!(c.trace_on("all").is_err());
    let stats = c.stats_report().unwrap();
    assert_eq!(stats.query("all").unwrap().p99_micros, 0);
    c.shutdown().unwrap();
    server_thread.join().unwrap();
}

#[test]
fn exec_one_shot_round_trip() {
    let (addr, server_thread) = boot();
    let mut c = Client::connect(addr).unwrap();
    c.create_table("T", "(a int, b varchar)").unwrap();
    assert_eq!(c.exec("insert into T values (1, 'x'), (2, 'y')").unwrap(), Vec::<String>::new());
    let body = c.exec("select a, b from T where b = 'y'").unwrap();
    assert_eq!(body, vec!["# a|b".to_string(), "2|y".to_string()]);
    c.shutdown().unwrap();
    server_thread.join().unwrap();
}

#[test]
fn explain_shows_compiled_plan_and_stats_carry_plan_fields() {
    let (addr, server_thread) = boot();
    let mut c = Client::connect(addr).unwrap();
    c.create_stream("S", "(a int, b int, c int, d int)").unwrap();
    c.register_query(
        "narrow",
        "select a from [select a, b from S where b > 2] as Z where Z.a > 0",
    )
    .unwrap();

    // EXPLAIN of a raw script
    let plan = c
        .explain("select a from [select a, b from S where b > 2] as Z where Z.a > 0")
        .unwrap()
        .join("\n");
    assert!(plan.contains("fast select"), "{plan}");
    assert!(plan.contains("scan S"), "{plan}");
    assert!(plan.contains("[consume]"), "{plan}");
    assert!(plan.contains("cols=a,b"), "pruned column set: {plan}");
    assert!(plan.contains("lineage=selection-vector"), "{plan}");
    assert!(plan.contains("b > 2"), "predicate order visible: {plan}");

    // EXPLAIN QUERY of the registered query
    let plan = c.explain_query("narrow").unwrap().join("\n");
    assert!(plan.starts_with("query narrow AS "), "{plan}");
    assert!(plan.contains("scan S"), "{plan}");
    assert!(c.explain_query("nope").is_err());
    assert!(c.explain("select ] nonsense").is_err());

    // fire once over the receptor path so STATS carries plan telemetry
    // (b > 2 everywhere: the firing consumes the whole batch and idles)
    let rport = c.attach_receptor("S", 0).unwrap();
    let mut sink = c.open_receptor(rport).unwrap();
    for i in 0..10i64 {
        sink.send_row(&[
            Value::Int(i),
            Value::Int(i + 3),
            Value::Int(0),
            Value::Int(0),
        ])
        .unwrap();
    }
    sink.flush().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let q = loop {
        let stats = c.stats_report().unwrap();
        let q = stats.query("narrow").expect("query row").clone();
        if q.firings > 0 || std::time::Instant::now() > deadline {
            break q;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(q.firings > 0, "query fired: {q:?}");
    assert!(q.rows_scanned > 0, "rows_scanned threaded: {q:?}");
    assert!(q.rows_out > 0, "rows_out threaded: {q:?}");

    c.shutdown().unwrap();
    server_thread.join().unwrap();
}

#[test]
fn standing_join_runs_incrementally_and_reports_delta_stats() {
    let (addr, server_thread) = boot();
    let mut c = Client::connect(addr).unwrap();
    c.create_stream("X", "(id int, v int)").unwrap();
    c.create_stream("Y", "(id int, v int)").unwrap();
    // non-consuming scans keep the baskets append-only — the shape the
    // delta planner compiles to an incremental hash join
    c.register_query("j", "select X.v as xv, Y.v as yv from X, Y where X.id = Y.id")
        .unwrap();

    let plan = c.explain_query("j").unwrap().join("\n");
    assert!(plan.contains("hash_join"), "{plan}");
    assert!(plan.contains("arrange X.id (shared)"), "{plan}");
    assert!(plan.contains("arrange Y.id (shared)"), "{plan}");
    assert!(plan.contains("mode delta|full"), "{plan}");
    assert!(plan.contains("delta delta_rows="), "live delta line: {plan}");

    // feed both sides, then append more rows so later firings see a
    // non-empty delta over an unchanged prefix
    let xport = c.attach_receptor("X", 0).unwrap();
    let yport = c.attach_receptor("Y", 0).unwrap();
    let mut xs = c.open_receptor(xport).unwrap();
    let mut ys = c.open_receptor(yport).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let q = loop {
        for i in 0..4i64 {
            xs.send_row(&[Value::Int(i), Value::Int(i * 10)]).unwrap();
            ys.send_row(&[Value::Int(i), Value::Int(i * 100)]).unwrap();
        }
        xs.flush().unwrap();
        ys.flush().unwrap();
        let stats = c.stats_report().unwrap();
        let q = stats.query("j").expect("query row").clone();
        if q.delta_rows > 0 || std::time::Instant::now() > deadline {
            break q;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(q.delta_rows > 0, "incremental firings happened: {q:?}");
    assert!(q.full_reexecutes > 0, "the bootstrap firing was a full run: {q:?}");
    assert!(q.arrangement_bytes > 0, "shared state reported: {q:?}");

    // the live EXPLAIN now shows the advanced shared arrangements
    let plan = c.explain_query("j").unwrap().join("\n");
    assert!(plan.contains("arrangement X.id rows="), "{plan}");
    assert!(plan.contains("arrangement Y.id rows="), "{plan}");

    c.shutdown().unwrap();
    server_thread.join().unwrap();
}

#[test]
fn detach_closes_ports_and_stops_counting_them() {
    let (addr, server_thread) = boot();
    let mut c = Client::connect(addr).unwrap();
    c.create_stream("S", "(id int)").unwrap();
    c.register_query("all", "select id from [select * from S] as Z")
        .unwrap();
    let rport = c.attach_receptor("S", 0).unwrap();
    let eport = c.attach_emitter("all", 0).unwrap();
    assert_eq!(c.stats_report().unwrap().receptors.len(), 1);

    c.detach_receptor("S", rport).unwrap();
    c.detach_emitter("all", eport).unwrap();
    let stats = c.stats_report().unwrap();
    assert!(stats.receptors.is_empty(), "{stats:?}");
    assert!(stats.emitters.is_empty(), "{stats:?}");

    // a second detach of the same port — and a detach of a port that
    // never existed — are errors, not silent no-ops
    assert!(c.detach_receptor("S", rport).is_err());
    assert!(c.detach_emitter("all", eport).is_err());
    assert!(c.detach_receptor("S", 1).is_err());

    // the stream and query are untouched: fresh ports attach fine
    let rport2 = c.attach_receptor("S", 0).unwrap();
    let eport2 = c.attach_emitter("all", 0).unwrap();
    let mut sink = c.open_receptor(rport2).unwrap();
    let mut tap = c.open_emitter(eport2).unwrap();
    tap.set_timeout(Some(Duration::from_secs(10))).unwrap();
    sink.send_row(&[Value::Int(41)]).unwrap();
    sink.flush().unwrap();
    let schema = Schema::from_pairs(&[("id", ValueType::Int)]);
    let rows = tap.take_rows(&schema, 1).unwrap();
    assert_eq!(rows, vec![vec![Value::Int(41)]]);

    c.shutdown().unwrap();
    server_thread.join().unwrap();
}
