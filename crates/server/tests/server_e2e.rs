//! End-to-end test of the daemon: boot `datacelld` on ephemeral ports,
//! drive the paper's §3.1 loop entirely over TCP — ingest through a
//! receptor socket, a continuous query fires inside the engine, results
//! arrive on an emitter socket — then shut down gracefully.

use std::thread::JoinHandle;
use std::time::Duration;

use dcserver::client::Client;
use dcserver::{bind, ServerConfig};
use monet::prelude::*;

/// Boot a daemon on an ephemeral control port; returns (control addr,
/// serve-thread handle).
fn boot() -> (std::net::SocketAddr, JoinHandle<()>) {
    let server = bind("127.0.0.1:0", ServerConfig::default()).expect("bind control plane");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        server.serve().expect("serve");
    });
    (addr, handle)
}

#[test]
fn full_section_3_1_loop_over_sockets() {
    let (addr, server_thread) = boot();
    let mut c = Client::connect(addr).unwrap();
    c.ping().unwrap();

    // control plane: DDL + continuous query + port attachment
    c.create_stream("S", "(id int, payload int)").unwrap();
    c.register_query(
        "hot",
        "select id, payload from [select * from S] as Z where Z.payload > 100",
    )
    .unwrap();
    let rport = c.attach_receptor("S", 0).unwrap();
    let eport = c.attach_emitter("hot", 0).unwrap();
    assert_ne!(rport, 0);
    assert_ne!(eport, 0);
    assert_ne!(rport, eport);

    // data plane: ingest over the receptor socket
    let mut sink = c.open_receptor(rport).unwrap();
    let mut tap = c.open_emitter(eport).unwrap();
    tap.set_timeout(Some(Duration::from_secs(10))).unwrap();
    for i in 0..200i64 {
        sink.send_row(&[Value::Int(i), Value::Int(i * 10)]).unwrap();
    }
    sink.flush().unwrap();

    // results: payload > 100 keeps ids 11..=199
    let schema = Schema::from_pairs(&[("id", ValueType::Int), ("payload", ValueType::Int)]);
    let rows = tap.take_rows(&schema, 189).unwrap();
    assert_eq!(rows.len(), 189);
    let mut ids: Vec<i64> = rows
        .iter()
        .map(|r| match r[0] {
            Value::Int(v) => v,
            ref other => panic!("unexpected value {other:?}"),
        })
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, (11..=199).collect::<Vec<i64>>());
    for r in &rows {
        match (&r[0], &r[1]) {
            (Value::Int(id), Value::Int(p)) => assert_eq!(*p, id * 10),
            other => panic!("unexpected row {other:?}"),
        }
    }

    // STATS reflects the run
    let stats = c.stats().unwrap();
    let query_line = stats
        .iter()
        .find(|l| l.starts_with("query hot "))
        .expect("query line in STATS");
    assert!(query_line.contains("delivered_tuples=189"), "{query_line}");
    assert!(
        stats.iter().any(|l| l.starts_with("receptor S ")),
        "{stats:?}"
    );

    // graceful shutdown from the control plane
    c.shutdown().unwrap();
    server_thread.join().unwrap();

    // the emitter stream closes after the final flush
    assert_eq!(tap.next_row(&schema).unwrap(), None);
}

#[test]
fn results_survive_between_register_and_attach() {
    // tuples ingested before any emitter attaches are buffered in the
    // query's broadcast backlog and replayed to the first subscriber
    let (addr, server_thread) = boot();
    let mut c = Client::connect(addr).unwrap();
    c.create_stream("S", "(id int, v int)").unwrap();
    c.register_query("all", "select id from [select * from S] as Z")
        .unwrap();
    let rport = c.attach_receptor("S", 0).unwrap();
    let mut sink = c.open_receptor(rport).unwrap();
    sink.send_row(&[Value::Int(7), Value::Int(1)]).unwrap();
    sink.flush().unwrap();

    // wait until the engine consumed the tuple
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = c.stats().unwrap();
        let consumed = stats
            .iter()
            .find(|l| l.starts_with("query all "))
            .map(|l| l.contains("delivered_batches=0") && l.contains("consumed=1"))
            .unwrap_or(false);
        if consumed {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "engine never consumed the tuple: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // only now attach the emitter: the backlog must replay
    let eport = c.attach_emitter("all", 0).unwrap();
    let mut tap = c.open_emitter(eport).unwrap();
    tap.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let schema = Schema::from_pairs(&[("id", ValueType::Int)]);
    assert_eq!(tap.next_row(&schema).unwrap(), Some(vec![Value::Int(7)]));

    c.shutdown().unwrap();
    server_thread.join().unwrap();
}

#[test]
fn two_clients_fan_out_same_query() {
    let (addr, server_thread) = boot();
    let mut c = Client::connect(addr).unwrap();
    c.create_stream("S", "(id int, v int)").unwrap();
    c.register_query("all", "select id from [select * from S] as Z")
        .unwrap();
    let rport = c.attach_receptor("S", 0).unwrap();
    let eport = c.attach_emitter("all", 0).unwrap();

    // a second control session sees the same server
    let mut c2 = Client::connect(addr).unwrap();
    let stats = c2.stats().unwrap();
    assert!(stats[0].contains("sessions=2"), "{}", stats[0]);

    // two subscribers on one emitter port each get every result
    let mut tap1 = c.open_emitter(eport).unwrap();
    let mut tap2 = c2.open_emitter(eport).unwrap();
    tap1.set_timeout(Some(Duration::from_secs(10))).unwrap();
    tap2.set_timeout(Some(Duration::from_secs(10))).unwrap();
    // give the emitter accept loop a moment to register both subscribers
    // before results flow (subscription later than delivery only costs
    // the backlog replay, but both-subscribed is the interesting case)
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = c.stats().unwrap();
        let ready = stats
            .iter()
            .find(|l| l.starts_with("query all "))
            .map(|l| l.contains("subscribers=2"))
            .unwrap_or(false);
        if ready {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "subscribers never registered: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut sink = c.open_receptor(rport).unwrap();
    for i in 0..50i64 {
        sink.send_row(&[Value::Int(i), Value::Int(0)]).unwrap();
    }
    sink.flush().unwrap();

    let schema = Schema::from_pairs(&[("id", ValueType::Int)]);
    let rows1 = tap1.take_rows(&schema, 50).unwrap();
    let rows2 = tap2.take_rows(&schema, 50).unwrap();
    assert_eq!(rows1.len(), 50);
    assert_eq!(rows1, rows2);

    c.shutdown().unwrap();
    server_thread.join().unwrap();
}

#[test]
fn control_plane_rejects_bad_requests() {
    let (addr, server_thread) = boot();
    let mut c = Client::connect(addr).unwrap();
    c.create_stream("S", "(id int)").unwrap();

    // duplicate stream
    let err = c.create_stream("S", "(id int)").unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
    // unknown stream/query on ATTACH
    assert!(c.attach_receptor("nosuch", 0).is_err());
    assert!(c.attach_emitter("nosuch", 0).is_err());
    // bad SQL in REGISTER
    assert!(c.register_query("broken", "selectt nonsense").is_err());
    // duplicate query name
    c.register_query("q", "select id from [select * from S] as Z")
        .unwrap();
    let err = c
        .register_query("q", "select id from [select * from S] as Z")
        .unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
    // unparseable command line
    assert!(c.request("FROBNICATE THE BASKETS").is_err());
    // the session survives all of the above
    c.ping().unwrap();

    c.shutdown().unwrap();
    server_thread.join().unwrap();
}

#[test]
fn exec_one_shot_round_trip() {
    let (addr, server_thread) = boot();
    let mut c = Client::connect(addr).unwrap();
    c.create_table("T", "(a int, b varchar)").unwrap();
    assert_eq!(c.exec("insert into T values (1, 'x'), (2, 'y')").unwrap(), Vec::<String>::new());
    let body = c.exec("select a, b from T where b = 'y'").unwrap();
    assert_eq!(body, vec!["# a|b".to_string(), "2|y".to_string()]);
    c.shutdown().unwrap();
    server_thread.join().unwrap();
}
