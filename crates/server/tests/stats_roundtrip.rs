//! Property test pinning the `STATS` wire format: `StatsReport::render`
//! followed by `StatsReport::parse` must be the identity over randomized
//! reports — every line kind, optional cluster fields, unreachable
//! shards, and the latency-summary columns included. The cluster router
//! re-emits aggregated rows through `render`, so any asymmetry between
//! the two would silently corrupt cluster `STATS`.
//!
//! The vendored proptest shim has no tuple composition, so each case
//! generates one seed and derives a whole report from it with `StdRng`.

use dcserver::stats::{
    BasketStats, EmitterStats, QueryStats, ReceptorStats, ServerStats, SessionStats, ShardStats,
    StatsReport, StreamStats,
};
use proptest::prelude::*;
use proptest::{Rng, SeedableRng, StdRng};

/// A wire-safe object name: no whitespace, no `=` (the daemons enforce
/// the same rule on CREATE/REGISTER).
fn name(rng: &mut StdRng, prefix: &str) -> String {
    format!("{prefix}{}", rng.gen_range(0u32..10_000))
}

fn addr(rng: &mut StdRng) -> String {
    format!(
        "10.0.{}.{}:{}",
        rng.gen_range(0u32..256),
        rng.gen_range(0u32..256),
        rng.gen_range(1024u32..65536)
    )
}

fn format_name(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.5) { "text" } else { "binary" }.to_string()
}

fn report(rng: &mut StdRng) -> StatsReport {
    let mut r = StatsReport {
        server: ServerStats {
            uptime_micros: rng.gen_range(0u64..1 << 40),
            sessions: rng.gen_range(0u64..100),
            queries: rng.gen_range(0u64..100),
            receptor_ports: rng.gen_range(0u64..100),
            emitter_ports: rng.gen_range(0u64..100),
            // the cluster columns are optional on the wire: rendered only
            // when nonzero, absent on single-engine daemons
            engines: rng.gen_range(0u64..4),
            streams: rng.gen_range(0u64..4),
        },
        ..StatsReport::default()
    };
    for _ in 0..rng.gen_range(0usize..4) {
        r.streams.push(StreamStats {
            name: name(rng, "s"),
            shards: rng.gen_range(1u64..8),
            key: if rng.gen_bool(0.3) {
                "-".to_string()
            } else {
                name(rng, "k")
            },
            engines: "0,1".to_string(),
        });
    }
    for _ in 0..rng.gen_range(0usize..4) {
        let persistent = rng.gen_bool(0.5);
        r.baskets.push(BasketStats {
            name: name(rng, "s"),
            len: rng.gen_range(0u64..1 << 20),
            enabled: rng.gen_bool(0.5),
            total_in: rng.gen_range(0u64..1 << 30),
            total_out: rng.gen_range(0u64..1 << 30),
            dropped: rng.gen_range(0u64..1 << 10),
            high_water: rng.gen_range(0u64..1 << 20),
            cap: rng.gen_range(0u64..1 << 20),
            pending_deletes: rng.gen_range(0u64..1 << 10),
            compactions: rng.gen_range(0u64..1 << 10),
            persistent,
            wal_bytes: rng.gen_range(0u64..1 << 30),
            segments: rng.gen_range(0u64..1 << 10),
            // rendered only on persistent baskets — a transient basket
            // must carry zero here or the roundtrip would lose it
            wal_fsync_p99_micros: if persistent {
                rng.gen_range(0u64..1 << 20)
            } else {
                0
            },
        });
    }
    for _ in 0..rng.gen_range(0usize..4) {
        r.queries.push(QueryStats {
            name: name(rng, "q"),
            firings: rng.gen_range(0u64..1 << 20),
            consumed: rng.gen_range(0u64..1 << 30),
            produced: rng.gen_range(0u64..1 << 30),
            busy_micros: rng.gen_range(0u64..1 << 40),
            lock_micros: rng.gen_range(0u64..1 << 30),
            rows_scanned: rng.gen_range(0u64..1 << 40),
            rows_out: rng.gen_range(0u64..1 << 30),
            plan_micros: rng.gen_range(0u64..1 << 20),
            delta_rows: rng.gen_range(0u64..1 << 30),
            full_reexecutes: rng.gen_range(0u64..1 << 20),
            arrangement_bytes: rng.gen_range(0u64..1 << 30),
            subscribers: rng.gen_range(0u64..16),
            delivered_batches: rng.gen_range(0u64..1 << 20),
            delivered_tuples: rng.gen_range(0u64..1 << 30),
            dropped_batches: rng.gen_range(0u64..1 << 10),
            p50_micros: rng.gen_range(0u64..1 << 20),
            p99_micros: rng.gen_range(0u64..1 << 20),
            max_micros: rng.gen_range(0u64..1 << 20),
            // cluster-only placement column: absent on single engines,
            // rendered only when non-empty — both shapes must roundtrip
            engines: if rng.gen_bool(0.5) {
                String::new()
            } else {
                "0,1".to_string()
            },
        });
    }
    for _ in 0..rng.gen_range(0usize..3) {
        r.receptors.push(ReceptorStats {
            stream: name(rng, "s"),
            port: rng.gen_range(1024u32..65536) as u16,
            format: format_name(rng),
            connections: rng.gen_range(0u64..16),
            accepted: rng.gen_range(0u64..1 << 30),
            rejected: rng.gen_range(0u64..1 << 10),
        });
    }
    for _ in 0..rng.gen_range(0usize..3) {
        r.emitters.push(EmitterStats {
            query: name(rng, "q"),
            port: rng.gen_range(1024u32..65536) as u16,
            format: format_name(rng),
            connections: rng.gen_range(0u64..16),
            coalesced_batches: rng.gen_range(0u64..1 << 20),
        });
    }
    for id in 0..rng.gen_range(0u64..4) {
        let unreachable = rng.gen_bool(0.2);
        r.shards.push(ShardStats {
            id,
            addr: addr(rng),
            // an unreachable engine reports only its address — the load
            // fields never reach the wire, so they must be zero to
            // roundtrip (matching what parse reconstructs)
            baskets_in: if unreachable {
                0
            } else {
                rng.gen_range(0u64..1 << 30)
            },
            delivered_tuples: if unreachable {
                0
            } else {
                rng.gen_range(0u64..1 << 30)
            },
            sessions: if unreachable { 0 } else { rng.gen_range(0u64..16) },
            unreachable,
            // empty = pre-replication line (keys absent on the wire);
            // "-" = replicated router, shard without a follower
            follower: match rng.gen_range(0u8..3) {
                0 => String::new(),
                1 => "-".to_string(),
                _ => addr(rng),
            },
            failovers: 0, // patched below: only renders alongside follower
        });
        if !r.shards.last().unwrap().follower.is_empty() {
            r.shards.last_mut().unwrap().failovers = rng.gen_range(0u64..8);
        }
    }
    for id in 0..rng.gen_range(0u64..3) {
        r.sessions.push(SessionStats {
            id,
            peer: addr(rng),
            commands: rng.gen_range(0u64..1 << 20),
        });
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn render_then_parse_is_identity(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let r = report(&mut rng);
        let rendered = r.render();
        let parsed = StatsReport::parse(&rendered).expect("rendered report must parse");
        prop_assert_eq!(&r, &parsed, "wire body: {:#?}", rendered);
    }

    #[test]
    fn rendered_reports_tokenize_line_by_line(seed in 0u64..u64::MAX) {
        // every rendered line must survive a parse on its own too —
        // consumers (and the router) slice report bodies apart
        let mut rng = StdRng::seed_from_u64(seed);
        let r = report(&mut rng);
        for line in r.render() {
            prop_assert!(
                StatsReport::parse(std::slice::from_ref(&line)).is_ok(),
                "line must tokenize: {line:?}"
            );
        }
    }
}
