//! Crash-recovery end-to-end: boot the real `datacelld` binary with a
//! data directory, ingest into a `PERSIST` stream over a receptor
//! socket, `kill -9` the process mid-flight, restart it on the same
//! directory, and verify that **every acknowledged batch is present** —
//! the durability contract of the WAL's log-before-ack ordering.
//!
//! Acknowledgement here is observed through `STATS`: the receptor's
//! `accepted` counter only advances after the row is appended, and for a
//! persistent stream the append logs to the WAL (under the basket lock)
//! *before* the in-memory insert. `fsync=always` makes the record
//! durable at that same point, so `accepted == K` ⇒ all K rows survive
//! any crash after the observation.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use datacell::frame::WireFormat;
use dcserver::client::Client;
use monet::prelude::*;

const POLL_DEADLINE: Duration = Duration::from_secs(30);

/// A `datacelld` child process bound to ephemeral ports.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    /// Spawn `datacelld --data-dir <dir> --fsync always` on an ephemeral
    /// control port and wait for its "control plane on" banner — printed
    /// only after recovery completes, so a successful spawn implies the
    /// manifest and WAL tails were replayed.
    fn spawn(data_dir: &Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_datacelld"))
            .args(["--listen", "127.0.0.1:0", "--fsync", "always", "--data-dir"])
            .arg(data_dir)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn datacelld");
        let stderr = child.stderr.take().expect("stderr piped");
        let mut reader = BufReader::new(stderr);
        let mut line = String::new();
        let addr = loop {
            line.clear();
            if reader.read_line(&mut line).expect("read daemon banner") == 0 {
                panic!("datacelld exited before announcing its control plane");
            }
            if let Some(addr) = line.trim().strip_prefix("datacelld: control plane on ") {
                break addr.parse::<SocketAddr>().expect("daemon address");
            }
        };
        // keep draining stderr so the daemon never blocks on the pipe
        std::thread::spawn(move || {
            let mut sink = Vec::new();
            let _ = reader.read_to_end(&mut sink);
        });
        Daemon { child, addr }
    }

    fn client(&self) -> Client {
        let mut c = Client::connect(self.addr).expect("connect control plane");
        c.set_io_timeout(Some(Duration::from_secs(10))).unwrap();
        c
    }

    /// SIGKILL — no drop handlers, no flush, the crash under test.
    fn kill_dash_nine(mut self) {
        self.child.kill().expect("kill -9 datacelld");
        self.child.wait().expect("reap datacelld");
    }

    fn shutdown(mut self) {
        let _ = self.client().shutdown();
        let _ = self.child.wait();
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dc-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Poll `STATS` until the stream's receptor has acknowledged `want` rows.
fn wait_for_acks(c: &mut Client, stream: &str, want: u64) {
    let deadline = Instant::now() + POLL_DEADLINE;
    loop {
        let stats = c.stats_report().unwrap();
        let acked = stats
            .receptors
            .iter()
            .filter(|r| r.stream == stream)
            .map(|r| r.accepted)
            .sum::<u64>();
        if acked >= want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "only {acked}/{want} rows acknowledged: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Read the stream's full contents back as sorted `id|v` wire rows —
/// an unbracketed FROM is a non-consuming snapshot read.
fn read_back(c: &mut Client, stream: &str) -> Vec<String> {
    let mut body = c
        .exec(&format!("select id, v from {stream}"))
        .expect("one-shot read-back");
    assert_eq!(body.first().map(String::as_str), Some("# id|v"), "{body:?}");
    body.remove(0);
    body.sort();
    body
}

fn expected_rows(k: i64) -> Vec<String> {
    let mut rows: Vec<String> = (0..k).map(|i| format!("{i}|{}", i * 7)).collect();
    rows.sort();
    rows
}

#[test]
fn acknowledged_text_rows_survive_kill_dash_nine() {
    const K: i64 = 500;
    let dir = temp_dir("text");

    let daemon = Daemon::spawn(&dir);
    let mut c = daemon.client();
    c.create_persistent_stream("S", "(id int, v int)").unwrap();
    let stats = c.stats_report().unwrap();
    let basket = stats.basket("S").expect("basket row");
    assert!(basket.persistent, "{basket:?}");

    let rport = c.attach_receptor("S", 0).unwrap();
    let mut sink = c.open_receptor(rport).unwrap();
    for i in 0..K {
        sink.send_row(&[Value::Int(i), Value::Int(i * 7)]).unwrap();
    }
    sink.flush().unwrap();
    wait_for_acks(&mut c, "S", K as u64);
    daemon.kill_dash_nine();

    // simulate a torn tail: a record header promising more bytes than
    // exist. Recovery must truncate it — never refuse to boot.
    let wal = dir.join("streams").join("S").join("wal.log");
    let before = std::fs::metadata(&wal).unwrap().len();
    let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
    f.write_all(&[0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01])
        .unwrap();
    drop(f);

    let daemon = Daemon::spawn(&dir);
    let mut c = daemon.client();
    assert_eq!(read_back(&mut c, "S"), expected_rows(K));
    // the torn bytes are gone from disk, not just skipped
    assert_eq!(std::fs::metadata(&wal).unwrap().len(), before);
    // the replayed stream is still live: a query registered after
    // recovery consumes the replayed rows
    c.register_query("all", "select id from [select * from S] as Z")
        .unwrap();
    let eport = c.attach_emitter("all", 0).unwrap();
    let mut tap = c.open_emitter(eport).unwrap();
    tap.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let schema = Schema::from_pairs(&[("id", ValueType::Int)]);
    let rows = tap.take_rows(&schema, K as usize).unwrap();
    assert_eq!(rows.len(), K as usize);

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn acknowledged_binary_batches_survive_kill_dash_nine_after_flush() {
    const K: i64 = 600;
    const BATCH: i64 = 100;
    let dir = temp_dir("binary");
    let schema = Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)]);

    let daemon = Daemon::spawn(&dir);
    let mut c = daemon.client();
    c.create_persistent_stream("S", "(id int, v int)").unwrap();
    let rport = c.attach_receptor_fmt("S", 0, WireFormat::Binary).unwrap();
    let mut sink = c
        .open_receptor_with(rport, WireFormat::Binary, &schema)
        .unwrap();
    for b in 0..(K / BATCH) {
        let mut rel = Relation::new(&schema);
        for i in (b * BATCH)..((b + 1) * BATCH) {
            rel.append_row(&[Value::Int(i), Value::Int(i * 7)]).unwrap();
        }
        sink.send_batch(&rel).unwrap();
    }
    sink.flush().unwrap();
    wait_for_acks(&mut c, "S", K as u64);

    // seal half the history into an immutable segment, then keep
    // ingesting: recovery must stitch segments + WAL tail together
    let sealed = c.flush_stream("S").unwrap();
    assert!(sealed > 0, "sealed {sealed} rows");
    let stats = c.stats_report().unwrap();
    let basket = stats.basket("S").expect("basket row");
    assert!(basket.segments >= 1, "{basket:?}");
    assert_eq!(basket.wal_bytes, 0, "wal truncated after seal: {basket:?}");

    let mut rel = Relation::new(&schema);
    for i in K..(K + BATCH) {
        rel.append_row(&[Value::Int(i), Value::Int(i * 7)]).unwrap();
    }
    sink.send_batch(&rel).unwrap();
    sink.flush().unwrap();
    wait_for_acks(&mut c, "S", (K + BATCH) as u64);
    daemon.kill_dash_nine();

    let daemon = Daemon::spawn(&dir);
    let mut c = daemon.client();
    // recovery restores the pre-crash shape exactly: the sealed history
    // stays in immutable segments on disk, the basket holds the WAL
    // tail (the rows ingested after the seal)
    let mut live = read_back(&mut c, "S");
    let stats = c.stats_report().unwrap();
    let basket = stats.basket("S").expect("basket row");
    assert!(basket.persistent && basket.segments >= 1, "{basket:?}");

    // segments + live basket together must hold EVERY acknowledged row
    let full_schema = Schema::from_pairs(&[
        ("id", ValueType::Int),
        ("v", ValueType::Int),
        (datacell::prelude::TS_COLUMN, ValueType::Ts),
    ]);
    let mut all = Vec::new();
    for entry in std::fs::read_dir(dir.join("streams").join("S")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("dcs") {
            continue;
        }
        let (rel, meta) = dcstore::segment::read_segment(&path, &full_schema).unwrap();
        assert_eq!(rel.len() as u64, meta.rows);
        let ids = rel.column("id").unwrap().ints().unwrap();
        let vs = rel.column("v").unwrap().ints().unwrap();
        all.extend(ids.iter().zip(vs).map(|(i, v)| format!("{i}|{v}")));
    }
    assert_eq!(all.len() as u64, sealed, "segment rows == sealed rows");
    all.append(&mut live);
    all.sort();
    assert_eq!(all, expected_rows(K + BATCH));

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
