//! Failover end-to-end against real engine processes: four `datacelld`
//! children (two shard primaries, two followers) fronted by an
//! in-process `dccluster` router, `kill -9` one primary mid-ingest, and
//! verify the promotion protocol on the wire:
//!
//! * every row that had reached the follower's disk (replication lag 0
//!   observed past the acknowledged count) is re-emitted by the
//!   re-registered standing query on the promoted follower — the
//!   multiset is exactly the killed shard's hash slice, computed
//!   independently with [`Partitioner`];
//! * fresh ingest keeps flowing end-to-end through both shards after
//!   the promotion (new connections resolve the promoted topology);
//! * `STATS`, `HEALTH`, and `METRICS` report the new topology
//!   (`follower=-`, `failovers=1`, `dc_failover_total`).
//!
//! Replication is asynchronous: the durable-ack rule for a cluster is
//! "receptor acknowledged AND `REPL STATUS` lag 0 observed at that
//! count". Rows acknowledged after the last lag-0 observation may exist
//! only on the dead primary's disk; the test's sorted-slice equality is
//! therefore asserted on the pre-kill synced prefix, while the
//! mid-ingest tail only has to keep flowing.
//!
//! Both wire formats run the same scenario — TEXT and BINARY clients
//! must see identical failover semantics.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use datacell::frame::WireFormat;
use datacell::partition::Partitioner;
use dccluster::{bind_cluster, ClusterConfig, ShardSpec};
use dcserver::client::ShardedClient;
use monet::prelude::*;

const SYNCED: i64 = 600; // rows ingested and replicated before the kill
const POLL_DEADLINE: Duration = Duration::from_secs(60);

/// A `datacelld` child process bound to an ephemeral control port.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    fn spawn(data_dir: &Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_datacelld"))
            .args(["--listen", "127.0.0.1:0", "--fsync", "always", "--data-dir"])
            .arg(data_dir)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn datacelld");
        let stderr = child.stderr.take().expect("stderr piped");
        let mut reader = BufReader::new(stderr);
        let mut line = String::new();
        let addr = loop {
            line.clear();
            if reader.read_line(&mut line).expect("read daemon banner") == 0 {
                panic!("datacelld exited before announcing its control plane");
            }
            if let Some(addr) = line.trim().strip_prefix("datacelld: control plane on ") {
                break addr.parse::<SocketAddr>().expect("daemon address");
            }
        };
        std::thread::spawn(move || {
            let mut sink = Vec::new();
            let _ = reader.read_to_end(&mut sink);
        });
        Daemon { child, addr }
    }

    /// SIGKILL — no drop handlers, no flush: the crash under test.
    fn kill_dash_nine(mut self) {
        self.child.kill().expect("kill -9 datacelld");
        self.child.wait().expect("reap datacelld");
    }

    fn reap(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dc-failover-{tag}-{}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn row_schema() -> Schema {
    Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)])
}

/// The ids in `lo..hi` that hash to partition `part` of 2 — the same
/// deterministic splitmix the router's forwarder uses.
fn ids_on_partition(lo: i64, hi: i64, part: usize) -> Vec<i64> {
    let rel = Relation::from_columns(vec![
        ("id".into(), Column::from_ints((lo..hi).collect())),
        ("v".into(), Column::from_ints((lo..hi).map(|i| i * 3).collect())),
    ])
    .unwrap();
    let p = Partitioner::new(0, 2).unwrap();
    (0..rel.len())
        .filter(|&i| p.shard_of(&rel, i).unwrap() == part)
        .map(|i| lo + i as i64)
        .collect()
}

fn run(format: WireFormat) {
    let tag = format!("{format}").to_lowercase();
    let dirs: Vec<PathBuf> = ["p0", "f0", "p1", "f1"]
        .iter()
        .map(|r| temp_dir(&format!("{tag}-{r}")))
        .collect();
    let p0 = Daemon::spawn(&dirs[0]);
    let f0 = Daemon::spawn(&dirs[1]);
    let p1 = Daemon::spawn(&dirs[2]);
    let f1 = Daemon::spawn(&dirs[3]);

    let mut config = ClusterConfig::in_process(2);
    config.shards = vec![
        ShardSpec::Remote(p0.addr.to_string()),
        ShardSpec::Remote(p1.addr.to_string()),
    ];
    config.followers = vec![
        ShardSpec::Remote(f0.addr.to_string()),
        ShardSpec::Remote(f1.addr.to_string()),
    ];
    config.repl_interval = Duration::from_millis(50);
    config.failover_misses = 2;
    config.control.connect_timeout = Duration::from_millis(500);
    config.control.backoff_base = Duration::from_millis(50);
    config.control.backoff_max = Duration::from_millis(200);
    let cluster = bind_cluster("127.0.0.1:0", config).expect("bind router");
    let addr = cluster.local_addr().unwrap();
    let rt = Arc::clone(cluster.runtime());
    let serve_thread = std::thread::spawn(move || {
        cluster.serve().expect("serve router");
    });

    let mut c = ShardedClient::connect(addr).unwrap();
    c.request("CREATE STREAM S (id int, v int) PERSIST SHARD BY (id)")
        .unwrap();
    c.register_query("all", "select id, v from [select * from S] as Z")
        .unwrap();
    let rport = c.attach_receptor_fmt("S", 0, format).unwrap();
    let eport = c.attach_emitter_fmt("all", 0, format).unwrap();
    let schema = row_schema();
    let mut tap = c.open_emitter_with(eport, format).unwrap();
    tap.set_timeout(Some(Duration::from_secs(30))).unwrap();

    // which engine serves partition 0, and which child process is it?
    let stats = c.stats_report().unwrap();
    let engines: Vec<usize> = stats.streams[0]
        .engines
        .split(',')
        .map(|e| e.parse().unwrap())
        .collect();
    let victim_eid = engines[0]; // partition 0's engine id
    let mut by_addr: BTreeMap<String, Daemon> = [p0, f0, p1, f1]
        .into_iter()
        .map(|d| (d.addr.to_string(), d))
        .collect();
    let victim_addr = stats.shards[victim_eid].addr.clone();
    let standby_addr = stats.shards[victim_eid].follower.clone();
    assert_ne!(standby_addr, "-", "{stats:?}");

    // phase 1: a synced prefix — ingest, consume the emissions, wait
    // for replication lag 0 on both shards at this count
    let mut sink = c.open_receptor_with(rport, format, &schema).unwrap();
    for i in 0..SYNCED {
        sink.send_row(&[Value::Int(i), Value::Int(i * 3)]).unwrap();
    }
    sink.flush().unwrap();
    assert_eq!(tap.take_rows(&schema, SYNCED as usize).unwrap().len(), SYNCED as usize);
    let deadline = Instant::now() + POLL_DEADLINE;
    loop {
        rt.pump_replication_now();
        let body = c.request("REPL STATUS S").unwrap();
        if body.iter().all(|l| l.contains("lag_rows=0")) {
            break;
        }
        assert!(Instant::now() < deadline, "never synced: {body:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // phase 2: keep ingesting from a background client (reconnects on
    // error — mid-kill connections die with the primary's forwarder)
    let stop = Arc::new(AtomicBool::new(false));
    let next_id = Arc::new(AtomicI64::new(SYNCED));
    let sender = {
        let (stop, next_id) = (Arc::clone(&stop), Arc::clone(&next_id));
        let schema = schema.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let attempt = (|| -> std::result::Result<(), String> {
                    let bg = ShardedClient::connect(addr).map_err(|e| e.to_string())?;
                    let mut sink = bg
                        .open_receptor_with(rport, format, &schema)
                        .map_err(|e| e.to_string())?;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..20 {
                            let id = next_id.fetch_add(1, Ordering::Relaxed);
                            sink.send_row(&[Value::Int(id), Value::Int(id * 3)])
                                .map_err(|e| e.to_string())?;
                        }
                        sink.flush().map_err(|e| e.to_string())?;
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Ok(())
                })();
                if attempt.is_err() {
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        })
    };

    // the crash: SIGKILL partition 0's primary mid-ingest, then drive
    // health polls until the router promotes its follower
    by_addr
        .remove(&victim_addr)
        .expect("victim daemon")
        .kill_dash_nine();
    let deadline = Instant::now() + POLL_DEADLINE;
    loop {
        rt.capture_metrics_now();
        let stats = c.stats_report().unwrap();
        if stats.shards[victim_eid].failovers >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "shard {victim_eid} never failed over: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    stop.store(true, Ordering::Relaxed);
    sender.join().unwrap();

    // ---- zero acknowledged loss on the synced prefix -----------------
    // the promoted follower replayed its WAL and the re-registered query
    // re-emitted the replayed rows: collect until every prefix id of the
    // killed partition reappears. Partition 1 never re-emits (its engine
    // was untouched), and mid-ingest ids >= SYNCED pass through freely.
    let expected: Vec<i64> = ids_on_partition(0, SYNCED, 0);
    assert!(!expected.is_empty(), "partition 0 must own prefix rows");
    let mut replayed: Vec<i64> = Vec::new();
    let deadline = Instant::now() + POLL_DEADLINE;
    while replayed.len() < expected.len() {
        assert!(
            Instant::now() < deadline,
            "only {}/{} prefix rows re-emitted",
            replayed.len(),
            expected.len()
        );
        match tap.next_row(&schema).unwrap() {
            Some(row) => match (&row[0], &row[1]) {
                (Value::Int(id), Value::Int(v)) if *id < SYNCED => {
                    assert_eq!(*v, id * 3, "replayed row corrupted");
                    replayed.push(*id);
                }
                (Value::Int(_), Value::Int(_)) => {} // mid-ingest tail
                other => panic!("unexpected row {other:?}"),
            },
            None => panic!("emitter stream ended mid-verification"),
        }
    }
    replayed.sort_unstable();
    assert_eq!(
        replayed, expected,
        "re-emitted prefix must be exactly the killed shard's hash slice"
    );

    // ---- fresh ingest flows through BOTH shards ----------------------
    let fresh_lo = 1_000_000;
    let fresh_hi = fresh_lo + 40;
    let mut sink2 = c.open_receptor_with(rport, format, &schema).unwrap();
    for i in fresh_lo..fresh_hi {
        sink2.send_row(&[Value::Int(i), Value::Int(i * 3)]).unwrap();
    }
    sink2.flush().unwrap();
    let mut fresh: Vec<i64> = Vec::new();
    let deadline = Instant::now() + POLL_DEADLINE;
    while fresh.len() < (fresh_hi - fresh_lo) as usize {
        assert!(
            Instant::now() < deadline,
            "only {}/{} fresh rows arrived",
            fresh.len(),
            fresh_hi - fresh_lo
        );
        match tap.next_row(&schema).unwrap() {
            Some(row) => {
                if let (Value::Int(id), Value::Int(_)) = (&row[0], &row[1]) {
                    if (fresh_lo..fresh_hi).contains(id) {
                        fresh.push(*id);
                    }
                }
            }
            None => panic!("emitter stream ended mid-verification"),
        }
    }
    fresh.sort_unstable();
    assert_eq!(fresh, (fresh_lo..fresh_hi).collect::<Vec<i64>>());
    for part in 0..2 {
        assert!(
            !ids_on_partition(fresh_lo, fresh_hi, part).is_empty(),
            "fresh batch must exercise both shards"
        );
    }

    // ---- the new topology is reported everywhere ---------------------
    let stats = c.stats_report().unwrap();
    assert_eq!(stats.shards[victim_eid].addr, standby_addr, "{stats:?}");
    assert_eq!(stats.shards[victim_eid].follower, "-", "{stats:?}");
    assert_eq!(stats.shards[victim_eid].failovers, 1, "{stats:?}");
    assert!(!stats.shards[victim_eid].unreachable, "{stats:?}");
    let health = c.health().unwrap();
    assert!(
        health[victim_eid].contains(&format!("addr={standby_addr}")),
        "{health:?}"
    );
    let samples = dctrace::parse_exposition(&c.metrics().unwrap()).unwrap();
    let failover_total = samples
        .iter()
        .find(|s| {
            s.name == "dc_failover_total" && s.labels == format!("shard=\"{victim_eid}\"")
        })
        .expect("dc_failover_total counter");
    assert!(failover_total.value >= 1.0, "{failover_total:?}");

    c.shutdown().unwrap();
    serve_thread.join().unwrap();
    drop(tap);
    // the router never shuts remote engines down — reap the survivors
    for (_, d) in by_addr {
        d.reap();
    }
    for dir in dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn kill_dash_nine_primary_mid_ingest_fails_over_text() {
    run(WireFormat::Text);
}

#[test]
fn kill_dash_nine_primary_mid_ingest_fails_over_binary() {
    run(WireFormat::Binary);
}
