//! Historical toll data for the daily-expenditure queries.
//!
//! The benchmark ships a 10-week toll history per vehicle; daily
//! expenditure requests ask for the total toll a vehicle paid on a given
//! expressway on a given past day. We synthesize that history
//! deterministically and expose it both as a lookup structure and as a
//! relational table for the catalog (so SQL queries can join against it).

use monet::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::HISTORY_DAYS;

/// Deterministic per-(vid, day, xway) historical daily toll, in cents.
/// Computed on demand — the full table for 100k vehicles × 69 days would
/// be large, and the benchmark only probes it pointwise.
pub fn daily_toll(vid: i64, day: i64, xway: i64, seed: u64) -> i64 {
    if !(1..=HISTORY_DAYS).contains(&day) {
        return 0;
    }
    // stable hash → rng → value in a plausible band (0..=2000 cents)
    let mix = (vid as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((day as u64) << 32)
        .wrapping_add(xway as u64)
        .wrapping_add(seed);
    let mut rng = StdRng::seed_from_u64(mix);
    // ~30% of vehicle-days have no travel
    if rng.gen_bool(0.3) {
        0
    } else {
        rng.gen_range(0..=2000)
    }
}

/// Materialize the history for a bounded vehicle population as a relation
/// `(vid, day, xway, toll)` — the catalog table Linear Road SQL queries
/// join against.
pub fn history_relation(max_vid: i64, days: i64, xway: i64, seed: u64) -> Relation {
    let n = (max_vid * days) as usize;
    let mut vids = Vec::with_capacity(n);
    let mut day_col = Vec::with_capacity(n);
    let mut xways = Vec::with_capacity(n);
    let mut tolls = Vec::with_capacity(n);
    for vid in 1..=max_vid {
        for day in 1..=days {
            vids.push(vid);
            day_col.push(day);
            xways.push(xway);
            tolls.push(daily_toll(vid, day, xway, seed));
        }
    }
    Relation::from_columns(vec![
        ("vid".into(), Column::from_ints(vids)),
        ("day".into(), Column::from_ints(day_col)),
        ("xway".into(), Column::from_ints(xways)),
        ("toll".into(), Column::from_ints(tolls)),
    ])
    .expect("aligned columns")
}

/// Schema of the history table.
pub fn history_schema() -> Schema {
    Schema::from_pairs(&[
        ("vid", ValueType::Int),
        ("day", ValueType::Int),
        ("xway", ValueType::Int),
        ("toll", ValueType::Int),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(daily_toll(10, 5, 0, 1), daily_toll(10, 5, 0, 1));
        assert_ne!(
            (0..50).map(|d| daily_toll(10, d + 1, 0, 1)).sum::<i64>(),
            (0..50).map(|d| daily_toll(11, d + 1, 0, 1)).sum::<i64>(),
            "different vehicles have different histories"
        );
    }

    #[test]
    fn out_of_range_days_are_zero() {
        assert_eq!(daily_toll(1, 0, 0, 1), 0);
        assert_eq!(daily_toll(1, HISTORY_DAYS + 1, 0, 1), 0);
        assert!(daily_toll(1, HISTORY_DAYS, 0, 1) >= 0);
    }

    #[test]
    fn values_in_band() {
        for vid in 1..100 {
            for day in 1..10 {
                let t = daily_toll(vid, day, 0, 7);
                assert!((0..=2000).contains(&t));
            }
        }
    }

    #[test]
    fn relation_matches_pointwise_lookup() {
        let rel = history_relation(5, 3, 0, 9);
        assert_eq!(rel.len(), 15);
        assert!(rel.schema().compatible(&history_schema()));
        for i in 0..rel.len() {
            let row = rel.row(i);
            let (vid, day, xway, toll) = (
                row[0].as_int().unwrap(),
                row[1].as_int().unwrap(),
                row[2].as_int().unwrap(),
                row[3].as_int().unwrap(),
            );
            assert_eq!(toll, daily_toll(vid, day, xway, 9));
        }
    }
}
