//! Output validation.
//!
//! The original benchmark ships a validator that recomputes expected
//! outputs from the raw input; we do the same: an independent batch
//! reference implementation (no baskets, no scheduler) recomputes accident
//! and toll ground truth, and the checks compare the network's outputs
//! against it.

use std::collections::HashMap;

use crate::driver::LrRun;
use crate::gen::Workload;
use crate::history::daily_toll;
use crate::segstats::SegStats;
use crate::toll::{toll_for_crossing, Assessment, TollAssessor};
use crate::types::*;

/// Reference results computed directly from the workload.
#[derive(Debug)]
pub struct Reference {
    pub balances: HashMap<i64, i64>,
    pub total_charged: i64,
    pub accidents_detected: usize,
    pub toll_notifications: usize,
}

/// Batch re-implementation of the benchmark semantics.
///
/// Mirrors the network's per-second phase order exactly (Q1 crossings →
/// Q2 accidents → Q3 statistics → Q4 tolls): tolls computed for a
/// crossing see the statistics of the full second-batch it arrived in,
/// just as the scheduler's round does.
pub fn reference_run(workload: &Workload) -> Reference {
    let mut stats = SegStats::new();
    let mut accidents = crate::accident::AccidentDetector::new();
    let mut assessor = TollAssessor::new();
    let mut notifications = 0usize;

    let mut i = 0usize;
    let tuples = &workload.tuples;
    while i < tuples.len() {
        // one batch = all tuples of one arrival second
        let second = tuples[i].time;
        let mut end = i;
        while end < tuples.len() && tuples[end].time == second {
            end += 1;
        }
        let batch = &tuples[i..end];
        i = end;

        // phase 1 (Q1): crossings
        let mut crossings = Vec::new();
        for t in batch.iter().filter(|t| t.kind == InputKind::Position) {
            if let Assessment::Crossed { .. } = assessor.on_report(t.vid, t.seg, t.time) {
                crossings.push(*t);
            }
        }
        // phase 2 (Q2): accidents
        for t in batch.iter().filter(|t| t.kind == InputKind::Position) {
            accidents.observe(t);
        }
        // phase 3 (Q3): statistics
        for t in batch.iter().filter(|t| t.kind == InputKind::Position) {
            stats.observe(t);
        }
        // phase 4 (Q4): tolls for this second's crossings
        for t in &crossings {
            let (toll, _lav, _acc) =
                toll_for_crossing(&stats, &accidents, t.xway, t.dir, t.seg, t.time);
            assessor.notify(t.vid, t.seg, toll, t.time);
            notifications += 1;
        }
    }
    let mut balances = HashMap::new();
    for t in &workload.tuples {
        if t.kind == InputKind::Position {
            balances.entry(t.vid).or_insert(0);
        }
    }
    for (vid, bal) in balances.iter_mut() {
        *bal = assessor.balance(*vid);
    }
    Reference {
        total_charged: assessor.total_charged(),
        balances,
        accidents_detected: accidents.accidents().len(),
        toll_notifications: notifications,
    }
}

/// One validation check.
#[derive(Debug, Clone)]
pub struct Check {
    pub name: &'static str,
    pub passed: bool,
    pub details: String,
}

/// Validation summary.
#[derive(Debug)]
pub struct ValidationReport {
    pub checks: Vec<Check>,
}

impl ValidationReport {
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            out.push_str(&format!(
                "[{}] {:<32} {}\n",
                if c.passed { "PASS" } else { "FAIL" },
                c.name,
                c.details
            ));
        }
        out
    }
}

/// Validate a run against the reference implementation and internal
/// invariants.
pub fn validate(run: &LrRun) -> ValidationReport {
    let mut checks = Vec::new();
    let reference = reference_run(&run.workload);
    let state = run.state.lock();

    // 1. Accident agreement: network detector vs reference detector.
    let net_accidents = state.accidents.accidents().len();
    checks.push(Check {
        name: "accidents_match_reference",
        passed: net_accidents == reference.accidents_detected,
        details: format!(
            "network={net_accidents} reference={}",
            reference.accidents_detected
        ),
    });

    // 2. Toll notifications: one per segment crossing.
    checks.push(Check {
        name: "one_notification_per_crossing",
        passed: run.tolls.len() == reference.toll_notifications,
        details: format!(
            "emitted={} reference crossings={}",
            run.tolls.len(),
            reference.toll_notifications
        ),
    });

    // 3. Balance oracle: Q7's relational account table vs the in-network
    //    assessor (they are maintained by independent code paths).
    let mut q7_total = 0i64;
    let mut q7_mismatch = 0usize;
    if let (Ok(vids), Ok(bals)) = (
        state.accounts.column("vid").map(|c| c.ints().unwrap().to_vec()),
        state
            .accounts
            .column("balance")
            .map(|c| c.ints().unwrap().to_vec()),
    ) {
        for (vid, bal) in vids.iter().zip(bals.iter()) {
            q7_total += bal;
            if state.assessor.balance(*vid) != *bal {
                q7_mismatch += 1;
            }
        }
    }
    checks.push(Check {
        name: "relational_balances_match_oracle",
        passed: q7_mismatch == 0,
        details: format!("mismatched accounts={q7_mismatch}"),
    });

    // 4. Conservation: sum of account balances equals total charges.
    checks.push(Check {
        name: "charge_conservation",
        passed: q7_total == state.assessor.total_charged(),
        details: format!(
            "q7 total={q7_total} oracle total={}",
            state.assessor.total_charged()
        ),
    });

    // 5. Reference balance agreement (end-to-end, independent path).
    let mut ref_mismatch = 0usize;
    for (vid, bal) in &reference.balances {
        if state.assessor.balance(*vid) != *bal {
            ref_mismatch += 1;
        }
    }
    checks.push(Check {
        name: "balances_match_reference",
        passed: ref_mismatch == 0,
        details: format!("mismatched vehicles={ref_mismatch}"),
    });

    // 6. Every balance answer matches the account state (≥ 0, vid known or
    //    zero) and every expenditure answer matches the history function.
    let mut bad_answers = 0usize;
    if let (Ok(vids), Ok(bals)) = (run.balance_answers.column("vid"), run.balance_answers.column("balance")) {
        let vids = vids.ints().unwrap();
        let bals = bals.ints().unwrap();
        for i in 0..vids.len() {
            if bals[i] < 0 || bals[i] > state.assessor.balance(vids[i]) {
                bad_answers += 1;
            }
        }
    }
    checks.push(Check {
        name: "balance_answers_sane",
        passed: bad_answers == 0,
        details: format!("bad answers={bad_answers}"),
    });

    let mut bad_exp = 0usize;
    {
        let ea = &run.expenditure_answers;
        if let (Ok(vids), Ok(exps)) = (ea.column("vid"), ea.column("expenditure")) {
            let vids = vids.ints().unwrap();
            let exps = exps.ints().unwrap();
            // recover (day, xway) from the original requests by qid
            let mut req_by_qid: HashMap<i64, (i64, i64)> = HashMap::new();
            for t in &run.workload.tuples {
                if t.kind == InputKind::DailyExpenditure {
                    req_by_qid.insert(t.qid, (t.day, t.xway));
                }
            }
            let qids = ea.column("qid").unwrap().ints().unwrap();
            for i in 0..vids.len() {
                match req_by_qid.get(&qids[i]) {
                    Some((day, xway)) => {
                        if exps[i] != daily_toll(vids[i], *day, *xway, state.history_seed) {
                            bad_exp += 1;
                        }
                    }
                    None => bad_exp += 1,
                }
            }
        }
    }
    checks.push(Check {
        name: "expenditure_answers_match_history",
        passed: bad_exp == 0,
        details: format!("bad answers={bad_exp}"),
    });

    // 7. Deadlines: per-activation processing under 5 s (Q4/Q5/Q7) and
    //    10 s (Q6), measured in wall-clock time per activation.
    for (idx, deadline_ms) in [(3usize, 5_000.0), (4, 5_000.0), (6, 5_000.0), (5, 10_000.0)] {
        let compliance = run.deadline_compliance(idx, deadline_ms);
        checks.push(Check {
            name: match idx {
                3 => "deadline_q4_5s",
                4 => "deadline_q5_5s",
                5 => "deadline_q6_10s",
                _ => "deadline_q7_5s",
            },
            passed: compliance >= 1.0,
            details: format!("compliance={compliance:.3}"),
        });
    }

    ValidationReport { checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run, DriverConfig};
    use crate::gen::GenConfig;

    fn tiny_run() -> LrRun {
        run(&DriverConfig {
            gen: GenConfig {
                scale: 0.02,
                duration_secs: 900,
                seed: 11,
                xways: 1,
                query_fraction: 0.02,
            },
            sample_every_secs: 60,
        })
    }

    #[test]
    fn full_validation_passes_on_small_run() {
        let r = tiny_run();
        let report = validate(&r);
        assert!(report.all_passed(), "\n{}", report.render());
    }

    #[test]
    fn reference_is_deterministic() {
        let r = tiny_run();
        let a = reference_run(&r.workload);
        let b = reference_run(&r.workload);
        assert_eq!(a.total_charged, b.total_charged);
        assert_eq!(a.accidents_detected, b.accidents_detected);
        assert_eq!(a.toll_notifications, b.toll_notifications);
    }

    #[test]
    fn render_contains_verdicts() {
        let r = tiny_run();
        let report = validate(&r);
        let text = report.render();
        assert!(text.contains("PASS"));
        assert!(text.contains("charge_conservation"));
    }
}
