//! Benchmark driver: event-time replay of a generated workload through the
//! DataCell query network, collecting the measurements behind Figures 7–9.
//!
//! The paper runs three wall-clock hours; we replay the same three
//! simulated hours on a virtual clock — each simulated second ingests its
//! tuple bucket and runs the scheduler to quiescence, recording how much
//! *wall* time each query collection spent. Load shapes (Figure 7), input
//! distribution (Figure 8) and response times (Figure 9) carry over.

use std::sync::Arc;
use std::time::Instant;

use datacell::clock::{VirtualClock, MICROS_PER_SEC};
use datacell::scheduler::Scheduler;
use monet::prelude::*;
use parking_lot::Mutex;

use crate::gen::{generate, GenConfig, Workload};
use crate::queries::{build_network, LrBaskets, LrState};

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    pub gen: GenConfig,
    /// Sampling window for load/response series (seconds of stream time).
    pub sample_every_secs: i64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            gen: GenConfig::default(),
            sample_every_secs: 60,
        }
    }
}

/// One sample of a collection's load within a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSample {
    /// End of the window, in stream seconds.
    pub time_sec: i64,
    /// Wall-clock execution time spent in the window (ms).
    pub busy_ms: f64,
    /// Firings in the window.
    pub firings: u64,
    /// Tuples consumed in the window.
    pub consumed: u64,
}

/// Everything a run produces.
pub struct LrRun {
    /// Per-collection load series (Figure 7): index 0..7 ↔ Q1..Q7.
    pub load: Vec<(String, Vec<LoadSample>)>,
    /// Input arrivals per second (Figure 8).
    pub arrivals: Vec<usize>,
    /// Final shared state (accounts, accidents, statistics).
    pub state: Arc<Mutex<LrState>>,
    /// Output relations.
    pub tolls: Relation,
    pub alerts: Relation,
    pub balance_answers: Relation,
    pub expenditure_answers: Relation,
    /// The workload that was replayed (ground truth for validation).
    pub workload: Workload,
    /// Total tuples ingested.
    pub total_input: usize,
    /// Wall-clock duration of the replay (seconds).
    pub wall_secs: f64,
    /// Worst per-second processing time observed (ms) — the deadline
    /// headroom measure.
    pub max_second_ms: f64,
}

impl LrRun {
    /// Q7 average response time per sample window (Figure 9's series):
    /// mean wall-clock ms per activation.
    pub fn q7_response_series(&self) -> Vec<(i64, f64)> {
        let (_, samples) = &self.load[6];
        samples
            .iter()
            .filter(|s| s.firings > 0)
            .map(|s| (s.time_sec, s.busy_ms / s.firings as f64))
            .collect()
    }

    /// Deadline compliance: fraction of sample windows whose Q-collection
    /// processing stayed under `deadline_ms` per activation.
    pub fn deadline_compliance(&self, collection: usize, deadline_ms: f64) -> f64 {
        let (_, samples) = &self.load[collection];
        let active: Vec<&LoadSample> = samples.iter().filter(|s| s.firings > 0).collect();
        if active.is_empty() {
            return 1.0;
        }
        let ok = active
            .iter()
            .filter(|s| s.busy_ms / s.firings as f64 <= deadline_ms)
            .count();
        ok as f64 / active.len() as f64
    }
}

/// Replay `cfg` through the network.
pub fn run(cfg: &DriverConfig) -> LrRun {
    let workload = generate(&cfg.gen);
    run_workload(cfg, workload)
}

/// Replay an explicit workload (used by tests with handcrafted traffic).
pub fn run_workload(cfg: &DriverConfig, workload: Workload) -> LrRun {
    let clock = Arc::new(VirtualClock::new());
    let baskets = LrBaskets::new();
    let state = Arc::new(Mutex::new(LrState::new(cfg.gen.seed)));
    let mut sched = Scheduler::new();
    for f in build_network(&baskets, Arc::clone(&state), clock.clone()) {
        sched.add(f);
    }
    let names = sched.factory_names();

    let buckets = workload.by_second(cfg.gen.duration_secs);
    let arrivals: Vec<usize> = buckets.iter().map(|b| b.len()).collect();
    let total_input: usize = arrivals.iter().sum();

    let mut load: Vec<(String, Vec<LoadSample>)> =
        names.iter().map(|n| (n.clone(), Vec::new())).collect();
    let mut prev: Vec<(u64, u64, u64)> = vec![(0, 0, 0); names.len()];

    let started = Instant::now();
    let mut max_second_ms = 0.0f64;
    for (sec, bucket) in buckets.iter().enumerate() {
        let sec = sec as i64;
        clock.set(sec * MICROS_PER_SEC + 1);
        if !bucket.is_empty() {
            let rows: Vec<Vec<Value>> = bucket.iter().map(|t| t.to_row()).collect();
            baskets
                .input
                .append_rows(&rows, clock.as_ref())
                .expect("ingest");
        }
        let sec_started = Instant::now();
        sched.run_until_quiescent(1_000).expect("scheduler");
        max_second_ms = max_second_ms.max(sec_started.elapsed().as_secs_f64() * 1e3);

        if sec % cfg.sample_every_secs == cfg.sample_every_secs - 1
            || sec == cfg.gen.duration_secs - 1
        {
            for (i, stats) in sched.stats().iter().enumerate() {
                let cur = (stats.busy_micros, stats.firings, stats.consumed);
                load[i].1.push(LoadSample {
                    time_sec: sec + 1,
                    busy_ms: (cur.0 - prev[i].0) as f64 / 1e3,
                    firings: cur.1 - prev[i].1,
                    consumed: cur.2 - prev[i].2,
                });
                prev[i] = cur;
            }
        }
    }
    let wall_secs = started.elapsed().as_secs_f64();

    LrRun {
        load,
        arrivals,
        tolls: baskets.tolls.snapshot(),
        alerts: baskets.accalerts.snapshot(),
        balance_answers: baskets.balans.snapshot(),
        expenditure_answers: baskets.expans.snapshot(),
        state,
        workload,
        total_input,
        wall_secs,
        max_second_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DriverConfig {
        DriverConfig {
            gen: GenConfig {
                scale: 0.02,
                duration_secs: 900,
                seed: 5,
                xways: 1,
                query_fraction: 0.02,
            },
            sample_every_secs: 60,
        }
    }

    #[test]
    fn replay_produces_all_output_kinds() {
        let run = run(&tiny());
        assert!(run.total_input > 500, "got {}", run.total_input);
        assert!(!run.tolls.is_empty(), "toll notifications emitted");
        assert!(!run.balance_answers.is_empty(), "balance answers emitted");
        assert!(
            !run.expenditure_answers.is_empty(),
            "expenditure answers emitted"
        );
        assert_eq!(run.load.len(), 7);
        assert_eq!(run.load[0].0, "Q1");
        assert_eq!(run.load[6].0, "Q7");
    }

    #[test]
    fn arrivals_match_workload() {
        let run = run(&tiny());
        let sum: usize = run.arrivals.iter().sum();
        assert_eq!(sum, run.total_input);
        assert_eq!(sum, run.workload.tuples.len());
    }

    #[test]
    fn load_samples_cover_the_run() {
        let cfg = tiny();
        let run = run(&cfg);
        for (name, samples) in &run.load {
            assert!(
                !samples.is_empty(),
                "collection {name} must have load samples"
            );
            // windows are ordered and within the duration
            assert!(samples.windows(2).all(|w| w[0].time_sec < w[1].time_sec));
            assert!(samples.last().unwrap().time_sec <= cfg.gen.duration_secs);
        }
        // Q1 consumed every input tuple
        let q1_total: u64 = run.load[0].1.iter().map(|s| s.consumed).sum();
        assert_eq!(q1_total as usize, run.total_input);
    }

    #[test]
    fn q7_response_series_nonempty() {
        let run = run(&tiny());
        let series = run.q7_response_series();
        assert!(!series.is_empty());
        assert!(series.iter().all(|(_, ms)| *ms >= 0.0));
    }

    #[test]
    fn deadline_compliance_is_a_fraction() {
        let run = run(&tiny());
        for c in 0..7 {
            let f = run.deadline_compliance(c, 5_000.0);
            assert!((0.0..=1.0).contains(&f));
        }
        // with a generous deadline everything complies
        assert_eq!(run.deadline_compliance(6, 60_000.0), 1.0);
    }
}
