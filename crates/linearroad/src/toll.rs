//! Toll model: per-(segment, minute) toll computation and per-vehicle
//! account bookkeeping.
//!
//! The benchmark's rule: when a car reports from a new segment it is
//! *charged* the toll it was last notified of, and is *notified* of the
//! toll for its new segment: `2·(cars − 50)²` cents unless the segment's
//! LAV ≥ 40 mph, fewer than 50 cars used it in the previous minute, or an
//! accident within 4 downstream segments makes it toll-free.

use std::collections::HashMap;

use crate::accident::AccidentDetector;
use crate::segstats::{SegKey, SegStats};
use crate::types::{minute_of, LAV_FREE_SPEED, TOLL_FREE_CARS};

/// Toll for a segment at a given minute, from the statistics of preceding
/// minutes. `accident_nearby` marks the accident exemption.
pub fn compute_toll(
    stats: &SegStats,
    key: SegKey,
    minute: i64,
    accident_nearby: bool,
) -> (i64, i64) {
    let lav = stats.lav(key, minute).unwrap_or(0.0);
    let cars = stats.cars(key, minute - 1);
    let toll = if accident_nearby
        || lav >= LAV_FREE_SPEED as f64
        || cars <= TOLL_FREE_CARS
    {
        0
    } else {
        2 * (cars - TOLL_FREE_CARS) * (cars - TOLL_FREE_CARS)
    };
    (toll, lav.round() as i64)
}

/// Per-vehicle account state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Account {
    /// Total charged so far (cents).
    pub balance: i64,
    /// Toll last notified but not yet charged, with its segment.
    pub pending: Option<(i64, i64)>, // (seg, toll)
    /// Last segment the car reported from.
    pub last_seg: Option<i64>,
    /// Time of the last charge or notification.
    pub updated_at: i64,
}

/// Account table plus the charge-on-segment-crossing rule.
#[derive(Debug, Default)]
pub struct TollAssessor {
    accounts: HashMap<i64, Account>,
}

/// What happened when a position report hit the assessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assessment {
    /// Same segment as before — nothing due.
    SameSegment,
    /// New segment: `charged` was debited (0 if none pending) and the
    /// caller should notify the car of the new segment's toll.
    Crossed { charged: i64 },
}

impl TollAssessor {
    pub fn new() -> Self {
        TollAssessor::default()
    }

    /// Process a position report for `vid` now in `seg`.
    pub fn on_report(&mut self, vid: i64, seg: i64, time: i64) -> Assessment {
        let acct = self.accounts.entry(vid).or_default();
        if acct.last_seg == Some(seg) {
            return Assessment::SameSegment;
        }
        let charged = match acct.pending.take() {
            Some((pseg, toll)) if pseg != seg => {
                // left the segment it was notified about: charge
                acct.balance += toll;
                toll
            }
            other => {
                acct.pending = other;
                0
            }
        };
        acct.last_seg = Some(seg);
        acct.updated_at = time;
        Assessment::Crossed { charged }
    }

    /// Record the toll notification sent to the car for its current
    /// segment (charged when it leaves that segment).
    pub fn notify(&mut self, vid: i64, seg: i64, toll: i64, time: i64) {
        let acct = self.accounts.entry(vid).or_default();
        acct.pending = Some((seg, toll));
        acct.updated_at = time;
    }

    /// Current balance (0 for unknown vehicles, as in the benchmark).
    pub fn balance(&self, vid: i64) -> i64 {
        self.accounts.get(&vid).map_or(0, |a| a.balance)
    }

    pub fn account(&self, vid: i64) -> Option<&Account> {
        self.accounts.get(&vid)
    }

    pub fn num_accounts(&self) -> usize {
        self.accounts.len()
    }

    /// Sum of all balances (validation invariant: equals total charges).
    pub fn total_charged(&self) -> i64 {
        self.accounts.values().map(|a| a.balance).sum()
    }
}

/// Convenience: full toll decision for a crossing car.
#[allow(clippy::too_many_arguments)]
pub fn toll_for_crossing(
    stats: &SegStats,
    accidents: &AccidentDetector,
    xway: i64,
    dir: i64,
    seg: i64,
    time: i64,
) -> (i64, i64, Option<i64>) {
    let accident = accidents.affecting(xway, dir, seg, time);
    let (toll, lav) = compute_toll(
        stats,
        SegKey { xway, dir, seg },
        minute_of(time),
        accident.is_some(),
    );
    (toll, lav, accident.map(|a| a.seg()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{InputTuple, SEGMENT_FEET};

    fn stats_with_congestion(seg: i64, minute: i64, cars: i64, spd: i64) -> SegStats {
        let mut s = SegStats::new();
        for vid in 0..cars {
            // one report per car in `minute`, plus speed history for LAV
            s.observe(&InputTuple::position(
                (minute - 1) * 60,
                vid,
                spd,
                0,
                1,
                0,
                seg * SEGMENT_FEET,
            ));
        }
        s
    }

    fn key(seg: i64) -> SegKey {
        SegKey { xway: 0, dir: 0, seg }
    }

    #[test]
    fn toll_formula() {
        // 60 cars in the previous minute at 30 mph → LAV 30 < 40 →
        // toll = 2*(60-50)^2 = 200
        let s = stats_with_congestion(4, 5, 60, 30);
        let (toll, lav) = compute_toll(&s, key(4), 6, false);
        assert_eq!(toll, 200);
        assert_eq!(lav, 30);
    }

    #[test]
    fn fast_roads_are_free() {
        let s = stats_with_congestion(4, 5, 60, 80);
        let (toll, lav) = compute_toll(&s, key(4), 6, false);
        assert_eq!(toll, 0, "LAV ≥ 40 → free");
        assert_eq!(lav, 80);
    }

    #[test]
    fn light_traffic_is_free() {
        let s = stats_with_congestion(4, 5, 50, 20);
        let (toll, _) = compute_toll(&s, key(4), 6, false);
        assert_eq!(toll, 0, "≤ 50 cars → free");
        let s = stats_with_congestion(4, 5, 51, 20);
        let (toll, _) = compute_toll(&s, key(4), 6, false);
        assert_eq!(toll, 2);
    }

    #[test]
    fn accident_exempts() {
        let s = stats_with_congestion(4, 5, 60, 20);
        let (toll, _) = compute_toll(&s, key(4), 6, true);
        assert_eq!(toll, 0);
    }

    #[test]
    fn no_history_means_free() {
        let s = SegStats::new();
        let (toll, lav) = compute_toll(&s, key(1), 10, false);
        assert_eq!(toll, 0);
        assert_eq!(lav, 0);
    }

    #[test]
    fn charge_on_crossing_only() {
        let mut a = TollAssessor::new();
        // first report: segment 3 — a "crossing" into the system
        assert_eq!(a.on_report(7, 3, 0), Assessment::Crossed { charged: 0 });
        a.notify(7, 3, 150, 0);
        // staying in segment 3: nothing happens
        assert_eq!(a.on_report(7, 3, 30), Assessment::SameSegment);
        assert_eq!(a.balance(7), 0);
        // crossing into segment 4: the pending 150 is charged
        assert_eq!(a.on_report(7, 4, 60), Assessment::Crossed { charged: 150 });
        assert_eq!(a.balance(7), 150);
        // crossing again with no new notification: nothing further
        assert_eq!(a.on_report(7, 5, 90), Assessment::Crossed { charged: 0 });
        assert_eq!(a.balance(7), 150);
    }

    #[test]
    fn multiple_vehicles_tracked_independently() {
        let mut a = TollAssessor::new();
        a.on_report(1, 0, 0);
        a.notify(1, 0, 10, 0);
        a.on_report(2, 0, 0);
        a.notify(2, 0, 20, 0);
        a.on_report(1, 1, 30);
        assert_eq!(a.balance(1), 10);
        assert_eq!(a.balance(2), 0);
        assert_eq!(a.total_charged(), 10);
        assert_eq!(a.num_accounts(), 2);
        assert_eq!(a.balance(99), 0, "unknown vid → zero balance");
    }

    #[test]
    fn toll_for_crossing_includes_accident_segment() {
        use crate::accident::AccidentDetector;
        use crate::types::{REPORT_INTERVAL_SECS, STOPPED_REPORTS};
        let mut d = AccidentDetector::new();
        for vid in [100, 101] {
            for i in 0..STOPPED_REPORTS as i64 {
                d.observe(&InputTuple::position(
                    i * REPORT_INTERVAL_SECS,
                    vid,
                    0,
                    0,
                    1,
                    0,
                    6 * SEGMENT_FEET,
                ));
            }
        }
        let s = stats_with_congestion(4, 5, 80, 10);
        let (toll, _, acc_seg) = toll_for_crossing(&s, &d, 0, 0, 4, 300);
        assert_eq!(toll, 0, "accident two segments ahead exempts");
        assert_eq!(acc_seg, Some(6));
    }
}
