//! Traffic generator.
//!
//! Synthesizes the benchmark's three-hour workload: cars entering
//! expressways at a ramping rate (Figure 8's shape — tens of tuples/sec at
//! the start, ~1700·SF tuples/sec at the end), position reports every 30 s,
//! forced accidents whose frequency grows after the first hour, and a 1%
//! sprinkle of historical queries. Deterministic per seed.
//!
//! Substitution note (DESIGN.md): the original MIT traffic simulator is
//! closed and its data files unavailable; this generator reproduces the
//! *load shape* (ramp, accident schedule, report cadence, query mix) that
//! the paper's evaluation depends on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::*;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Scale factor: 1.0 ≈ the paper's SF 1 (≈1.2·10⁷ tuples over 3 h).
    pub scale: f64,
    /// Simulated duration in seconds (the benchmark runs 10800).
    pub duration_secs: i64,
    /// RNG seed.
    pub seed: u64,
    /// Number of expressways.
    pub xways: i64,
    /// Fraction of position reports shadowed by historical queries.
    pub query_fraction: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            scale: 1.0,
            duration_secs: 10_800,
            seed: 42,
            xways: 1,
            query_fraction: 0.01,
        }
    }
}

impl GenConfig {
    pub fn with_scale(scale: f64) -> Self {
        GenConfig {
            scale,
            ..GenConfig::default()
        }
    }

    /// Cars entering per second at simulation time `t` — linear ramp whose
    /// integral over 3 h yields ≈ 10⁶·SF journeys ≈ 10⁷·SF reports, with
    /// ≈ 51k·SF active cars (1700·SF reports/s) at the end, like Figure 8.
    fn entry_rate(&self, t: i64) -> f64 {
        let progress = t as f64 / self.duration_secs.max(1) as f64;
        let base = 0.6 * self.scale;
        let peak = 170.0 * self.scale;
        base + (peak - base) * progress
    }
}

#[derive(Debug, Clone)]
struct Car {
    vid: i64,
    xway: i64,
    dir: i64,
    lane: i64,
    /// feet from expressway start (direction-normalized)
    pos: i64,
    /// mph
    spd: i64,
    /// seconds until exit
    remaining: i64,
    /// offset within the 30 s report cycle
    phase: i64,
    /// Some(until): car is stopped until that time (accident member)
    stopped_until: Option<i64>,
}

/// One scheduled accident: two cars stopped at a shared location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccidentPlan {
    pub start: i64,
    pub clear: i64,
    pub xway: i64,
    pub dir: i64,
    pub lane: i64,
    pub pos: i64,
    pub vid1: i64,
    pub vid2: i64,
}

/// The generated workload.
#[derive(Debug)]
pub struct Workload {
    /// Tuples in non-decreasing time order.
    pub tuples: Vec<InputTuple>,
    /// Ground-truth accident schedule (for validation).
    pub accidents: Vec<AccidentPlan>,
}

impl Workload {
    /// Tuples bucketed by second (index = second).
    pub fn by_second(&self, duration_secs: i64) -> Vec<Vec<InputTuple>> {
        let mut buckets = vec![Vec::new(); duration_secs as usize + 1];
        for t in &self.tuples {
            let s = (t.time.max(0) as usize).min(duration_secs as usize);
            buckets[s].push(*t);
        }
        buckets
    }

    /// Arrival counts per second (Figure 8's series).
    pub fn arrivals_per_second(&self, duration_secs: i64) -> Vec<usize> {
        self.by_second(duration_secs)
            .iter()
            .map(|b| b.len())
            .collect()
    }
}

/// Generate a workload.
pub fn generate(cfg: &GenConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut cars: Vec<Car> = Vec::new();
    let mut tuples: Vec<InputTuple> = Vec::new();
    let mut accidents: Vec<AccidentPlan> = Vec::new();
    let mut next_vid: i64 = 1;
    let mut next_qid: i64 = 1;
    let mut entry_debt = 0.0f64;
    let mut next_accident_check = 300i64; // first possible accident at 5 min

    for t in 0..cfg.duration_secs {
        // --- car arrivals -------------------------------------------------
        entry_debt += cfg.entry_rate(t);
        while entry_debt >= 1.0 {
            entry_debt -= 1.0;
            let dir = rng.gen_range(0..2i64);
            let spd = rng.gen_range(40..=100i64);
            cars.push(Car {
                vid: next_vid,
                xway: rng.gen_range(0..cfg.xways.max(1)),
                dir,
                lane: rng.gen_range(1..NUM_LANES - 1),
                pos: rng.gen_range(0..NUM_SEGMENTS / 2) * SEGMENT_FEET,
                spd,
                remaining: rng.gen_range(4i64..=18) * REPORT_INTERVAL_SECS,
                phase: t % REPORT_INTERVAL_SECS,
                stopped_until: None,
            });
            next_vid += 1;
        }

        // --- accident scheduling (frequency grows after the first hour) ---
        if t >= next_accident_check {
            let hourly = if t < 3600 { 2.0 } else { 2.0 + 6.0 * ((t - 3600) as f64 / 7200.0) };
            let gap = (3600.0 / hourly.max(0.1)) as i64;
            next_accident_check = t + gap.max(60);
            if cars.len() >= 2 {
                // pick a victim car and plant a second one at its position
                let i = rng.gen_range(0..cars.len());
                let (xway, dir, lane, pos) =
                    (cars[i].xway, cars[i].dir, cars[i].lane, cars[i].pos);
                let clear = t + rng.gen_range(5i64..=15) * 60;
                let vid1 = cars[i].vid;
                cars[i].stopped_until = Some(clear);
                cars[i].spd = 0;
                let vid2 = next_vid;
                next_vid += 1;
                cars.push(Car {
                    vid: vid2,
                    xway,
                    dir,
                    lane,
                    pos,
                    spd: 0,
                    remaining: (clear - t) + 4 * REPORT_INTERVAL_SECS,
                    phase: t % REPORT_INTERVAL_SECS,
                    stopped_until: Some(clear),
                });
                accidents.push(AccidentPlan {
                    start: t,
                    clear,
                    xway,
                    dir,
                    lane,
                    pos,
                    vid1,
                    vid2,
                });
            }
        }

        // --- congestion: per-segment densities drive speeds ---------------
        // real traffic slows down as segments fill; this is what produces
        // sub-40 LAVs and therefore tolls
        let mut density: std::collections::HashMap<(i64, i64, i64), i64> =
            std::collections::HashMap::new();
        for car in &cars {
            *density
                .entry((car.xway, car.dir, car.pos / SEGMENT_FEET))
                .or_insert(0) += 1;
        }

        // --- position reports & movement ---------------------------------
        let mut exited: Vec<usize> = Vec::new();
        for (i, car) in cars.iter_mut().enumerate() {
            if t % REPORT_INTERVAL_SECS == car.phase {
                if car.stopped_until.is_none() {
                    let local = density
                        .get(&(car.xway, car.dir, car.pos / SEGMENT_FEET))
                        .copied()
                        .unwrap_or(0);
                    // free flow ~90 mph, congestion collapse past ~50 cars
                    let target = (90 - local).clamp(12, 90);
                    car.spd = (target + rng.gen_range(-8i64..=8)).clamp(5, 100);
                }
                tuples.push(InputTuple::position(
                    t, car.vid, car.spd, car.xway, car.lane, car.dir, car.pos,
                ));
                // historical queries shadow a fraction of reports
                if rng.gen_bool(cfg.query_fraction) {
                    let q = if rng.gen_bool(0.5) {
                        InputTuple::balance_request(t, car.vid, next_qid)
                    } else {
                        InputTuple::expenditure_request(
                            t,
                            car.vid,
                            next_qid,
                            car.xway,
                            rng.gen_range(1..=HISTORY_DAYS),
                        )
                    };
                    next_qid += 1;
                    tuples.push(q);
                }
            }
            // movement (feet per second = mph * 5280/3600 ≈ mph * 1.4667)
            match car.stopped_until {
                Some(until) if t < until => { /* stopped */ }
                Some(_) => {
                    car.stopped_until = None;
                    car.spd = rng.gen_range(40..=80);
                }
                None => {
                    car.pos += (car.spd as f64 * 1.4667) as i64;
                }
            }
            car.remaining -= 1;
            if car.remaining <= 0 || car.pos >= NUM_SEGMENTS * SEGMENT_FEET {
                exited.push(i);
            }
        }
        for &i in exited.iter().rev() {
            cars.swap_remove(i);
        }
    }
    Workload { tuples, accidents }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GenConfig {
        GenConfig {
            scale: 0.02,
            duration_secs: 600,
            seed: 7,
            xways: 1,
            query_fraction: 0.01,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.tuples, b.tuples);
        assert_eq!(a.accidents, b.accidents);
        let c = generate(&GenConfig {
            seed: 8,
            ..small()
        });
        assert_ne!(a.tuples, c.tuples);
    }

    #[test]
    fn time_ordered_and_typed() {
        let w = generate(&small());
        assert!(!w.tuples.is_empty());
        assert!(w.tuples.windows(2).all(|p| p[0].time <= p[1].time));
        assert!(w
            .tuples
            .iter()
            .all(|t| matches!(t.kind, InputKind::Position | InputKind::AccountBalance | InputKind::DailyExpenditure)));
    }

    #[test]
    fn rate_ramps_up() {
        let cfg = GenConfig {
            scale: 0.05,
            duration_secs: 1200,
            ..small()
        };
        let w = generate(&cfg);
        let rates = w.arrivals_per_second(cfg.duration_secs);
        let early: usize = rates[60..240].iter().sum();
        let late: usize = rates[960..1140].iter().sum();
        assert!(
            late > early * 2,
            "arrival rate must ramp: early={early} late={late}"
        );
    }

    #[test]
    fn reports_every_thirty_seconds_per_car() {
        let w = generate(&small());
        use std::collections::HashMap;
        let mut per_car: HashMap<i64, Vec<i64>> = HashMap::new();
        for t in w.tuples.iter().filter(|t| t.kind == InputKind::Position) {
            per_car.entry(t.vid).or_default().push(t.time);
        }
        let mut checked = 0;
        for times in per_car.values() {
            for pair in times.windows(2) {
                assert_eq!(pair[1] - pair[0], REPORT_INTERVAL_SECS, "cadence");
                checked += 1;
            }
        }
        assert!(checked > 50, "enough cadence pairs checked");
    }

    #[test]
    fn accidents_have_two_stopped_cars_reporting_same_position() {
        let cfg = GenConfig {
            scale: 0.05,
            duration_secs: 1800,
            seed: 3,
            xways: 1,
            query_fraction: 0.0,
        };
        let w = generate(&cfg);
        assert!(!w.accidents.is_empty());
        let acc = w.accidents[0];
        // both cars must emit ≥ STOPPED_REPORTS reports at the shared pos
        for vid in [acc.vid1, acc.vid2] {
            let same_pos = w
                .tuples
                .iter()
                .filter(|t| {
                    t.kind == InputKind::Position
                        && t.vid == vid
                        && t.pos == acc.pos
                        && t.time >= acc.start
                        && t.time <= acc.clear
                })
                .count();
            assert!(
                same_pos >= STOPPED_REPORTS,
                "vid {vid} reported {same_pos} times at accident position"
            );
        }
    }

    #[test]
    fn query_fraction_respected_roughly() {
        let cfg = GenConfig {
            scale: 0.05,
            duration_secs: 1200,
            seed: 9,
            xways: 1,
            query_fraction: 0.05,
        };
        let w = generate(&cfg);
        let positions = w
            .tuples
            .iter()
            .filter(|t| t.kind == InputKind::Position)
            .count() as f64;
        let queries = w.tuples.len() as f64 - positions;
        let ratio = queries / positions;
        assert!(
            (0.02..0.1).contains(&ratio),
            "query ratio {ratio} out of expected band"
        );
    }

    #[test]
    fn scale_controls_volume() {
        let lo = generate(&GenConfig {
            scale: 0.01,
            duration_secs: 600,
            ..small()
        });
        let hi = generate(&GenConfig {
            scale: 0.04,
            duration_secs: 600,
            ..small()
        });
        assert!(
            hi.tuples.len() > lo.tuples.len() * 2,
            "lo={} hi={}",
            lo.tuples.len(),
            hi.tuples.len()
        );
    }
}
