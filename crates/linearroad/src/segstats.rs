//! Per-segment, per-minute traffic statistics: average speeds, car counts
//! and the 5-minute Latest Average Velocity (LAV) that drives tolls.

use std::collections::HashMap;

use crate::types::{minute_of, InputKind, InputTuple};

/// Key of a statistics cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegKey {
    pub xway: i64,
    pub dir: i64,
    pub seg: i64,
}

/// Accumulated statistics for one (segment, minute).
#[derive(Debug, Clone, Default)]
struct MinuteCell {
    speed_sum: i64,
    reports: i64,
    cars: std::collections::HashSet<i64>,
}

/// Rolling statistics store.
#[derive(Debug, Default)]
pub struct SegStats {
    /// (key, minute) → cell
    cells: HashMap<(SegKey, i64), MinuteCell>,
}

/// Minutes of history folded into the LAV.
pub const LAV_WINDOW_MINS: i64 = 5;

impl SegStats {
    pub fn new() -> Self {
        SegStats::default()
    }

    /// Fold one position report into the current minute.
    pub fn observe(&mut self, t: &InputTuple) {
        debug_assert_eq!(t.kind, InputKind::Position);
        let key = SegKey {
            xway: t.xway,
            dir: t.dir,
            seg: t.seg,
        };
        let cell = self.cells.entry((key, minute_of(t.time))).or_default();
        cell.speed_sum += t.spd;
        cell.reports += 1;
        cell.cars.insert(t.vid);
    }

    /// Average speed observed in `minute` (None if no traffic).
    pub fn avg_speed(&self, key: SegKey, minute: i64) -> Option<f64> {
        self.cells
            .get(&(key, minute))
            .filter(|c| c.reports > 0)
            .map(|c| c.speed_sum as f64 / c.reports as f64)
    }

    /// Distinct cars observed in `minute`.
    pub fn cars(&self, key: SegKey, minute: i64) -> i64 {
        self.cells
            .get(&(key, minute))
            .map_or(0, |c| c.cars.len() as i64)
    }

    /// Latest Average Velocity for `minute`: the mean of the available
    /// per-minute averages over the previous [`LAV_WINDOW_MINS`] minutes.
    pub fn lav(&self, key: SegKey, minute: i64) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0;
        for m in (minute - LAV_WINDOW_MINS).max(1)..minute {
            if let Some(v) = self.avg_speed(key, m) {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Drop all cells older than `minute - keep_mins` (basket-style
    /// garbage collection so the store doesn't grow with the run).
    pub fn evict_before(&mut self, minute: i64, keep_mins: i64) {
        let cutoff = minute - keep_mins;
        self.cells.retain(|(_, m), _| *m >= cutoff);
    }

    /// Number of live cells (diagnostics).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SEGMENT_FEET;

    fn report(time: i64, vid: i64, spd: i64, seg: i64) -> InputTuple {
        InputTuple::position(time, vid, spd, 0, 1, 0, seg * SEGMENT_FEET)
    }

    fn key(seg: i64) -> SegKey {
        SegKey {
            xway: 0,
            dir: 0,
            seg,
        }
    }

    #[test]
    fn minute_averages() {
        let mut s = SegStats::new();
        s.observe(&report(0, 1, 50, 3));
        s.observe(&report(30, 1, 60, 3));
        s.observe(&report(10, 2, 40, 3));
        assert_eq!(s.avg_speed(key(3), 1), Some(50.0));
        assert_eq!(s.cars(key(3), 1), 2);
        assert_eq!(s.avg_speed(key(3), 2), None);
        assert_eq!(s.avg_speed(key(9), 1), None);
    }

    #[test]
    fn lav_over_five_minutes() {
        let mut s = SegStats::new();
        // minutes 1..=5 with speeds 10,20,30,40,50
        for m in 0..5i64 {
            s.observe(&report(m * 60, 1, (m + 1) * 10, 2));
        }
        // LAV for minute 6 = mean(10..50) = 30
        assert_eq!(s.lav(key(2), 6), Some(30.0));
        // LAV for minute 3 = mean(min1,min2) = 15
        assert_eq!(s.lav(key(2), 3), Some(15.0));
        // LAV with no history
        assert_eq!(s.lav(key(2), 1), None);
    }

    #[test]
    fn lav_skips_empty_minutes() {
        let mut s = SegStats::new();
        s.observe(&report(0, 1, 30, 1)); // minute 1
        s.observe(&report(180, 1, 60, 1)); // minute 4
        assert_eq!(s.lav(key(1), 5), Some(45.0), "only minutes with traffic count");
    }

    #[test]
    fn eviction_keeps_recent() {
        let mut s = SegStats::new();
        for m in 0..30i64 {
            s.observe(&report(m * 60, 1, 50, 1));
        }
        assert_eq!(s.len(), 30);
        s.evict_before(31, 10);
        assert_eq!(s.len(), 10);
        assert!(s.avg_speed(key(1), 30).is_some());
        assert!(s.avg_speed(key(1), 20).is_none());
    }

    #[test]
    fn distinct_cars_counted_once() {
        let mut s = SegStats::new();
        for _ in 0..5 {
            s.observe(&report(1, 7, 50, 0));
        }
        assert_eq!(s.cars(key(0), 1), 1);
    }
}
