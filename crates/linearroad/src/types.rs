//! Linear Road tuple types and schemas.
//!
//! The benchmark models `L` expressways, each with 100 one-mile segments,
//! travel in two directions over multiple lanes. Cars emit a position
//! report every 30 seconds; a small fraction of input tuples are
//! historical queries (account balance, daily expenditure).

use monet::prelude::*;

/// Seconds between consecutive position reports of one car.
pub const REPORT_INTERVAL_SECS: i64 = 30;
/// Segments per expressway.
pub const NUM_SEGMENTS: i64 = 100;
/// Feet per segment (LR uses 1-mile segments).
pub const SEGMENT_FEET: i64 = 5280;
/// Travel lanes per direction (lane 0 = entry ramp, 4 = exit ramp).
pub const NUM_LANES: i64 = 5;
/// Consecutive identical reports that mark a car as stopped.
pub const STOPPED_REPORTS: usize = 4;
/// Minutes an accident blocks its segment after clearing starts.
pub const ACCIDENT_CLEAR_MINS: i64 = 20;
/// Downstream segments warned of an accident.
pub const ACCIDENT_WARN_SEGS: i64 = 4;
/// LAV threshold (mph) above which no toll is charged.
pub const LAV_FREE_SPEED: i64 = 40;
/// Car-count threshold below which no toll is charged.
pub const TOLL_FREE_CARS: i64 = 50;
/// Days of toll history kept for daily-expenditure queries.
pub const HISTORY_DAYS: i64 = 69;
/// Response deadline for toll/accident/balance answers (seconds).
pub const DEADLINE_SECS: i64 = 5;
/// Response deadline for daily-expenditure answers (seconds).
pub const DEADLINE_DAILY_SECS: i64 = 10;

/// Input tuple kinds (the `type` attribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// Type 0: position report.
    Position,
    /// Type 2: account balance request.
    AccountBalance,
    /// Type 3: daily expenditure request.
    DailyExpenditure,
}

impl InputKind {
    pub fn code(self) -> i64 {
        match self {
            InputKind::Position => 0,
            InputKind::AccountBalance => 2,
            InputKind::DailyExpenditure => 3,
        }
    }

    pub fn from_code(c: i64) -> Option<InputKind> {
        match c {
            0 => Some(InputKind::Position),
            2 => Some(InputKind::AccountBalance),
            3 => Some(InputKind::DailyExpenditure),
            _ => None,
        }
    }
}

/// One input tuple (union layout, unused fields are -1, as in the
/// benchmark's flat file format).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputTuple {
    pub kind: InputKind,
    /// Seconds since the start of the simulation.
    pub time: i64,
    pub vid: i64,
    /// Speed in mph (position reports).
    pub spd: i64,
    pub xway: i64,
    pub lane: i64,
    /// 0 = eastbound, 1 = westbound.
    pub dir: i64,
    pub seg: i64,
    /// Absolute position in feet from the expressway start.
    pub pos: i64,
    /// Query id (historical requests).
    pub qid: i64,
    /// Day (daily expenditure: 1 = yesterday … 69).
    pub day: i64,
}

impl InputTuple {
    pub fn position(time: i64, vid: i64, spd: i64, xway: i64, lane: i64, dir: i64, pos: i64) -> Self {
        InputTuple {
            kind: InputKind::Position,
            time,
            vid,
            spd,
            xway,
            lane,
            dir,
            seg: pos / SEGMENT_FEET,
            pos,
            qid: -1,
            day: -1,
        }
    }

    pub fn balance_request(time: i64, vid: i64, qid: i64) -> Self {
        InputTuple {
            kind: InputKind::AccountBalance,
            time,
            vid,
            spd: -1,
            xway: -1,
            lane: -1,
            dir: -1,
            seg: -1,
            pos: -1,
            qid,
            day: -1,
        }
    }

    pub fn expenditure_request(time: i64, vid: i64, qid: i64, xway: i64, day: i64) -> Self {
        InputTuple {
            kind: InputKind::DailyExpenditure,
            time,
            vid,
            spd: -1,
            xway,
            lane: -1,
            dir: -1,
            seg: -1,
            pos: -1,
            qid,
            day,
        }
    }

    /// Row in [`input_schema`] order.
    pub fn to_row(&self) -> Vec<Value> {
        vec![
            Value::Int(self.kind.code()),
            Value::Int(self.time),
            Value::Int(self.vid),
            Value::Int(self.spd),
            Value::Int(self.xway),
            Value::Int(self.lane),
            Value::Int(self.dir),
            Value::Int(self.seg),
            Value::Int(self.pos),
            Value::Int(self.qid),
            Value::Int(self.day),
        ]
    }
}

/// Schema of the input stream.
pub fn input_schema() -> Schema {
    Schema::from_pairs(&[
        ("type", ValueType::Int),
        ("time", ValueType::Int),
        ("vid", ValueType::Int),
        ("spd", ValueType::Int),
        ("xway", ValueType::Int),
        ("lane", ValueType::Int),
        ("dir", ValueType::Int),
        ("seg", ValueType::Int),
        ("pos", ValueType::Int),
        ("qid", ValueType::Int),
        ("day", ValueType::Int),
    ])
}

/// Output: toll notification (benchmark type 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TollNotification {
    pub vid: i64,
    /// Input time that triggered the notification.
    pub time: i64,
    /// Emission time (seconds).
    pub emit: i64,
    /// Latest average velocity the toll was based on (mph).
    pub lav: i64,
    /// Toll (cents).
    pub toll: i64,
}

/// Output: accident alert (benchmark type 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccidentAlert {
    pub vid: i64,
    pub time: i64,
    pub emit: i64,
    /// Segment of the accident the car is approaching.
    pub seg: i64,
}

/// Output: account balance answer (benchmark type 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalanceAnswer {
    pub qid: i64,
    pub vid: i64,
    pub time: i64,
    pub emit: i64,
    pub balance: i64,
}

/// Output: daily expenditure answer (benchmark type 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpenditureAnswer {
    pub qid: i64,
    pub vid: i64,
    pub time: i64,
    pub emit: i64,
    pub expenditure: i64,
}

/// The minute of a benchmark second (LR minutes are 1-based).
pub fn minute_of(time_secs: i64) -> i64 {
    time_secs / 60 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_roundtrip() {
        for k in [InputKind::Position, InputKind::AccountBalance, InputKind::DailyExpenditure] {
            assert_eq!(InputKind::from_code(k.code()), Some(k));
        }
        assert_eq!(InputKind::from_code(1), None);
        assert_eq!(InputKind::from_code(4), None);
    }

    #[test]
    fn position_derives_segment() {
        let t = InputTuple::position(10, 7, 55, 0, 1, 0, 3 * SEGMENT_FEET + 17);
        assert_eq!(t.seg, 3);
        assert_eq!(t.qid, -1);
        let row = t.to_row();
        assert_eq!(row.len(), input_schema().width());
        assert_eq!(row[0], Value::Int(0));
        assert_eq!(row[7], Value::Int(3));
    }

    #[test]
    fn requests_fill_union_fields() {
        let b = InputTuple::balance_request(5, 9, 101);
        assert_eq!(b.kind, InputKind::AccountBalance);
        assert_eq!(b.spd, -1);
        let d = InputTuple::expenditure_request(5, 9, 102, 0, 3);
        assert_eq!(d.day, 3);
        assert_eq!(d.xway, 0);
    }

    #[test]
    fn minutes_are_one_based() {
        assert_eq!(minute_of(0), 1);
        assert_eq!(minute_of(59), 1);
        assert_eq!(minute_of(60), 2);
        assert_eq!(minute_of(10799), 180);
    }
}
