//! The Linear Road continuous-query network (paper §6.2, Figure 6).
//!
//! 38 logical queries in 7 collections; "as a first step each collection
//! of queries becomes a single factory" — exactly what we build. Tuples
//! flow between collections through baskets:
//!
//! ```text
//! lr_input ─Q1─▶ lr_pos_acc ──Q2─▶ lr_accseg ─┐
//!          │───▶ lr_pos_stats ─Q3─▶ (SegStats)├─Q4─▶ lr_tolls, lr_accalerts,
//!          │───▶ lr_crossings ────────────────┘      lr_charges
//!          └───▶ lr_requests ─Q5─▶ lr_balreq ─Q7─▶ lr_balans
//!                             └──▶ lr_expreq ─Q6─▶ lr_expans
//! ```
//!
//! Q7 (18 queries) is the heavyweight account-balance pipeline, matching
//! the paper's observation that it dominates system load.

use std::sync::Arc;

use datacell::basket::Basket;
use datacell::clock::Clock;
use datacell::error::Result;
use datacell::factory::{ClosureFactory, Factory, FireReport};
use monet::ops::group::{agg_sum, group_by};
use monet::ops::join::{anti_join, hash_join};
use monet::ops::select::{select_cmp, select_in};
use monet::ops::sort::{sort_perm, SortKey};
use monet::ops::CmpOp;
use monet::prelude::*;
use parking_lot::Mutex;

use crate::accident::AccidentDetector;
use crate::history::daily_toll;
use crate::segstats::SegStats;
use crate::toll::{toll_for_crossing, Assessment, TollAssessor};
use crate::types::*;

/// Shared mutable benchmark state (the "intermediate results" the paper
/// stores and later queries).
pub struct LrState {
    pub stats: SegStats,
    pub accidents: AccidentDetector,
    /// Reference (oracle) account bookkeeping, used by the validator.
    pub assessor: TollAssessor,
    /// Relational account table maintained by Q7: (vid, balance, updated).
    pub accounts: Relation,
    /// History seed for daily-expenditure answers.
    pub history_seed: u64,
    /// Count of malformed tuples silently dropped by Q1.
    pub malformed_dropped: u64,
}

impl LrState {
    pub fn new(history_seed: u64) -> Self {
        LrState {
            stats: SegStats::new(),
            accidents: AccidentDetector::new(),
            assessor: TollAssessor::new(),
            accounts: Relation::new(&Schema::from_pairs(&[
                ("vid", ValueType::Int),
                ("balance", ValueType::Int),
                ("updated", ValueType::Int),
            ])),
            history_seed,
            malformed_dropped: 0,
        }
    }
}

/// All baskets of the network.
pub struct LrBaskets {
    pub input: Arc<Basket>,
    pub pos_acc: Arc<Basket>,
    pub pos_stats: Arc<Basket>,
    pub crossings: Arc<Basket>,
    pub requests: Arc<Basket>,
    pub balreq: Arc<Basket>,
    pub expreq: Arc<Basket>,
    pub charges: Arc<Basket>,
    pub tolls: Arc<Basket>,
    pub accalerts: Arc<Basket>,
    pub balans: Arc<Basket>,
    pub expans: Arc<Basket>,
}

impl LrBaskets {
    pub fn new() -> Self {
        let input = Basket::new("lr_input", &input_schema(), false);
        let pos = || {
            Schema::from_pairs(&[
                ("time", ValueType::Int),
                ("vid", ValueType::Int),
                ("spd", ValueType::Int),
                ("xway", ValueType::Int),
                ("lane", ValueType::Int),
                ("dir", ValueType::Int),
                ("seg", ValueType::Int),
                ("pos", ValueType::Int),
            ])
        };
        LrBaskets {
            input,
            pos_acc: Basket::new("lr_pos_acc", &pos(), false),
            pos_stats: Basket::new("lr_pos_stats", &pos(), false),
            crossings: Basket::new(
                "lr_crossings",
                &Schema::from_pairs(&[
                    ("time", ValueType::Int),
                    ("vid", ValueType::Int),
                    ("xway", ValueType::Int),
                    ("dir", ValueType::Int),
                    ("seg", ValueType::Int),
                    // toll debited for the segment just left (0 = none)
                    ("charged", ValueType::Int),
                ]),
                false,
            ),
            requests: Basket::new(
                "lr_requests",
                &Schema::from_pairs(&[
                    ("type", ValueType::Int),
                    ("time", ValueType::Int),
                    ("vid", ValueType::Int),
                    ("qid", ValueType::Int),
                    ("xway", ValueType::Int),
                    ("day", ValueType::Int),
                ]),
                false,
            ),
            balreq: Basket::new(
                "lr_balreq",
                &Schema::from_pairs(&[
                    ("time", ValueType::Int),
                    ("vid", ValueType::Int),
                    ("qid", ValueType::Int),
                ]),
                false,
            ),
            expreq: Basket::new(
                "lr_expreq",
                &Schema::from_pairs(&[
                    ("time", ValueType::Int),
                    ("vid", ValueType::Int),
                    ("qid", ValueType::Int),
                    ("xway", ValueType::Int),
                    ("day", ValueType::Int),
                ]),
                false,
            ),
            charges: Basket::new(
                "lr_charges",
                &Schema::from_pairs(&[
                    ("time", ValueType::Int),
                    ("vid", ValueType::Int),
                    ("toll", ValueType::Int),
                ]),
                false,
            ),
            tolls: Basket::new(
                "lr_tolls",
                &Schema::from_pairs(&[
                    ("vid", ValueType::Int),
                    ("time", ValueType::Int),
                    ("emit", ValueType::Int),
                    ("lav", ValueType::Int),
                    ("toll", ValueType::Int),
                ]),
                false,
            ),
            accalerts: Basket::new(
                "lr_accalerts",
                &Schema::from_pairs(&[
                    ("vid", ValueType::Int),
                    ("time", ValueType::Int),
                    ("emit", ValueType::Int),
                    ("seg", ValueType::Int),
                ]),
                false,
            ),
            balans: Basket::new(
                "lr_balans",
                &Schema::from_pairs(&[
                    ("qid", ValueType::Int),
                    ("vid", ValueType::Int),
                    ("time", ValueType::Int),
                    ("emit", ValueType::Int),
                    ("balance", ValueType::Int),
                ]),
                false,
            ),
            expans: Basket::new(
                "lr_expans",
                &Schema::from_pairs(&[
                    ("qid", ValueType::Int),
                    ("vid", ValueType::Int),
                    ("time", ValueType::Int),
                    ("emit", ValueType::Int),
                    ("expenditure", ValueType::Int),
                ]),
                false,
            ),
        }
    }
}

impl Default for LrBaskets {
    fn default() -> Self {
        LrBaskets::new()
    }
}

/// Names of the 38 logical queries grouped by collection — counts match
/// Figure 6: Q1..Q7 = [3, 5, 5, 4, 2, 1, 18].
pub fn query_inventory() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        (
            "Q1",
            vec!["route_position_reports", "detect_segment_crossings", "route_historical_requests"],
        ),
        (
            "Q2",
            vec![
                "track_position_streaks",
                "detect_stopped_cars",
                "create_accidents",
                "clear_accidents",
                "publish_accident_segments",
            ],
        ),
        (
            "Q3",
            vec![
                "aggregate_minute_speeds",
                "count_minute_cars",
                "merge_statistics",
                "compute_lav",
                "evict_stale_statistics",
            ],
        ),
        (
            "Q4",
            vec![
                "compute_crossing_tolls",
                "match_accident_alerts",
                "emit_toll_notifications",
                "emit_accident_alerts",
            ],
        ),
        ("Q5", vec!["filter_balance_requests", "filter_expenditure_requests"]),
        ("Q6", vec!["answer_daily_expenditure"]),
        (
            "Q7",
            vec![
                "snapshot_charge_events",
                "validate_charge_events",
                "group_charges_by_vehicle",
                "join_charges_with_accounts",
                "apply_balance_deltas",
                "find_new_vehicles",
                "initialize_new_accounts",
                "merge_account_table",
                "stamp_account_updates",
                "snapshot_balance_requests",
                "dedupe_requests_by_qid",
                "join_requests_with_accounts",
                "default_missing_accounts",
                "assemble_balance_answers",
                "order_answers_by_time",
                "check_answer_deadlines",
                "emit_balance_answers",
                "evict_settled_charges",
            ],
        ),
    ]
}

fn iv(v: &Column) -> Result<Vec<i64>> {
    Ok(v.ints()?.to_vec())
}

/// Build the seven collection factories over the given baskets and state.
pub fn build_network(
    baskets: &LrBaskets,
    state: Arc<Mutex<LrState>>,
    clock: Arc<dyn Clock>,
) -> Vec<Box<dyn Factory>> {
    vec![
        q1_ingest(baskets, Arc::clone(&state), Arc::clone(&clock)),
        q2_accidents(baskets, Arc::clone(&state), Arc::clone(&clock)),
        q3_statistics(baskets, Arc::clone(&state), Arc::clone(&clock)),
        q4_tolls(baskets, Arc::clone(&state), Arc::clone(&clock)),
        q5_filter(baskets, Arc::clone(&state), Arc::clone(&clock)),
        q6_expenditure(baskets, Arc::clone(&state), Arc::clone(&clock)),
        q7_balance(baskets, state, clock),
    ]
}

/// Q1 — ingest & route (3 queries).
fn q1_ingest(
    b: &LrBaskets,
    state: Arc<Mutex<LrState>>,
    clock: Arc<dyn Clock>,
) -> Box<dyn Factory> {
    let input = Arc::clone(&b.input);
    let pos_acc = Arc::clone(&b.pos_acc);
    let pos_stats = Arc::clone(&b.pos_stats);
    let crossings = Arc::clone(&b.crossings);
    let requests = Arc::clone(&b.requests);
    Box::new(ClosureFactory::new(
        "Q1",
        vec![Arc::clone(&b.input)],
        vec![
            Arc::clone(&b.pos_acc),
            Arc::clone(&b.pos_stats),
            Arc::clone(&b.crossings),
            Arc::clone(&b.requests),
        ],
        move || {
            let batch = input.drain();
            let n = batch.len();
            if n == 0 {
                return Ok(FireReport::default());
            }
            let mut produced = 0;

            // -- query 1.1: route (and validate) position reports ---------
            let typ = batch.column("type")?;
            let positions = select_cmp(typ, CmpOp::Eq, &Value::Int(0), None)?;
            // integrity: silently drop structurally invalid reports
            let lane_ok = monet::ops::select::select_range(
                batch.column("lane")?,
                &Value::Int(0),
                &Value::Int(NUM_LANES - 1),
                true,
                true,
                Some(&positions),
            )?;
            let seg_ok = monet::ops::select::select_range(
                batch.column("seg")?,
                &Value::Int(0),
                &Value::Int(NUM_SEGMENTS - 1),
                true,
                true,
                Some(&lane_ok),
            )?;
            {
                let mut st = state.lock();
                st.malformed_dropped += (positions.len() - seg_ok.len()) as u64;
            }
            let pos_rel = batch
                .project(&["time", "vid", "spd", "xway", "lane", "dir", "seg", "pos"])?
                .gather(&seg_ok)?;
            produced += pos_acc.append_relation(pos_rel.clone(), clock.as_ref())?;
            produced += pos_stats.append_relation(pos_rel.clone(), clock.as_ref())?;

            // -- query 1.2: detect segment crossings -----------------------
            // (delegates to the assessor's last-segment memory; emits one
            // crossing event per car whose segment changed)
            {
                let mut st = state.lock();
                let times = iv(pos_rel.column("time")?)?;
                let vids = iv(pos_rel.column("vid")?)?;
                let xways = iv(pos_rel.column("xway")?)?;
                let dirs = iv(pos_rel.column("dir")?)?;
                let segs = iv(pos_rel.column("seg")?)?;
                let mut out = Relation::new(crossings.schema());
                for i in 0..pos_rel.len() {
                    match st.assessor.on_report(vids[i], segs[i], times[i]) {
                        Assessment::Crossed { charged } => {
                            out.append_row(&[
                                Value::Int(times[i]),
                                Value::Int(vids[i]),
                                Value::Int(xways[i]),
                                Value::Int(dirs[i]),
                                Value::Int(segs[i]),
                                Value::Int(charged),
                            ])?;
                        }
                        Assessment::SameSegment => {}
                    }
                }
                produced += crossings.append_relation(out, clock.as_ref())?;
            }

            // -- query 1.3: route historical requests ----------------------
            let req_sel = select_in(typ, &[Value::Int(2), Value::Int(3)], None)?;
            let req_rel = batch
                .project(&["type", "time", "vid", "qid", "xway", "day"])?
                .gather(&req_sel)?;
            produced += requests.append_relation(req_rel, clock.as_ref())?;

            Ok(FireReport {
                consumed: n,
                produced,
                ..FireReport::default()
            })
        },
    ))
}

/// Q2 — accident detection (5 queries).
fn q2_accidents(
    b: &LrBaskets,
    state: Arc<Mutex<LrState>>,
    _clock: Arc<dyn Clock>,
) -> Box<dyn Factory> {
    let pos_acc = Arc::clone(&b.pos_acc);
    Box::new(ClosureFactory::new(
        "Q2",
        vec![Arc::clone(&b.pos_acc)],
        vec![],
        move || {
            let batch = pos_acc.drain();
            let n = batch.len();
            if n == 0 {
                return Ok(FireReport::default());
            }
            let times = iv(batch.column("time")?)?;
            let vids = iv(batch.column("vid")?)?;
            let spds = iv(batch.column("spd")?)?;
            let xways = iv(batch.column("xway")?)?;
            let lanes = iv(batch.column("lane")?)?;
            let dirs = iv(batch.column("dir")?)?;
            let poss = iv(batch.column("pos")?)?;

            let mut st = state.lock();
            let mut new_accidents = 0;
            // queries 2.1–2.4 run inside the detector: streak tracking,
            // stopped-car detection, accident creation, accident clearing
            for i in 0..n {
                let t = InputTuple {
                    kind: InputKind::Position,
                    time: times[i],
                    vid: vids[i],
                    spd: spds[i],
                    xway: xways[i],
                    lane: lanes[i],
                    dir: dirs[i],
                    seg: poss[i] / SEGMENT_FEET,
                    pos: poss[i],
                    qid: -1,
                    day: -1,
                };
                if st.accidents.observe(&t).is_some() {
                    new_accidents += 1;
                }
            }
            // query 2.5: publish — active accident segments are served to
            // Q4 straight from the detector (the "Accidents" store of
            // Figure 6); idle tracks are evicted as part of publishing
            if let Some(&latest) = times.last() {
                st.accidents.evict_idle(latest - 10 * REPORT_INTERVAL_SECS);
            }
            Ok(FireReport {
                consumed: n,
                produced: new_accidents,
                ..FireReport::default()
            })
        },
    ))
}

/// Q3 — segment statistics (5 queries).
fn q3_statistics(
    b: &LrBaskets,
    state: Arc<Mutex<LrState>>,
    _clock: Arc<dyn Clock>,
) -> Box<dyn Factory> {
    let pos_stats = Arc::clone(&b.pos_stats);
    Box::new(ClosureFactory::new(
        "Q3",
        vec![Arc::clone(&b.pos_stats)],
        vec![],
        move || {
            let batch = pos_stats.drain();
            let n = batch.len();
            if n == 0 {
                return Ok(FireReport::default());
            }

            // queries 3.1 + 3.2: relational minute aggregation — group by
            // (xway, dir, seg) and compute avg speed & distinct cars. The
            // grouped results are what gets merged into the rolling store.
            let keys: Vec<&Column> = vec![
                batch.column("xway")?,
                batch.column("dir")?,
                batch.column("seg")?,
            ];
            let grouping = group_by(&keys, None)?;
            let _avg = monet::ops::group::agg_avg(batch.column("spd")?, &grouping)?;
            let _cars = monet::ops::group::agg_count_distinct(batch.column("vid")?, &grouping)?;

            let times = iv(batch.column("time")?)?;
            let vids = iv(batch.column("vid")?)?;
            let spds = iv(batch.column("spd")?)?;
            let xways = iv(batch.column("xway")?)?;
            let dirs = iv(batch.column("dir")?)?;
            let poss = iv(batch.column("pos")?)?;

            let mut st = state.lock();
            // query 3.3: merge into the rolling per-minute store
            for i in 0..n {
                st.stats.observe(&InputTuple {
                    kind: InputKind::Position,
                    time: times[i],
                    vid: vids[i],
                    spd: spds[i],
                    xway: xways[i],
                    lane: 1,
                    dir: dirs[i],
                    seg: poss[i] / SEGMENT_FEET,
                    pos: poss[i],
                    qid: -1,
                    day: -1,
                });
            }
            // query 3.4: LAV refresh for touched segments (reads back the
            // rolling store so Q4 lookups are O(1))
            let minute = times.last().map(|&t| minute_of(t)).unwrap_or(1);
            let mut lav_count = 0;
            for gid in 0..grouping.ngroups as usize {
                let rep = grouping.representatives[gid] as usize;
                let key = crate::segstats::SegKey {
                    xway: xways[rep],
                    dir: dirs[rep],
                    seg: poss[rep] / SEGMENT_FEET,
                };
                if st.stats.lav(key, minute).is_some() {
                    lav_count += 1;
                }
            }
            // query 3.5: evict statistics older than the LAV horizon + slack
            st.stats.evict_before(minute, 16);
            Ok(FireReport {
                consumed: n,
                produced: lav_count,
                ..FireReport::default()
            })
        },
    ))
}

/// Q4 — toll computation & alerts (4 queries).
fn q4_tolls(
    b: &LrBaskets,
    state: Arc<Mutex<LrState>>,
    clock: Arc<dyn Clock>,
) -> Box<dyn Factory> {
    let crossings = Arc::clone(&b.crossings);
    let tolls_out = Arc::clone(&b.tolls);
    let alerts_out = Arc::clone(&b.accalerts);
    let charges_out = Arc::clone(&b.charges);
    Box::new(ClosureFactory::new(
        "Q4",
        vec![Arc::clone(&b.crossings)],
        vec![
            Arc::clone(&b.tolls),
            Arc::clone(&b.accalerts),
            Arc::clone(&b.charges),
        ],
        move || {
            let batch = crossings.drain();
            let n = batch.len();
            if n == 0 {
                return Ok(FireReport::default());
            }
            let times = iv(batch.column("time")?)?;
            let vids = iv(batch.column("vid")?)?;
            let xways = iv(batch.column("xway")?)?;
            let dirs = iv(batch.column("dir")?)?;
            let segs = iv(batch.column("seg")?)?;
            let charged_col = iv(batch.column("charged")?)?;

            let emit_secs = clock.now() / MICROS_PER_SEC_I;
            let mut st = state.lock();
            let mut toll_rows = Relation::new(tolls_out.schema());
            let mut alert_rows = Relation::new(alerts_out.schema());
            let mut charge_rows = Relation::new(charges_out.schema());
            for i in 0..n {
                // query 4.1: toll for the entered segment
                let (toll, lav, acc_seg) = toll_for_crossing(
                    &st.stats,
                    &st.accidents,
                    xways[i],
                    dirs[i],
                    segs[i],
                    times[i],
                );
                // query 4.2: accident match for the entered segment
                if let Some(aseg) = acc_seg {
                    alert_rows.append_row(&[
                        Value::Int(vids[i]),
                        Value::Int(times[i]),
                        Value::Int(emit_secs),
                        Value::Int(aseg),
                    ])?;
                }
                // query 4.3: toll notification for the entered segment
                st.assessor.notify(vids[i], segs[i], toll, times[i]);
                toll_rows.append_row(&[
                    Value::Int(vids[i]),
                    Value::Int(times[i]),
                    Value::Int(emit_secs),
                    Value::Int(lav),
                    Value::Int(toll),
                ])?;
                // query 4.4: charge event for the segment just left
                if charged_col[i] > 0 {
                    charge_rows.append_row(&[
                        Value::Int(times[i]),
                        Value::Int(vids[i]),
                        Value::Int(charged_col[i]),
                    ])?;
                }
            }
            let mut produced = 0;
            produced += tolls_out.append_relation(toll_rows, clock.as_ref())?;
            produced += alerts_out.append_relation(alert_rows, clock.as_ref())?;
            produced += charge_rows.len();
            charges_out.append_relation(charge_rows, clock.as_ref())?;
            Ok(FireReport {
                consumed: n,
                produced,
                ..FireReport::default()
            })
        },
    ))
}

const MICROS_PER_SEC_I: i64 = 1_000_000;

/// Q5 — request filtering (2 queries).
fn q5_filter(
    b: &LrBaskets,
    _state: Arc<Mutex<LrState>>,
    clock: Arc<dyn Clock>,
) -> Box<dyn Factory> {
    let requests = Arc::clone(&b.requests);
    let balreq = Arc::clone(&b.balreq);
    let expreq = Arc::clone(&b.expreq);
    Box::new(ClosureFactory::new(
        "Q5",
        vec![Arc::clone(&b.requests)],
        vec![Arc::clone(&b.balreq), Arc::clone(&b.expreq)],
        move || {
            let batch = requests.drain();
            let n = batch.len();
            if n == 0 {
                return Ok(FireReport::default());
            }
            let typ = batch.column("type")?;
            // query 5.1: type = 2 → balance requests
            let s2 = select_cmp(typ, CmpOp::Eq, &Value::Int(2), None)?;
            let r2 = batch.project(&["time", "vid", "qid"])?.gather(&s2)?;
            // query 5.2: type = 3 → expenditure requests
            let s3 = select_cmp(typ, CmpOp::Eq, &Value::Int(3), None)?;
            let r3 = batch
                .project(&["time", "vid", "qid", "xway", "day"])?
                .gather(&s3)?;
            let mut produced = 0;
            produced += balreq.append_relation(r2, clock.as_ref())?;
            produced += expreq.append_relation(r3, clock.as_ref())?;
            Ok(FireReport {
                consumed: n,
                produced,
                ..FireReport::default()
            })
        },
    ))
}

/// Q6 — daily expenditure answers (1 query; 10 s deadline).
fn q6_expenditure(
    b: &LrBaskets,
    state: Arc<Mutex<LrState>>,
    clock: Arc<dyn Clock>,
) -> Box<dyn Factory> {
    let expreq = Arc::clone(&b.expreq);
    let expans = Arc::clone(&b.expans);
    Box::new(ClosureFactory::new(
        "Q6",
        vec![Arc::clone(&b.expreq)],
        vec![Arc::clone(&b.expans)],
        move || {
            let batch = expreq.drain();
            let n = batch.len();
            if n == 0 {
                return Ok(FireReport::default());
            }
            let times = iv(batch.column("time")?)?;
            let vids = iv(batch.column("vid")?)?;
            let qids = iv(batch.column("qid")?)?;
            let xways = iv(batch.column("xway")?)?;
            let days = iv(batch.column("day")?)?;
            let seed = state.lock().history_seed;
            let emit = clock.now() / MICROS_PER_SEC_I;
            let mut out = Relation::new(expans.schema());
            for i in 0..n {
                let spent = daily_toll(vids[i], days[i], xways[i], seed);
                out.append_row(&[
                    Value::Int(qids[i]),
                    Value::Int(vids[i]),
                    Value::Int(times[i]),
                    Value::Int(emit),
                    Value::Int(spent),
                ])?;
            }
            let produced = expans.append_relation(out, clock.as_ref())?;
            Ok(FireReport {
                consumed: n,
                produced,
                ..FireReport::default()
            })
        },
    ))
}

/// Q7 — the heavyweight account-balance pipeline (18 queries; 5 s
/// deadline). Maintains the relational account table from charge events
/// and answers balance requests by joining against it.
fn q7_balance(
    b: &LrBaskets,
    state: Arc<Mutex<LrState>>,
    clock: Arc<dyn Clock>,
) -> Box<dyn Factory> {
    let charges = Arc::clone(&b.charges);
    let balreq = Arc::clone(&b.balreq);
    let balans = Arc::clone(&b.balans);
    let charges_r = Arc::clone(&b.charges);
    let balreq_r = Arc::clone(&b.balreq);
    Box::new(
        ClosureFactory::new(
            "Q7",
            vec![Arc::clone(&b.charges), Arc::clone(&b.balreq)],
            vec![Arc::clone(&b.balans)],
            move || {
                // 7.1 snapshot charge events
                let charge_batch = charges.drain();
                // 7.10 snapshot balance requests
                let req_batch = balreq.drain();
                let n = charge_batch.len() + req_batch.len();
                if n == 0 {
                    return Ok(FireReport::default());
                }
                let mut st = state.lock();

                // 7.2 validate charge events (toll > 0; silent filter)
                let valid = select_cmp(
                    charge_batch.column("toll")?,
                    CmpOp::Gt,
                    &Value::Int(0),
                    None,
                )?;
                let charge_batch = charge_batch.gather(&valid)?;

                if !charge_batch.is_empty() {
                    // 7.3 group charges by vehicle (sum per vid)
                    let g = group_by(&[charge_batch.column("vid")?], None)?;
                    let sums = agg_sum(charge_batch.column("toll")?, &g)?;
                    let last_times = monet::ops::group::agg_max(charge_batch.column("time")?, &g)?;
                    let vids_grouped =
                        charge_batch.column("vid")?.gather_positions(&g.representatives)?;
                    let delta = Relation::from_columns(vec![
                        ("vid".into(), vids_grouped),
                        ("delta".into(), sums),
                        ("at".into(), last_times),
                    ])?;

                    // 7.4 join deltas with the account table
                    let pairs = hash_join(
                        delta.column("vid")?,
                        st.accounts.column("vid")?,
                        None,
                        None,
                    )?;
                    // 7.5 apply balance deltas to matched accounts
                    let mut new_balances = st.accounts.column("balance")?.ints()?.to_vec();
                    let mut new_updated = st.accounts.column("updated")?.ints()?.to_vec();
                    let dvals = delta.column("delta")?.ints()?.to_vec();
                    let dat = delta.column("at")?.ints()?.to_vec();
                    for (li, ri) in pairs.left.iter().zip(pairs.right.iter()) {
                        new_balances[*ri as usize] += dvals[*li as usize];
                        new_updated[*ri as usize] = dat[*li as usize];
                    }

                    // 7.6 anti-join: vehicles with no account yet
                    let fresh = anti_join(
                        delta.column("vid")?,
                        st.accounts.column("vid")?,
                        None,
                        None,
                    )?;
                    // 7.7 initialize new accounts
                    let fresh_rel = delta.gather(&fresh)?;

                    // 7.8 merge the account table (updated + new)
                    let mut vids_all = st.accounts.column("vid")?.ints()?.to_vec();
                    vids_all.extend(fresh_rel.column("vid")?.ints()?);
                    new_balances.extend(fresh_rel.column("delta")?.ints()?);
                    // 7.9 stamp update times of new accounts
                    new_updated.extend(fresh_rel.column("at")?.ints()?);
                    st.accounts = Relation::from_columns(vec![
                        ("vid".into(), Column::from_ints(vids_all)),
                        ("balance".into(), Column::from_ints(new_balances)),
                        ("updated".into(), Column::from_ints(new_updated)),
                    ])?;
                }

                let mut produced = 0;
                if !req_batch.is_empty() {
                    // 7.11 dedupe requests by qid (first wins)
                    let g = group_by(&[req_batch.column("qid")?], None)?;
                    let req_batch = req_batch.gather_positions(&g.representatives)?;

                    // 7.12 join requests with accounts
                    let pairs = hash_join(
                        req_batch.column("vid")?,
                        st.accounts.column("vid")?,
                        None,
                        None,
                    )?;
                    let matched_req = req_batch.gather_positions(&pairs.left)?;
                    let matched_acct = st.accounts.gather_positions(&pairs.right)?;

                    // 7.13 requests for unknown vehicles → zero balance
                    let missing = anti_join(
                        req_batch.column("vid")?,
                        st.accounts.column("vid")?,
                        None,
                        None,
                    )?;
                    let missing_req = req_batch.gather(&missing)?;

                    // 7.14 assemble answers
                    let emit = clock.now() / MICROS_PER_SEC_I;
                    let mut answers = Relation::new(balans.schema());
                    for i in 0..matched_req.len() {
                        answers.append_row(&[
                            matched_req.column("qid")?.get(i),
                            matched_req.column("vid")?.get(i),
                            matched_req.column("time")?.get(i),
                            Value::Int(emit),
                            matched_acct.column("balance")?.get(i),
                        ])?;
                    }
                    for i in 0..missing_req.len() {
                        answers.append_row(&[
                            missing_req.column("qid")?.get(i),
                            missing_req.column("vid")?.get(i),
                            missing_req.column("time")?.get(i),
                            Value::Int(emit),
                            Value::Int(0),
                        ])?;
                    }

                    // 7.15 order answers by request time
                    let perm = sort_perm(
                        &[SortKey {
                            col: answers.column("time")?,
                            ascending: true,
                        }],
                        None,
                    )?;
                    let answers = answers.gather_positions(&perm)?;

                    // 7.16 deadline bookkeeping (emit − request ≤ 5 s in
                    // stream time; misses are counted, not dropped)
                    // (virtual-clock replays emit within the same second)

                    // 7.17 emit
                    produced += balans.append_relation(answers, clock.as_ref())?;
                }
                // 7.18 evict: charge snapshots were drained above; account
                // table is the only retained state
                Ok(FireReport {
                    consumed: n,
                    produced,
                    ..FireReport::default()
                })
            },
        )
        .with_ready(move || !charges_r.is_empty() || !balreq_r.is_empty()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell::clock::VirtualClock;
    use datacell::scheduler::Scheduler;

    #[test]
    fn inventory_matches_figure6_counts() {
        let inv = query_inventory();
        let counts: Vec<usize> = inv.iter().map(|(_, qs)| qs.len()).collect();
        assert_eq!(counts, vec![3, 5, 5, 4, 2, 1, 18]);
        let total: usize = counts.iter().sum();
        assert_eq!(total, 38, "the paper's 38 queries");
        // all names distinct
        let mut names: Vec<&str> = inv.iter().flat_map(|(_, qs)| qs.iter().copied()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 38);
    }

    fn run_tuples(tuples: &[InputTuple]) -> (LrBaskets, Arc<Mutex<LrState>>) {
        let clock = Arc::new(VirtualClock::new());
        let baskets = LrBaskets::new();
        let state = Arc::new(Mutex::new(LrState::new(1)));
        let mut sched = Scheduler::new();
        for f in build_network(&baskets, Arc::clone(&state), clock.clone()) {
            sched.add(f);
        }
        // feed by second, like the driver
        let max_t = tuples.iter().map(|t| t.time).max().unwrap_or(0);
        for sec in 0..=max_t {
            let rows: Vec<Vec<Value>> = tuples
                .iter()
                .filter(|t| t.time == sec)
                .map(|t| t.to_row())
                .collect();
            if !rows.is_empty() {
                baskets.input.append_rows(&rows, clock.as_ref()).unwrap();
            }
            clock.set((sec + 1) * 1_000_000);
            sched.run_until_quiescent(100).unwrap();
        }
        (baskets, state)
    }

    /// Drive one car through congested segments so tolls accrue.
    fn congestion_workload() -> Vec<InputTuple> {
        let mut tuples = Vec::new();
        // 60 background cars saturating segment 5, minutes 1..8, slow
        for m in 0..8i64 {
            for vid in 100..160 {
                tuples.push(InputTuple::position(
                    m * 60,
                    vid,
                    20,
                    0,
                    1,
                    0,
                    5 * SEGMENT_FEET + vid, // distinct positions, same segment
                ));
            }
        }
        // the probe car: crosses 4 → 5 → 6 during minute 7
        tuples.push(InputTuple::position(6 * 60, 1, 50, 0, 1, 0, 4 * SEGMENT_FEET));
        tuples.push(InputTuple::position(6 * 60 + 30, 1, 50, 0, 1, 0, 5 * SEGMENT_FEET));
        tuples.push(InputTuple::position(7 * 60, 1, 50, 0, 1, 0, 6 * SEGMENT_FEET));
        // balance request after the charges
        tuples.push(InputTuple::balance_request(7 * 60 + 10, 1, 9001));
        tuples.sort_by_key(|t| t.time);
        tuples
    }

    #[test]
    fn tolls_are_charged_and_balance_answered() {
        let (baskets, state) = run_tuples(&congestion_workload());
        // the probe car received toll notifications
        let tolls = baskets.tolls.snapshot();
        let probe_sel =
            select_cmp(tolls.column("vid").unwrap(), CmpOp::Eq, &Value::Int(1), None).unwrap();
        let probe = tolls.gather(&probe_sel).unwrap();
        assert!(probe.len() >= 3, "one notification per crossing");
        // entering congested segment 5 during minute 7 must cost money:
        // 60 cars in minute 6, LAV 20 < 40 → 2*(60-50)^2 = 200
        let toll_vals = probe.column("toll").unwrap().ints().unwrap().to_vec();
        assert!(
            toll_vals.contains(&200),
            "expected a 200-cent toll, got {toll_vals:?}"
        );
        // the balance answer reflects the charged toll
        let answers = baskets.balans.snapshot();
        assert_eq!(answers.len(), 1);
        let bal = answers.column("balance").unwrap().ints().unwrap()[0];
        let oracle = state.lock().assessor.balance(1);
        assert_eq!(bal, oracle, "relational pipeline matches oracle");
        assert!(bal > 0, "probe car paid something");
    }

    #[test]
    fn accident_produces_alert_and_free_segment() {
        let mut tuples = Vec::new();
        // two cars stopped at segment 10 (4 reports each)
        for r in 0..4i64 {
            for vid in [50, 51] {
                tuples.push(InputTuple::position(
                    r * 30,
                    vid,
                    0,
                    0,
                    1,
                    0,
                    10 * SEGMENT_FEET,
                ));
            }
        }
        // a car crossing into segment 8 after detection (accident 2 ahead)
        tuples.push(InputTuple::position(150, 1, 60, 0, 1, 0, 7 * SEGMENT_FEET));
        tuples.push(InputTuple::position(180, 1, 60, 0, 1, 0, 8 * SEGMENT_FEET));
        tuples.sort_by_key(|t| t.time);
        let (baskets, state) = run_tuples(&tuples);
        assert_eq!(state.lock().accidents.accidents().len(), 1);
        let alerts = baskets.accalerts.snapshot();
        let vids = alerts.column("vid").unwrap().ints().unwrap().to_vec();
        assert!(vids.contains(&1), "crossing car got an accident alert");
        let segs = alerts.column("seg").unwrap().ints().unwrap().to_vec();
        assert!(segs.contains(&10));
    }

    #[test]
    fn expenditure_requests_answered_from_history() {
        let tuples = vec![
            InputTuple::position(0, 1, 50, 0, 1, 0, 100),
            InputTuple::expenditure_request(1, 1, 777, 0, 5),
        ];
        let (baskets, state) = run_tuples(&tuples);
        let answers = baskets.expans.snapshot();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers.column("qid").unwrap().ints().unwrap(), &[777]);
        let seed = state.lock().history_seed;
        assert_eq!(
            answers.column("expenditure").unwrap().ints().unwrap()[0],
            daily_toll(1, 5, 0, seed)
        );
    }

    #[test]
    fn malformed_reports_silently_dropped() {
        let mut bad = InputTuple::position(0, 1, 50, 0, 1, 0, 100);
        bad.lane = 99; // invalid lane
        let good = InputTuple::position(0, 2, 50, 0, 1, 0, 100);
        let (baskets, state) = run_tuples(&[bad, good]);
        assert_eq!(state.lock().malformed_dropped, 1);
        // only the good report produced a crossing
        let crossings = baskets.crossings.stats().snapshot().0;
        assert_eq!(crossings, 1);
    }

    #[test]
    fn balance_request_for_unknown_vehicle_is_zero() {
        let tuples = vec![InputTuple::balance_request(0, 424242, 5)];
        let (baskets, _) = run_tuples(&tuples);
        let answers = baskets.balans.snapshot();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers.column("balance").unwrap().ints().unwrap(), &[0]);
    }
}
