//! # linearroad — the Linear Road benchmark on DataCell
//!
//! A from-scratch implementation of the Linear Road stream benchmark
//! (Arasu et al., VLDB 2004) as used in the paper's evaluation (§6.2):
//!
//! * [`gen`] — deterministic traffic generator (ramping arrival rate,
//!   forced accidents, historical query mix);
//! * [`segstats`], [`accident`], [`toll`], [`history`] — the benchmark's
//!   domain logic (minute statistics + LAV, stopped-car/accident
//!   detection, toll formula and accounts, 10-week toll history);
//! * [`queries`] — the 38 continuous queries in 7 collections (Figure 6)
//!   wired as DataCell factories over baskets;
//! * [`driver`] — virtual-clock replay measuring per-collection load
//!   (Figure 7), input distribution (Figure 8) and Q7 response times
//!   (Figure 9);
//! * [`validate`] — independent reference recomputation and invariant
//!   checks, standing in for the benchmark's validator tool.
//!
//! ```
//! use linearroad::driver::{run, DriverConfig};
//! use linearroad::gen::GenConfig;
//! use linearroad::validate::validate;
//!
//! let run = run(&DriverConfig {
//!     gen: GenConfig { scale: 0.01, duration_secs: 300, seed: 1, xways: 1,
//!                      query_fraction: 0.02 },
//!     sample_every_secs: 60,
//! });
//! assert!(validate(&run).all_passed());
//! ```

pub mod accident;
pub mod driver;
pub mod gen;
pub mod history;
pub mod queries;
pub mod segstats;
pub mod toll;
pub mod types;
pub mod validate;
