//! Accident detection: a car is *stopped* after four consecutive identical
//! position reports; an *accident* exists at a location with at least two
//! stopped cars; it clears when one of them moves away.

use std::collections::HashMap;

use crate::types::{InputKind, InputTuple, ACCIDENT_WARN_SEGS, STOPPED_REPORTS};

/// A location on the road network (direction-aware).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Location {
    pub xway: i64,
    pub lane: i64,
    pub dir: i64,
    pub pos: i64,
}

/// An active or cleared accident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Accident {
    pub location: Location,
    /// Second at which the second car was confirmed stopped.
    pub detected_at: i64,
    /// Second at which a participant moved away (None while active).
    pub cleared_at: Option<i64>,
    /// Vehicles confirmed stopped at the location.
    pub vids: Vec<i64>,
}

impl Accident {
    /// Is the accident visible to tolls/alerts at `time`? (Active from
    /// detection until cleared.)
    pub fn active_at(&self, time: i64) -> bool {
        time >= self.detected_at && self.cleared_at.is_none_or(|c| time < c)
    }

    pub fn seg(&self) -> i64 {
        self.location.pos / crate::types::SEGMENT_FEET
    }
}

#[derive(Debug, Clone)]
struct CarTrack {
    location: Location,
    consecutive: usize,
    last_time: i64,
}

/// Streaming accident detector.
#[derive(Debug, Default)]
pub struct AccidentDetector {
    tracks: HashMap<i64, CarTrack>,
    /// stopped cars per location
    stopped: HashMap<Location, Vec<i64>>,
    accidents: Vec<Accident>,
}

impl AccidentDetector {
    pub fn new() -> Self {
        AccidentDetector::default()
    }

    /// Feed one position report; returns a newly detected accident, if any.
    pub fn observe(&mut self, t: &InputTuple) -> Option<usize> {
        debug_assert_eq!(t.kind, InputKind::Position);
        let here = Location {
            xway: t.xway,
            lane: t.lane,
            dir: t.dir,
            pos: t.pos,
        };
        let prev = self.tracks.insert(
            t.vid,
            CarTrack {
                location: here,
                consecutive: 1,
                last_time: t.time,
            },
        );
        match prev {
            Some(old) if old.location == here => {
                let track = self.tracks.get_mut(&t.vid).expect("just inserted");
                track.consecutive = old.consecutive + 1;
                if track.consecutive == STOPPED_REPORTS {
                    return self.car_stopped(t.vid, here, t.time);
                }
            }
            Some(old) => {
                // moved: if it was a stopped participant, clear
                self.car_moved(t.vid, old.location, t.time);
            }
            None => {}
        }
        None
    }

    fn car_stopped(&mut self, vid: i64, loc: Location, time: i64) -> Option<usize> {
        let stopped_here = self.stopped.entry(loc).or_default();
        if !stopped_here.contains(&vid) {
            stopped_here.push(vid);
        }
        if stopped_here.len() >= 2 {
            // already an active accident here?
            let exists = self
                .accidents
                .iter()
                .any(|a| a.location == loc && a.cleared_at.is_none());
            if !exists {
                self.accidents.push(Accident {
                    location: loc,
                    detected_at: time,
                    cleared_at: None,
                    vids: stopped_here.clone(),
                });
                return Some(self.accidents.len() - 1);
            }
        }
        None
    }

    fn car_moved(&mut self, vid: i64, from: Location, time: i64) {
        if let Some(stopped_here) = self.stopped.get_mut(&from) {
            if let Some(i) = stopped_here.iter().position(|&v| v == vid) {
                stopped_here.swap_remove(i);
                // one participant moving clears the accident
                for a in self.accidents.iter_mut() {
                    if a.location == from && a.cleared_at.is_none() {
                        a.cleared_at = Some(time);
                    }
                }
            }
            if stopped_here.is_empty() {
                self.stopped.remove(&from);
            }
        }
    }

    /// All accidents seen so far (active and cleared).
    pub fn accidents(&self) -> &[Accident] {
        &self.accidents
    }

    /// Accident (if any) affecting a car at `(xway, dir, seg)` at `time`:
    /// active, same expressway & direction, located within
    /// [`ACCIDENT_WARN_SEGS`] segments downstream of the car.
    pub fn affecting(&self, xway: i64, dir: i64, seg: i64, time: i64) -> Option<&Accident> {
        self.accidents.iter().find(|a| {
            if !(a.active_at(time) && a.location.xway == xway && a.location.dir == dir) {
                return false;
            }
            let aseg = a.seg();
            if dir == 0 {
                // eastbound: accident ahead means larger segment number
                aseg >= seg && aseg - seg <= ACCIDENT_WARN_SEGS
            } else {
                aseg <= seg && seg - aseg <= ACCIDENT_WARN_SEGS
            }
        })
    }

    /// Drop tracking state for cars silent since `before` (exited traffic).
    pub fn evict_idle(&mut self, before: i64) {
        self.tracks.retain(|_, t| t.last_time >= before);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{REPORT_INTERVAL_SECS, SEGMENT_FEET};

    fn report(time: i64, vid: i64, pos: i64) -> InputTuple {
        InputTuple::position(time, vid, 0, 0, 1, 0, pos)
    }

    fn stop_car(d: &mut AccidentDetector, vid: i64, pos: i64, from: i64) -> Option<usize> {
        let mut found = None;
        for i in 0..STOPPED_REPORTS as i64 {
            found = d.observe(&report(from + i * REPORT_INTERVAL_SECS, vid, pos));
        }
        found
    }

    #[test]
    fn four_identical_reports_mark_stopped_two_cars_make_accident() {
        let mut d = AccidentDetector::new();
        assert!(stop_car(&mut d, 1, 5280, 0).is_none(), "one stopped car is no accident");
        let acc = stop_car(&mut d, 2, 5280, 0);
        assert!(acc.is_some());
        let a = &d.accidents()[acc.unwrap()];
        assert_eq!(a.vids.len(), 2);
        assert!(a.cleared_at.is_none());
        assert_eq!(a.seg(), 1);
    }

    #[test]
    fn three_reports_are_not_stopped() {
        let mut d = AccidentDetector::new();
        for i in 0..3i64 {
            d.observe(&report(i * 30, 1, 100));
            d.observe(&report(i * 30, 2, 100));
        }
        assert!(d.accidents().is_empty());
    }

    #[test]
    fn different_positions_dont_accumulate() {
        let mut d = AccidentDetector::new();
        for i in 0..8i64 {
            // alternate between two positions — never 4 consecutive
            d.observe(&report(i * 30, 1, 100 + (i % 2) * 10));
        }
        assert!(d.accidents().is_empty());
    }

    #[test]
    fn accident_clears_when_participant_moves() {
        let mut d = AccidentDetector::new();
        stop_car(&mut d, 1, 200, 0);
        stop_car(&mut d, 2, 200, 0);
        assert!(d.accidents()[0].active_at(130));
        // car 1 moves away
        d.observe(&report(150, 1, 999));
        let a = &d.accidents()[0];
        assert_eq!(a.cleared_at, Some(150));
        assert!(!a.active_at(151));
        assert!(a.active_at(149));
    }

    #[test]
    fn affecting_respects_direction_and_range() {
        let mut d = AccidentDetector::new();
        // accident at segment 10 (pos 10*5280), eastbound
        stop_car(&mut d, 1, 10 * SEGMENT_FEET, 0);
        stop_car(&mut d, 2, 10 * SEGMENT_FEET, 0);
        let t = 200;
        // eastbound car at segment 7: accident 3 ahead → affected
        assert!(d.affecting(0, 0, 7, t).is_some());
        // segment 6: 4 ahead → still affected (≤ 4)
        assert!(d.affecting(0, 0, 6, t).is_some());
        // segment 5: 5 ahead → out of range
        assert!(d.affecting(0, 0, 5, t).is_none());
        // behind the accident → unaffected
        assert!(d.affecting(0, 0, 12, t).is_none());
        // westbound direction → unaffected
        assert!(d.affecting(0, 1, 12, t).is_none());
        // other expressway → unaffected
        assert!(d.affecting(1, 0, 9, t).is_none());
    }

    #[test]
    fn no_duplicate_accidents_same_location() {
        let mut d = AccidentDetector::new();
        stop_car(&mut d, 1, 300, 0);
        stop_car(&mut d, 2, 300, 0);
        // a third car stops at the same place: same accident, no new one
        let r = stop_car(&mut d, 3, 300, 0);
        assert!(r.is_none());
        assert_eq!(d.accidents().len(), 1);
    }

    #[test]
    fn evict_idle_trims_tracks() {
        let mut d = AccidentDetector::new();
        d.observe(&report(0, 1, 100));
        d.observe(&report(500, 2, 200));
        d.evict_idle(400);
        // car 1 starts a fresh streak after eviction
        for i in 0..STOPPED_REPORTS as i64 {
            d.observe(&report(600 + i * 30, 1, 100));
        }
        assert!(d.accidents().is_empty(), "streak restarted after eviction");
    }
}
