//! Shared arrangements: per-(basket, key column) hash indexes that many
//! standing queries reuse instead of each rebuilding a join hash table per
//! firing.
//!
//! An arrangement maps key values to the ascending row positions holding
//! them, mirroring the build side of `monet::ops::join::hash_join` (NULL
//! keys are never indexed). It is tagged with the basket's *delete
//! generation*: under the append-only delta premise the generation is
//! stable and `advance` only indexes rows `[upto..len)`; any generation
//! bump (delete/compact/drain) invalidates positions and forces a rebuild
//! — that rebuild is also the compaction step, since it drops entries for
//! rows that no longer exist.
//!
//! K factories sharing a `(basket, key)` pair hold `Arc` handles to the
//! same arrangement; `ArrangementRegistry::sweep` drops entries no query
//! holds anymore.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use monet::column::{Column, ColumnData};
use monet::value::Value;

/// Exact-value hash key over SQL values: doubles key by bit pattern (NaN
/// groups with NaN), Int and Ts share a key space (they hash-join against
/// each other).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ArrKey {
    Null,
    Bool(bool),
    Int(i64),
    Bits(u64),
    Str(String),
}

impl ArrKey {
    /// Key for one position of a column; `Null` for invalid entries.
    pub fn at(col: &Column, pos: usize) -> ArrKey {
        if !col.is_valid(pos) {
            return ArrKey::Null;
        }
        match col.data() {
            ColumnData::Bool(v) => ArrKey::Bool(v[pos]),
            ColumnData::Int(v) | ColumnData::Ts(v) => ArrKey::Int(v[pos]),
            ColumnData::Double(v) => ArrKey::Bits(v[pos].to_bits()),
            ColumnData::Str(v) => ArrKey::Str(v[pos].clone()),
        }
    }

    /// Key for an owned value (used for group accumulators).
    pub fn from_value(v: &Value) -> ArrKey {
        match v {
            Value::Null => ArrKey::Null,
            Value::Bool(b) => ArrKey::Bool(*b),
            Value::Int(i) | Value::Ts(i) => ArrKey::Int(*i),
            Value::Double(d) => ArrKey::Bits(d.to_bits()),
            Value::Str(s) => ArrKey::Str(s.clone()),
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            ArrKey::Str(s) => s.capacity(),
            _ => 0,
        }
    }
}

/// A key → ascending-positions index over one column of one basket.
#[derive(Debug, Default)]
pub struct KeyArrangement {
    /// Delete generation of the basket the positions refer to.
    gen: u64,
    /// Rows `[0..upto)` are indexed.
    upto: usize,
    index: HashMap<ArrKey, Vec<u32>>,
    /// Heap-footprint estimate, maintained on insert so `bytes()` is
    /// O(1) — it is read on every firing.
    bytes: usize,
}

impl KeyArrangement {
    /// Extend the index so it covers `col[0..col.len())` at generation
    /// `gen`. A generation change rebuilds from scratch (positions may
    /// have shifted); a same-generation column *shorter* than what is
    /// already indexed is a no-op — the index is a superset and probes
    /// clamp with their own `limit`. Idempotent and monotone: concurrent
    /// factories holding snapshots of different lengths at the same
    /// generation can advance in any order without shrinking the index
    /// under each other.
    pub fn advance(&mut self, col: &Column, gen: u64) {
        if gen != self.gen {
            self.index.clear();
            self.upto = 0;
            self.gen = gen;
            self.bytes = 0;
        }
        if col.len() <= self.upto {
            return;
        }
        for pos in self.upto..col.len() {
            if !col.is_valid(pos) {
                continue; // NULL keys never match
            }
            let key = ArrKey::at(col, pos);
            match self.index.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    self.bytes += 48 + e.key().heap_bytes() + 4;
                    e.insert(vec![pos as u32]);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    self.bytes += 4;
                    e.get_mut().push(pos as u32);
                }
            }
        }
        self.upto = col.len();
    }

    /// Matching positions `< limit` for a probe key, ascending. `limit`
    /// restricts to this query's snapshot length — the shared index may
    /// have been advanced further by a factory with a newer snapshot.
    pub fn probe(&self, key: &ArrKey, limit: usize, out: &mut Vec<u32>) {
        if let Some(positions) = self.index.get(key) {
            for &p in positions {
                if (p as usize) >= limit {
                    break; // positions are ascending
                }
                out.push(p);
            }
        }
    }

    /// Generation the positions refer to.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Rows indexed so far.
    pub fn indexed_rows(&self) -> usize {
        self.upto
    }

    /// Rough heap footprint (incrementally maintained, O(1)).
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// A shared, lock-guarded arrangement handle.
pub type ArrangementHandle = Arc<Mutex<KeyArrangement>>;

/// Engine-wide registry of shared arrangements, keyed by
/// `(basket, key column)`. Factories look up a handle once per firing;
/// `Arc::strong_count` on a handle tells how many queries share it.
#[derive(Debug, Default)]
pub struct ArrangementRegistry {
    map: Mutex<HashMap<(String, String), ArrangementHandle>>,
}

impl ArrangementRegistry {
    pub fn new() -> Self {
        ArrangementRegistry::default()
    }

    /// Shared handle for `(table, column)`, creating an empty arrangement
    /// on first use.
    pub fn handle(&self, table: &str, column: &str) -> ArrangementHandle {
        let mut map = self.map.lock().expect("arrangement registry poisoned");
        map.entry((table.to_string(), column.to_string()))
            .or_default()
            .clone()
    }

    /// Drop every arrangement over `table` — required when a basket is
    /// removed, since a later basket reusing the name would restart at
    /// delete generation 0 and silently alias the stale index.
    pub fn purge(&self, table: &str) -> usize {
        let mut map = self.map.lock().expect("arrangement registry poisoned");
        let before = map.len();
        map.retain(|(t, _), _| t != table);
        before - map.len()
    }

    /// Drop arrangements no query currently holds (compaction knob: keeps
    /// the registry from pinning indexes for retired queries).
    pub fn sweep(&self) -> usize {
        let mut map = self.map.lock().expect("arrangement registry poisoned");
        let before = map.len();
        map.retain(|_, arr| Arc::strong_count(arr) > 1);
        before - map.len()
    }

    /// `(table, column, indexed_rows, bytes, holders)` per arrangement,
    /// sorted — the EXPLAIN/STATS view of shared state.
    pub fn describe(&self) -> Vec<(String, String, usize, usize, usize)> {
        let map = self.map.lock().expect("arrangement registry poisoned");
        let mut rows: Vec<_> = map
            .iter()
            .map(|((t, c), arr)| {
                let holders = Arc::strong_count(arr) - 1; // minus the registry's own ref
                let a = arr.lock().expect("arrangement poisoned");
                (t.clone(), c.clone(), a.indexed_rows(), a.bytes(), holders)
            })
            .collect();
        rows.sort();
        rows
    }

    /// Total bytes across all registered arrangements.
    pub fn total_bytes(&self) -> usize {
        let map = self.map.lock().expect("arrangement registry poisoned");
        map.values()
            .map(|a| a.lock().expect("arrangement poisoned").bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_is_incremental_and_gen_checked() {
        let col = Column::from_ints(vec![1, 2, 1, 3]);
        let mut arr = KeyArrangement::default();
        arr.advance(&col, 0);
        assert_eq!(arr.indexed_rows(), 4);
        let mut hits = Vec::new();
        arr.probe(&ArrKey::Int(1), 4, &mut hits);
        assert_eq!(hits, vec![0, 2]);

        // appending more rows extends in place
        let col2 = Column::from_ints(vec![1, 2, 1, 3, 1]);
        arr.advance(&col2, 0);
        hits.clear();
        arr.probe(&ArrKey::Int(1), 5, &mut hits);
        assert_eq!(hits, vec![0, 2, 4]);

        // limit hides rows beyond this query's snapshot
        hits.clear();
        arr.probe(&ArrKey::Int(1), 3, &mut hits);
        assert_eq!(hits, vec![0, 2]);

        // a generation bump rebuilds (positions may have shifted)
        let col3 = Column::from_ints(vec![2, 1]);
        arr.advance(&col3, 1);
        assert_eq!(arr.indexed_rows(), 2);
        hits.clear();
        arr.probe(&ArrKey::Int(1), 2, &mut hits);
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn null_keys_are_not_indexed() {
        let mut col = Column::new(monet::value::ValueType::Int);
        col.push(Value::Null).unwrap();
        col.push(Value::Int(7)).unwrap();
        let mut arr = KeyArrangement::default();
        arr.advance(&col, 0);
        let mut hits = Vec::new();
        arr.probe(&ArrKey::Null, 2, &mut hits);
        assert!(hits.is_empty());
        arr.probe(&ArrKey::Int(7), 2, &mut hits);
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn registry_shares_and_sweeps() {
        let reg = ArrangementRegistry::new();
        let h1 = reg.handle("S", "a");
        let h2 = reg.handle("S", "a");
        assert!(Arc::ptr_eq(&h1, &h2));
        assert_eq!(reg.describe()[0].4, 2, "two holders");
        drop(h1);
        drop(h2);
        assert_eq!(reg.sweep(), 1);
        assert!(reg.describe().is_empty());
    }

    #[test]
    fn ts_and_int_share_key_space() {
        assert_eq!(
            ArrKey::from_value(&Value::Ts(5)),
            ArrKey::from_value(&Value::Int(5))
        );
    }
}
