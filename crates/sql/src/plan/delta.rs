//! Delta (incremental) execution of standing join / group-by statements.
//!
//! The interpreter re-runs a standing query over the *whole* resident
//! basket every firing — O(basket) per round. This module compiles the
//! two shapes that dominate standing workloads into operators that carry
//! state between firings and touch only the rows appended since the last
//! one:
//!
//! * **hash_join** — two plain base scans joined on the interpreter's
//!   first clean equi-conjunct. Join hash tables live in shared
//!   [`crate::plan::arrange`] arrangements; the accumulated surviving
//!   pair list (sorted by `(l, r)`, exactly the kernel's emission order)
//!   is the per-statement state.
//! * **grouped_agg** — a single plain base scan with aggregates. State
//!   is the first-seen group map plus per-group accumulators replicating
//!   the monet `agg_*` fold semantics in append order (so even float
//!   sums are bit-identical to full re-execution).
//!
//! **Delta premise.** Incremental execution is sound iff the scanned
//! baskets are append-only since the statement's last committed firing:
//! the basket's delete generation is unchanged and its snapshot is at
//! least as long. Any delete/compact/drain bumps the generation and the
//! statement falls back to full re-execution (rebuilding arrangements —
//! which is also their compaction). Reads of variables or `now()` poison
//! the plan's state: results could depend on values that change between
//! firings, so every later firing re-executes from scratch.
//!
//! **Parity net.** Any error inside a delta operator defers the
//! statement to the AST interpreter, whose result (or error) is
//! authoritative; state resets and the premise re-replays the same rows
//! next firing. Delta execution is therefore a pure performance
//! optimization: per firing it produces exactly the
//! [`crate::exec::execute_script`] effects.

use std::cell::Cell;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;

use monet::column::ColumnData;
use monet::error::MonetError;
use monet::ops::select::select_true;
use monet::prelude::*;

use crate::ast::{BinOp, Expr, FromItem, SelectItem, SelectStmt, Stmt};
use crate::error::{Result, SqlError};
use crate::exec::eval::{eval_expr, resolve_column};
use crate::exec::select::{
    base_scan, empty_aggregate_value, grouped_tail, merge_joined, plain_pipeline,
    rewrite_for_grouping,
};
use crate::exec::{Effects, ExecEnv, QueryContext};
use crate::plan::arrange::{ArrKey, ArrangementRegistry, KeyArrangement};
use crate::plan::{PlannedStmt, Sink};

// ---- compiled shapes --------------------------------------------------------

/// One plain base-table scan.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ScanSpec {
    pub table: String,
    pub binding: String,
}

/// Two-scan equi-join.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct JoinShape {
    pub left: ScanSpec,
    pub right: ScanSpec,
    /// `(qualifier, column)` of the join key on each side, as written.
    pub lkey: (String, String),
    pub rkey: (String, String),
    /// Index into [`DeltaQuery::conjuncts`] consumed as the key; the
    /// rest are residual filters applied in source order.
    pub key_idx: usize,
}

/// Single-scan grouped aggregation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct GroupShape {
    pub scan: ScanSpec,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum DeltaShape {
    Join(JoinShape),
    Group(GroupShape),
}

/// A statement compiled for delta execution.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DeltaQuery {
    pub sink: Sink,
    pub select: SelectStmt,
    /// WHERE conjuncts in source order.
    pub conjuncts: Vec<Expr>,
    pub shape: DeltaShape,
    /// The original statement — the interpreter fallback on any error.
    pub src: Stmt,
}

/// Compile a statement into a delta shape, or `None` when it must stay
/// on the interpreter. Conservative: only shapes whose interpreter
/// execution is statically predictable qualify.
pub(crate) fn try_delta(stmt: &Stmt) -> Option<DeltaQuery> {
    let (sink, s) = match stmt {
        Stmt::Select(s) => (Sink::Result, s),
        Stmt::Insert {
            table,
            columns,
            source,
        } => (
            Sink::Insert {
                table: table.clone(),
                columns: columns.clone(),
            },
            source,
        ),
        _ => return None,
    };
    if s.union.is_some() || select_has_subquery(s) {
        return None;
    }
    let has_aggregates = s
        .projection
        .iter()
        .any(|p| matches!(p, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || s.having.as_ref().is_some_and(|h| h.contains_aggregate())
        || !s.group_by.is_empty();
    let conjuncts: Vec<Expr> = s
        .where_clause
        .as_ref()
        .map(|w| w.conjuncts().into_iter().cloned().collect())
        .unwrap_or_default();

    let shape = if has_aggregates {
        let [item] = s.from.as_slice() else { return None };
        DeltaShape::Group(GroupShape {
            scan: scan_spec(item)?,
        })
    } else {
        let [litem, ritem] = s.from.as_slice() else {
            return None;
        };
        let left = scan_spec(litem)?;
        let right = scan_spec(ritem)?;
        if left.binding == right.binding {
            return None;
        }
        let key = find_join_key(&conjuncts, &left.binding, &right.binding)?;
        DeltaShape::Join(JoinShape {
            left,
            right,
            lkey: key.1,
            rkey: key.2,
            key_idx: key.0,
        })
    };
    Some(DeltaQuery {
        sink,
        select: s.clone(),
        conjuncts,
        shape,
        src: stmt.clone(),
    })
}

fn scan_spec(item: &FromItem) -> Option<ScanSpec> {
    let FromItem::Table { name, alias } = item else {
        return None;
    };
    Some(ScanSpec {
        table: name.clone(),
        binding: alias.clone().unwrap_or_else(|| name.clone()),
    })
}

type JoinKey = (usize, (String, String), (String, String));

/// The interpreter picks the first unused `col = col` conjunct whose
/// sides resolve one-per-scan. We only accept a conjunct where both
/// sides are explicitly qualified with the two scan bindings (one each):
/// that choice is statically certain. Same-side or foreign qualifiers
/// can never satisfy the interpreter's resolution pattern, so they are
/// skipped here exactly as they are there; an *unqualified* side makes
/// the runtime choice data-dependent — bail out entirely.
fn find_join_key(conjuncts: &[Expr], lbind: &str, rbind: &str) -> Option<JoinKey> {
    for (i, c) in conjuncts.iter().enumerate() {
        let Expr::Binary {
            op: BinOp::Eq,
            left: a,
            right: b,
        } = c
        else {
            continue;
        };
        let (
            Expr::Column {
                qualifier: qa,
                name: na,
            },
            Expr::Column {
                qualifier: qb,
                name: nb,
            },
        ) = (a.as_ref(), b.as_ref())
        else {
            continue;
        };
        let (Some(qa), Some(qb)) = (qa, qb) else {
            return None;
        };
        if qa == lbind && qb == rbind {
            return Some((i, (qa.clone(), na.clone()), (qb.clone(), nb.clone())));
        }
        if qa == rbind && qb == lbind {
            return Some((i, (qb.clone(), nb.clone()), (qa.clone(), na.clone())));
        }
    }
    None
}

fn select_has_subquery(s: &SelectStmt) -> bool {
    s.projection
        .iter()
        .filter_map(|p| match p {
            SelectItem::Expr { expr, .. } => Some(expr),
            _ => None,
        })
        .chain(s.where_clause.iter())
        .chain(s.group_by.iter())
        .chain(s.having.iter())
        .chain(s.order_by.iter().map(|(e, _)| e))
        .any(expr_has_subquery)
}

fn expr_has_subquery(e: &Expr) -> bool {
    match e {
        Expr::ScalarSubquery(_) => true,
        Expr::Column { .. } | Expr::Literal(_) => false,
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr_has_subquery(expr),
        Expr::Binary { left, right, .. } => {
            expr_has_subquery(left) || expr_has_subquery(right)
        }
        Expr::Between { expr, lo, hi, .. } => {
            expr_has_subquery(expr) || expr_has_subquery(lo) || expr_has_subquery(hi)
        }
        Expr::InList { expr, list, .. } => {
            expr_has_subquery(expr) || list.iter().any(expr_has_subquery)
        }
        Expr::FuncCall { args, .. } => args.iter().any(expr_has_subquery),
    }
}

// ---- carried state ----------------------------------------------------------

/// Cursor + operator state one standing plan carries between firings.
/// Committed by the factory only after a firing's effects apply, so a
/// failed generation check simply replays against the previous state.
#[derive(Debug, Default, Clone)]
pub struct PlanDeltaState {
    stmts: Vec<StmtState>,
    poisoned: bool,
}

impl PlanDeltaState {
    /// Rough heap footprint of the private (non-shared) operator state.
    pub fn bytes(&self) -> usize {
        self.stmts.iter().map(StmtState::bytes).sum()
    }

    /// A variable/`now()` read was observed under delta execution;
    /// every later firing re-executes from scratch.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

#[derive(Debug, Default, Clone)]
enum StmtState {
    #[default]
    None,
    Join(JoinState),
    Group(GroupState),
}

impl StmtState {
    fn bytes(&self) -> usize {
        match self {
            StmtState::None => 0,
            StmtState::Join(j) => (j.lpairs.capacity() + j.rpairs.capacity()) * 4,
            StmtState::Group(g) => g.bytes(),
        }
    }
}

#[derive(Debug, Default, Clone)]
struct JoinState {
    lgen: u64,
    rgen: u64,
    /// Snapshot lengths already folded into `lpairs`/`rpairs`.
    llen: usize,
    rlen: usize,
    /// Surviving (post-residual) pairs sorted by `(l, r)` — exactly the
    /// interpreter's hash-join emission order.
    lpairs: Vec<u32>,
    rpairs: Vec<u32>,
}

#[derive(Debug, Default, Clone)]
struct GroupState {
    gen: u64,
    /// Snapshot length already folded into the accumulators.
    processed: usize,
    /// Group key → dense gid, first-seen order (kernel semantics).
    groups: HashMap<Vec<ArrKey>, u32>,
    /// First-row values per group, over the qualified base columns.
    reps: Vec<Vec<Value>>,
    /// Accumulator per `#agg:k` column.
    accs: Vec<AggAcc>,
}

impl GroupState {
    fn bytes(&self) -> usize {
        let keys: usize = self
            .groups
            .keys()
            .map(|k| 48 + k.iter().map(key_heap).sum::<usize>())
            .sum();
        let reps: usize = self
            .reps
            .iter()
            .map(|r| r.iter().map(value_bytes).sum::<usize>())
            .sum();
        keys + reps + self.accs.iter().map(AggAcc::bytes).sum::<usize>()
    }
}

fn key_heap(k: &ArrKey) -> usize {
    match k {
        ArrKey::Str(s) => 16 + s.capacity(),
        _ => 16,
    }
}

fn value_bytes(v: &Value) -> usize {
    match v {
        Value::Str(s) => 24 + s.capacity(),
        _ => 24,
    }
}

// ---- per-firing accounting --------------------------------------------------

/// What the delta layer did in one firing, for FireReport/STATS.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct DeltaOutcome {
    /// Rows fed through incrementally-executed statements this firing.
    pub delta_rows: u64,
    /// Delta-capable statements that ran incrementally.
    pub delta_stmts: u64,
    /// Delta-capable statements that re-executed from scratch
    /// (the bootstrap firing included).
    pub full_reexecutes: u64,
    /// Private accumulator/pair-list state after this firing.
    pub state_bytes: u64,
    /// Bytes of the arrangements this plan's statements probed (shared
    /// arrangements count once per statement using them).
    pub arrangement_bytes: u64,
    /// Fallback reasons hit this firing. Fixed vocabulary:
    /// `first|generation|shrunk|untracked|variable|error`.
    pub fallbacks: Vec<&'static str>,
}

/// Every reason [`DeltaOutcome::fallbacks`] can carry — telemetry
/// pre-creates one counter per reason.
pub const FALLBACK_REASONS: &[&str] = &[
    "first",
    "generation",
    "shrunk",
    "untracked",
    "variable",
    "error",
];

enum Mode {
    Incremental { rows: u64 },
    Full { reason: &'static str },
}

// ---- variable poisoning -----------------------------------------------------

/// Context wrapper recording whether delta execution consulted a
/// variable or the clock — values that may change between firings and
/// therefore invalidate accumulated state.
struct VarGuard<'a> {
    inner: &'a dyn QueryContext,
    hit: Cell<bool>,
}

impl<'a> VarGuard<'a> {
    fn new(inner: &'a dyn QueryContext) -> Self {
        VarGuard {
            inner,
            hit: Cell::new(false),
        }
    }
}

impl QueryContext for VarGuard<'_> {
    fn relation(&self, name: &str) -> Result<Relation> {
        self.inner.relation(name)
    }

    fn columns(&self, name: &str, wanted: &[String]) -> Result<Relation> {
        self.inner.columns(name, wanted)
    }

    fn get_var(&self, name: &str) -> Option<Value> {
        self.hit.set(true);
        self.inner.get_var(name)
    }

    fn now(&self) -> i64 {
        self.hit.set(true);
        self.inner.now()
    }

    fn scan_counter(&self) -> Option<&std::sync::atomic::AtomicU64> {
        self.inner.scan_counter()
    }
}

// ---- execution --------------------------------------------------------------

pub(crate) struct StandingResult {
    pub effects: Effects,
    pub outcome: DeltaOutcome,
    pub state: PlanDeltaState,
}

/// Fire a compiled script as a standing query. `spans` maps each
/// snapshotted table to its delete generation; a table absent from the
/// map is untracked (catalog tables) and forces full re-execution of
/// statements scanning it.
pub(crate) fn run_standing(
    stmts: &[PlannedStmt],
    ctx: &dyn QueryContext,
    spans: &HashMap<String, u64>,
    prev: &PlanDeltaState,
    registry: Option<&ArrangementRegistry>,
) -> Result<StandingResult> {
    let guard = VarGuard::new(ctx);
    let mut env = ExecEnv::default();
    let mut effects = Effects::default();
    let mut outcome = DeltaOutcome::default();
    let mut next = PlanDeltaState {
        stmts: vec![StmtState::None; stmts.len()],
        poisoned: prev.poisoned,
    };
    for (i, ps) in stmts.iter().enumerate() {
        let fx = match ps {
            PlannedStmt::Fast(f) => super::run_fast(f, ctx, &mut env)?,
            PlannedStmt::Interpret(s) => crate::exec::execute_in_env(s, ctx, &mut env)?,
            PlannedStmt::Delta(d) => {
                let prior = prev.stmts.get(i);
                let (fx, st) = run_delta_stmt(
                    d,
                    &guard,
                    &mut env,
                    Some(spans),
                    prior,
                    prev.poisoned,
                    registry,
                    &mut outcome,
                )?;
                next.stmts[i] = st;
                fx
            }
        };
        effects.merge(fx);
    }
    if guard.hit.get() && !next.poisoned {
        // Results may depend on values that change between firings;
        // nothing accumulated under a variable read can be reused. The
        // bootstrap firing (always from scratch) is where any structural
        // variable read first surfaces, so no incremental output was
        // emitted under it.
        next.poisoned = true;
        for st in &mut next.stmts {
            *st = StmtState::None;
        }
    }
    outcome.state_bytes = next.bytes() as u64;
    Ok(StandingResult {
        effects,
        outcome,
        state: next,
    })
}

/// One-shot execution (`PhysicalPlan::execute`): always from scratch
/// with transient state — semantics identical to the interpreter.
pub(crate) fn run_oneshot(
    q: &DeltaQuery,
    ctx: &dyn QueryContext,
    env: &mut ExecEnv,
) -> Result<Effects> {
    let mut outcome = DeltaOutcome::default();
    let (fx, _) = run_delta_stmt(q, ctx, env, None, None, false, None, &mut outcome)?;
    Ok(fx)
}

#[allow(clippy::too_many_arguments)]
fn run_delta_stmt(
    q: &DeltaQuery,
    ctx: &dyn QueryContext,
    env: &mut ExecEnv,
    spans: Option<&HashMap<String, u64>>,
    prior: Option<&StmtState>,
    poisoned: bool,
    registry: Option<&ArrangementRegistry>,
    outcome: &mut DeltaOutcome,
) -> Result<(Effects, StmtState)> {
    let attempt = match &q.shape {
        DeltaShape::Join(j) => {
            run_join(q, j, ctx, env, spans, prior, poisoned, registry, outcome)
        }
        DeltaShape::Group(g) => run_group(q, g, ctx, env, spans, prior, poisoned),
    };
    match attempt {
        Ok((fx, st, mode)) => {
            match mode {
                Mode::Incremental { rows } => {
                    outcome.delta_stmts += 1;
                    outcome.delta_rows += rows;
                }
                Mode::Full { reason } => {
                    outcome.full_reexecutes += 1;
                    outcome.fallbacks.push(reason);
                }
            }
            Ok((fx, st))
        }
        Err(_) => {
            // Parity net: the interpreter's result (or error) is
            // authoritative. State resets; the unchanged premise
            // replays the same rows next firing.
            outcome.full_reexecutes += 1;
            outcome.fallbacks.push("error");
            let fx = crate::exec::execute_in_env(&q.src, ctx, env)?;
            Ok((fx, StmtState::None))
        }
    }
}

fn sink_effects(sink: &Sink, rel: Relation) -> Effects {
    match sink {
        Sink::Result => Effects {
            result: Some(rel),
            ..Effects::default()
        },
        Sink::Insert { table, columns } => Effects {
            inserts: vec![(table.clone(), columns.clone(), rel)],
            ..Effects::default()
        },
    }
}

/// Decide full-re-execution vs incremental for one statement. Returns
/// the fallback reason, or `None` when the premise holds.
fn full_reason(
    poisoned: bool,
    spans: Option<&HashMap<String, u64>>,
    scans: &[(&str, usize)], // (table, current snapshot length)
    prior_ok: bool,
    prior_matches: impl Fn() -> Option<&'static str>,
) -> Option<&'static str> {
    if poisoned {
        return Some("variable");
    }
    let Some(spans) = spans else {
        return Some("first"); // one-shot: plain bootstrap semantics
    };
    if scans.iter().any(|(t, _)| !spans.contains_key(*t)) {
        return Some("untracked");
    }
    if !prior_ok {
        return Some("first");
    }
    prior_matches()
}

// ---- hash join --------------------------------------------------------------

fn check_join_types(l: &Column, r: &Column) -> Result<()> {
    match (l.data(), r.data()) {
        (
            ColumnData::Int(_) | ColumnData::Ts(_),
            ColumnData::Int(_) | ColumnData::Ts(_),
        )
        | (ColumnData::Str(_), ColumnData::Str(_)) => Ok(()),
        _ => Err(MonetError::TypeMismatch {
            op: "hash_join",
            expected: l.vtype(),
            found: r.vtype(),
        }
        .into()),
    }
}

/// Advance (or privately build) the arrangement for `(table, column)`
/// and run `f` against it. The shared handle is only used when its
/// generation is not ahead of ours — a newer-generation snapshot owns
/// it; we fall back to a transient index for this firing.
fn with_arrangement<T>(
    registry: Option<&ArrangementRegistry>,
    table: &str,
    column: &str,
    col: &Column,
    gen: Option<u64>,
    f: impl FnOnce(&KeyArrangement) -> T,
) -> (T, usize) {
    if let (Some(reg), Some(gen)) = (registry, gen) {
        let handle = reg.handle(table, column);
        let mut arr = handle.lock().expect("arrangement poisoned");
        if arr.generation() <= gen {
            arr.advance(col, gen);
            let out = f(&arr);
            let bytes = arr.bytes();
            return (out, bytes);
        }
    }
    let mut arr = KeyArrangement::default();
    arr.advance(col, gen.unwrap_or(0));
    let out = f(&arr);
    let bytes = arr.bytes();
    (out, bytes)
}

#[allow(clippy::too_many_arguments)]
fn run_join(
    q: &DeltaQuery,
    j: &JoinShape,
    ctx: &dyn QueryContext,
    env: &mut ExecEnv,
    spans: Option<&HashMap<String, u64>>,
    prior: Option<&StmtState>,
    poisoned: bool,
    registry: Option<&ArrangementRegistry>,
    outcome: &mut DeltaOutcome,
) -> Result<(Effects, StmtState, Mode)> {
    let lrel = base_scan(ctx, &j.left.table, &j.left.binding)?;
    let rrel = base_scan(ctx, &j.right.table, &j.right.binding)?;
    let (llen_now, rlen_now) = (lrel.len(), rrel.len());
    let lcol = lrel.col_at(resolve_column(&lrel, Some(j.lkey.0.as_str()), &j.lkey.1)?);
    let rcol = rrel.col_at(resolve_column(&rrel, Some(j.rkey.0.as_str()), &j.rkey.1)?);
    check_join_types(lcol, rcol)?;

    let lgen = spans.and_then(|m| m.get(&j.left.table).copied());
    let rgen = spans.and_then(|m| m.get(&j.right.table).copied());
    let prior = match prior {
        Some(StmtState::Join(p)) => Some(p),
        _ => None,
    };
    let reason = full_reason(
        poisoned,
        spans,
        &[(&j.left.table, llen_now), (&j.right.table, rlen_now)],
        prior.is_some(),
        || {
            let p = prior.expect("checked");
            if Some(p.lgen) != lgen || Some(p.rgen) != rgen {
                Some("generation")
            } else if p.llen > llen_now || p.rlen > rlen_now {
                Some("shrunk")
            } else {
                None
            }
        },
    );
    let mut state = match (reason, prior) {
        (None, Some(p)) => p.clone(),
        _ => JoinState::default(),
    };
    let (llen0, rlen0) = (state.llen, state.rlen);

    // Old-left × Δright first: all its left positions are < llen0, so
    // concatenating it (sorted) before Δleft × right keeps the global
    // (l, r) order the full hash join would emit.
    let mut pairs_b: Vec<(u32, u32)> = Vec::new();
    let ((), lbytes) = with_arrangement(
        registry,
        &j.left.table,
        &j.lkey.1,
        lcol,
        lgen,
        |arr| {
            let mut hits = Vec::new();
            for rpos in rlen0..rlen_now {
                if !rcol.is_valid(rpos) {
                    continue;
                }
                hits.clear();
                arr.probe(&ArrKey::at(rcol, rpos), llen0, &mut hits);
                for &lpos in &hits {
                    pairs_b.push((lpos, rpos as u32));
                }
            }
        },
    );
    pairs_b.sort_unstable();

    let mut new_l: Vec<u32> = pairs_b.iter().map(|&(l, _)| l).collect();
    let mut new_r: Vec<u32> = pairs_b.iter().map(|&(_, r)| r).collect();
    let ((), rbytes) = with_arrangement(
        registry,
        &j.right.table,
        &j.rkey.1,
        rcol,
        rgen,
        |arr| {
            let mut hits = Vec::new();
            for lpos in llen0..llen_now {
                if !lcol.is_valid(lpos) {
                    continue;
                }
                hits.clear();
                arr.probe(&ArrKey::at(lcol, lpos), rlen_now, &mut hits);
                for &rpos in &hits {
                    new_l.push(lpos as u32);
                    new_r.push(rpos);
                }
            }
        },
    );
    outcome.arrangement_bytes += (lbytes + rbytes) as u64;

    // Residual conjuncts over the newly joined rows, in source order.
    if !q.conjuncts.is_empty() && !new_l.is_empty() {
        let mut jrel = merge_joined(&lrel, &rrel, &new_l, &new_r)?;
        for (ci, c) in q.conjuncts.iter().enumerate() {
            if ci == j.key_idx {
                continue;
            }
            let mask = eval_expr(c, &jrel, ctx, env)?;
            let sel = select_true(&mask, None)?;
            jrel = jrel.gather(&sel)?;
            new_l = sel.iter().map(|p| new_l[p as usize]).collect();
            new_r = sel.iter().map(|p| new_r[p as usize]).collect();
        }
    } else if !q.conjuncts.is_empty() {
        // Error parity: the interpreter evaluates residuals even over an
        // empty join — surface the same structural errors (unknown
        // columns etc.) it would.
        let mut jrel = merge_joined(&lrel, &rrel, &new_l, &new_r)?;
        for (ci, c) in q.conjuncts.iter().enumerate() {
            if ci == j.key_idx {
                continue;
            }
            let mask = eval_expr(c, &jrel, ctx, env)?;
            let sel = select_true(&mask, None)?;
            jrel = jrel.gather(&sel)?;
        }
    }

    let (acc_l, acc_r) = merge_pairs(&state.lpairs, &state.rpairs, &new_l, &new_r);
    let full = merge_joined(&lrel, &rrel, &acc_l, &acc_r)?;
    let out = plain_pipeline(&q.select, full, ctx, env, false, &mut Vec::new())?;

    let mode = match reason {
        Some(r) => Mode::Full { reason: r },
        None => {
            let rows = (llen_now - llen0 + rlen_now - rlen0) as u64;
            // `relation()` counted the whole snapshots; delta execution
            // only touched the appended suffixes.
            if let Some(c) = ctx.scan_counter() {
                c.fetch_sub((llen0 + rlen0) as u64, Ordering::Relaxed);
            }
            Mode::Incremental { rows }
        }
    };
    state = JoinState {
        lgen: lgen.unwrap_or(0),
        rgen: rgen.unwrap_or(0),
        llen: llen_now,
        rlen: rlen_now,
        lpairs: acc_l,
        rpairs: acc_r,
    };
    Ok((sink_effects(&q.sink, out), StmtState::Join(state), mode))
}

/// Merge two `(l, r)`-sorted pair lists. The lists are disjoint (old
/// pairs have both sides below the previous snapshot lengths; new pairs
/// have at least one side above), so this is a plain ordered merge.
fn merge_pairs(
    al: &[u32],
    ar: &[u32],
    bl: &[u32],
    br: &[u32],
) -> (Vec<u32>, Vec<u32>) {
    let mut ol = Vec::with_capacity(al.len() + bl.len());
    let mut orr = Vec::with_capacity(ar.len() + br.len());
    let (mut i, mut k) = (0usize, 0usize);
    while i < al.len() && k < bl.len() {
        if (al[i], ar[i]) <= (bl[k], br[k]) {
            ol.push(al[i]);
            orr.push(ar[i]);
            i += 1;
        } else {
            ol.push(bl[k]);
            orr.push(br[k]);
            k += 1;
        }
    }
    ol.extend_from_slice(&al[i..]);
    orr.extend_from_slice(&ar[i..]);
    ol.extend_from_slice(&bl[k..]);
    orr.extend_from_slice(&br[k..]);
    (ol, orr)
}

// ---- grouped aggregation ----------------------------------------------------

/// Per-group accumulator replicating one monet `agg_*` kernel's fold in
/// append order, so materialized columns are bit-identical to a full
/// re-execution (including float summation order and Int wrapping).
#[derive(Debug, Clone)]
enum AggAcc {
    CountStar {
        counts: Vec<i64>,
    },
    Count {
        counts: Vec<i64>,
    },
    SumInt {
        sums: Vec<i64>,
        seen: Vec<bool>,
    },
    SumDouble {
        sums: Vec<f64>,
        seen: Vec<bool>,
    },
    AvgInt {
        sums: Vec<i64>,
        counts: Vec<i64>,
    },
    AvgDouble {
        sums: Vec<f64>,
        counts: Vec<i64>,
    },
    Extreme {
        min: bool,
        vtype: ValueType,
        best: Vec<Option<Value>>,
    },
    CountDistinct {
        sets: Vec<HashSet<ArrKey>>,
    },
}

impl AggAcc {
    /// Pick the accumulator for an aggregate, replicating the kernels'
    /// type dispatch and errors exactly.
    fn new(name: &str, arg: Option<&Column>) -> Result<AggAcc> {
        match (name, arg) {
            ("count", None) => Ok(AggAcc::CountStar { counts: Vec::new() }),
            ("count", Some(_)) => Ok(AggAcc::Count { counts: Vec::new() }),
            ("count_distinct", Some(_)) => Ok(AggAcc::CountDistinct { sets: Vec::new() }),
            ("sum", Some(c)) | ("avg", Some(c)) => {
                let avg = name == "avg";
                match c.data() {
                    ColumnData::Int(_) | ColumnData::Ts(_) => Ok(if avg {
                        AggAcc::AvgInt {
                            sums: Vec::new(),
                            counts: Vec::new(),
                        }
                    } else {
                        AggAcc::SumInt {
                            sums: Vec::new(),
                            seen: Vec::new(),
                        }
                    }),
                    ColumnData::Double(_) => Ok(if avg {
                        AggAcc::AvgDouble {
                            sums: Vec::new(),
                            counts: Vec::new(),
                        }
                    } else {
                        AggAcc::SumDouble {
                            sums: Vec::new(),
                            seen: Vec::new(),
                        }
                    }),
                    _ => Err(MonetError::TypeMismatch {
                        op: "agg_sum",
                        expected: ValueType::Int,
                        found: c.vtype(),
                    }
                    .into()),
                }
            }
            ("min", Some(c)) => Ok(AggAcc::Extreme {
                min: true,
                vtype: c.vtype(),
                best: Vec::new(),
            }),
            ("max", Some(c)) => Ok(AggAcc::Extreme {
                min: false,
                vtype: c.vtype(),
                best: Vec::new(),
            }),
            (other, _) => Err(SqlError::Exec(format!("unknown aggregate {other}"))),
        }
    }

    /// Fold one firing's delta rows. `gids[i]` is the group of row `i`
    /// of the filtered delta relation; `arg` is aligned with it.
    fn update(&mut self, ngroups: usize, gids: &[u32], arg: Option<&Column>) -> Result<()> {
        let type_changed = || SqlError::Exec("delta: aggregate input type changed".into());
        match self {
            AggAcc::CountStar { counts } => {
                counts.resize(ngroups, 0);
                for &g in gids {
                    counts[g as usize] += 1;
                }
            }
            AggAcc::Count { counts } => {
                let c = arg.ok_or_else(type_changed)?;
                counts.resize(ngroups, 0);
                for (i, &g) in gids.iter().enumerate() {
                    if c.is_valid(i) {
                        counts[g as usize] += 1;
                    }
                }
            }
            AggAcc::SumInt { sums, seen } => {
                let c = arg.ok_or_else(type_changed)?;
                let (ColumnData::Int(v) | ColumnData::Ts(v)) = c.data() else {
                    return Err(type_changed());
                };
                sums.resize(ngroups, 0);
                seen.resize(ngroups, false);
                for (i, &g) in gids.iter().enumerate() {
                    if c.is_valid(i) {
                        sums[g as usize] = sums[g as usize].wrapping_add(v[i]);
                        seen[g as usize] = true;
                    }
                }
            }
            AggAcc::SumDouble { sums, seen } => {
                let c = arg.ok_or_else(type_changed)?;
                let ColumnData::Double(v) = c.data() else {
                    return Err(type_changed());
                };
                sums.resize(ngroups, 0.0);
                seen.resize(ngroups, false);
                for (i, &g) in gids.iter().enumerate() {
                    if c.is_valid(i) {
                        sums[g as usize] += v[i];
                        seen[g as usize] = true;
                    }
                }
            }
            AggAcc::AvgInt { sums, counts } => {
                let c = arg.ok_or_else(type_changed)?;
                let (ColumnData::Int(v) | ColumnData::Ts(v)) = c.data() else {
                    return Err(type_changed());
                };
                sums.resize(ngroups, 0);
                counts.resize(ngroups, 0);
                for (i, &g) in gids.iter().enumerate() {
                    if c.is_valid(i) {
                        sums[g as usize] = sums[g as usize].wrapping_add(v[i]);
                        counts[g as usize] += 1;
                    }
                }
            }
            AggAcc::AvgDouble { sums, counts } => {
                let c = arg.ok_or_else(type_changed)?;
                let ColumnData::Double(v) = c.data() else {
                    return Err(type_changed());
                };
                sums.resize(ngroups, 0.0);
                counts.resize(ngroups, 0);
                for (i, &g) in gids.iter().enumerate() {
                    if c.is_valid(i) {
                        sums[g as usize] += v[i];
                        counts[g as usize] += 1;
                    }
                }
            }
            AggAcc::Extreme { min, vtype, best } => {
                let c = arg.ok_or_else(type_changed)?;
                if c.vtype() != *vtype {
                    return Err(type_changed());
                }
                best.resize(ngroups, None);
                for (i, &g) in gids.iter().enumerate() {
                    if !c.is_valid(i) {
                        continue;
                    }
                    let v = c.get(i);
                    let slot = &mut best[g as usize];
                    let replace = match slot {
                        None => true,
                        Some(cur) => match v.sql_cmp(cur) {
                            Some(std::cmp::Ordering::Less) => *min,
                            Some(std::cmp::Ordering::Greater) => !*min,
                            _ => false,
                        },
                    };
                    if replace {
                        *slot = Some(v);
                    }
                }
            }
            AggAcc::CountDistinct { sets } => {
                let c = arg.ok_or_else(type_changed)?;
                sets.resize(ngroups, HashSet::new());
                for (i, &g) in gids.iter().enumerate() {
                    if c.is_valid(i) {
                        sets[g as usize].insert(ArrKey::at(c, i));
                    }
                }
            }
        }
        Ok(())
    }

    /// Output type of the materialized `#agg:k` column — matches the
    /// kernel's output type, used for the empty-input synthetic row.
    fn vtype(&self) -> ValueType {
        match self {
            AggAcc::CountStar { .. }
            | AggAcc::Count { .. }
            | AggAcc::SumInt { .. }
            | AggAcc::CountDistinct { .. } => ValueType::Int,
            AggAcc::SumDouble { .. } | AggAcc::AvgInt { .. } | AggAcc::AvgDouble { .. } => {
                ValueType::Double
            }
            AggAcc::Extreme { vtype, .. } => *vtype,
        }
    }

    /// Materialize the per-group column, kernel-identical.
    fn column(&self) -> Result<Column> {
        let col = match self {
            AggAcc::CountStar { counts } | AggAcc::Count { counts } => {
                Column::from_ints(counts.clone())
            }
            AggAcc::SumInt { sums, seen } => {
                let mut out = Column::with_capacity(ValueType::Int, sums.len());
                for (&s, &ok) in sums.iter().zip(seen) {
                    out.push(if ok { Value::Int(s) } else { Value::Null })?;
                }
                out
            }
            AggAcc::SumDouble { sums, seen } => {
                let mut out = Column::with_capacity(ValueType::Double, sums.len());
                for (&s, &ok) in sums.iter().zip(seen) {
                    out.push(if ok { Value::Double(s) } else { Value::Null })?;
                }
                out
            }
            AggAcc::AvgInt { sums, counts } => {
                let mut out = Column::with_capacity(ValueType::Double, sums.len());
                for (&s, &n) in sums.iter().zip(counts) {
                    out.push(if n == 0 {
                        Value::Null
                    } else {
                        Value::Double(s as f64 / n as f64)
                    })?;
                }
                out
            }
            AggAcc::AvgDouble { sums, counts } => {
                let mut out = Column::with_capacity(ValueType::Double, sums.len());
                for (&s, &n) in sums.iter().zip(counts) {
                    out.push(if n == 0 {
                        Value::Null
                    } else {
                        Value::Double(s / n as f64)
                    })?;
                }
                out
            }
            AggAcc::Extreme { vtype, best, .. } => {
                let mut out = Column::with_capacity(*vtype, best.len());
                for b in best {
                    out.push(b.clone().unwrap_or(Value::Null))?;
                }
                out
            }
            AggAcc::CountDistinct { sets } => {
                Column::from_ints(sets.iter().map(|s| s.len() as i64).collect())
            }
        };
        Ok(col)
    }

    fn bytes(&self) -> usize {
        match self {
            AggAcc::CountStar { counts } | AggAcc::Count { counts } => counts.capacity() * 8,
            AggAcc::SumInt { sums, seen } => sums.capacity() * 8 + seen.capacity(),
            AggAcc::SumDouble { sums, seen } => sums.capacity() * 8 + seen.capacity(),
            AggAcc::AvgInt { sums, counts } => (sums.capacity() + counts.capacity()) * 8,
            AggAcc::AvgDouble { sums, counts } => (sums.capacity() + counts.capacity()) * 8,
            AggAcc::Extreme { best, .. } => {
                best.iter()
                    .map(|b| 8 + b.as_ref().map_or(0, value_bytes))
                    .sum()
            }
            AggAcc::CountDistinct { sets } => sets
                .iter()
                .map(|s| 48 + s.iter().map(key_heap).sum::<usize>())
                .sum(),
        }
    }
}

/// The aggregate's argument column over the (delta) relation —
/// replicating `compute_aggregate`'s `f(*)` / missing-argument rules and
/// error messages exactly.
fn agg_arg<'q>(
    agg: &'q Expr,
    rel: &Relation,
    ctx: &dyn QueryContext,
    env: &ExecEnv,
) -> Result<(&'q str, Option<Column>)> {
    let Expr::FuncCall { name, args, star } = agg else {
        return Err(SqlError::Exec("not an aggregate".into()));
    };
    let arg_col: Option<Column> = if *star {
        if name == "count" {
            None
        } else {
            let first_visible = rel
                .names()
                .iter()
                .position(|n| !n.starts_with('#'))
                .ok_or_else(|| SqlError::Exec(format!("{name}(*) with no columns")))?;
            Some(rel.col_at(first_visible).clone())
        }
    } else {
        let arg = args
            .first()
            .ok_or_else(|| SqlError::Exec(format!("{name} needs an argument")))?;
        Some(eval_expr(arg, rel, ctx, env)?)
    };
    Ok((name.as_str(), arg_col))
}

fn row_values(rel: &Relation, i: usize) -> Vec<Value> {
    (0..rel.width()).map(|c| rel.col_at(c).get(i)).collect()
}

fn run_group(
    q: &DeltaQuery,
    g: &GroupShape,
    ctx: &dyn QueryContext,
    env: &mut ExecEnv,
    spans: Option<&HashMap<String, u64>>,
    prior: Option<&StmtState>,
    poisoned: bool,
) -> Result<(Effects, StmtState, Mode)> {
    let rel = base_scan(ctx, &g.scan.table, &g.scan.binding)?;
    let len_now = rel.len();
    let gen = spans.and_then(|m| m.get(&g.scan.table).copied());
    let prior = match prior {
        Some(StmtState::Group(p)) => Some(p),
        _ => None,
    };
    let reason = full_reason(
        poisoned,
        spans,
        &[(&g.scan.table, len_now)],
        prior.is_some(),
        || {
            let p = prior.expect("checked");
            if Some(p.gen) != gen {
                Some("generation")
            } else if p.processed > len_now {
                Some("shrunk")
            } else {
                None
            }
        },
    );
    let mut state = match (reason, prior) {
        (None, Some(p)) => p.clone(),
        _ => GroupState::default(),
    };
    let from = state.processed;

    // Delta slice, then WHERE conjuncts in source order — all row-local,
    // so filtering the suffix alone is exact.
    let mut drel = rel.gather(&SelVec::range(from as u32, len_now as u32))?;
    for c in &q.conjuncts {
        let mask = eval_expr(c, &drel, ctx, env)?;
        let sel = select_true(&mask, None)?;
        drel = drel.gather(&sel)?;
    }

    // Group assignment, first-seen order (kernel semantics: the generic
    // KeyPart path and the I64 fast path assign identical gids).
    let n = drel.len();
    let mut gids: Vec<u32> = Vec::with_capacity(n);
    if q.select.group_by.is_empty() {
        if n > 0 && state.reps.is_empty() {
            state.groups.insert(Vec::new(), 0);
            state.reps.push(row_values(&drel, 0));
        }
        gids.resize(n, 0);
    } else {
        let key_cols: Vec<Column> = q
            .select
            .group_by
            .iter()
            .map(|e| eval_expr(e, &drel, ctx, env))
            .collect::<Result<_>>()?;
        for i in 0..n {
            let key: Vec<ArrKey> = key_cols.iter().map(|c| ArrKey::at(c, i)).collect();
            let gid = match state.groups.entry(key) {
                Entry::Occupied(o) => *o.get(),
                Entry::Vacant(v) => {
                    let gid = state.reps.len() as u32;
                    v.insert(gid);
                    state.reps.push(row_values(&drel, i));
                    gid
                }
            };
            gids.push(gid);
        }
    }

    // Aggregate rewrite (same error ordering as the interpreter), then
    // fold this firing's rows into the accumulators.
    let rw = rewrite_for_grouping(&q.select)?;
    if !state.accs.is_empty() && state.accs.len() != rw.aggs.len() {
        return Err(SqlError::Exec("delta: aggregate list changed".into()));
    }
    let ngroups = state.reps.len();
    for (k, agg) in rw.aggs.iter().enumerate() {
        let (name, arg_col) = agg_arg(agg, &drel, ctx, env)?;
        if state.accs.len() <= k {
            state.accs.push(AggAcc::new(name, arg_col.as_ref())?);
        }
        state.accs[k].update(ngroups, &gids, arg_col.as_ref())?;
    }

    // Materialize the grouped relation: representative rows (first-seen
    // order) + `#agg:k` columns.
    let mut grouped = if ngroups == 0 {
        let mut g0 = rel.gather(&SelVec::empty())?;
        if q.select.group_by.is_empty() {
            // an ungrouped aggregate over empty input yields one row
            let row: Vec<Value> = vec![Value::Null; g0.width()];
            g0.append_row(&row)?;
        }
        g0
    } else {
        let cols: Vec<(String, Column)> = rel
            .names()
            .iter()
            .enumerate()
            .map(|(ci, name)| {
                let mut col = Column::with_capacity(rel.col_at(ci).vtype(), ngroups);
                for rep in &state.reps {
                    col.push(rep[ci].clone())?;
                }
                Ok((name.clone(), col))
            })
            .collect::<Result<_>>()?;
        Relation::from_columns(cols)?
    };
    for (k, _) in rw.aggs.iter().enumerate() {
        let col = if ngroups == 0 && q.select.group_by.is_empty() {
            empty_aggregate_value(&rw.aggs[k], state.accs[k].vtype())?
        } else {
            state.accs[k].column()?
        };
        grouped.add_column(format!("#agg:{k}"), col)?;
    }

    let out = grouped_tail(&q.select, &rw, grouped, ctx, env)?;

    let mode = match reason {
        Some(r) => Mode::Full { reason: r },
        None => {
            if let Some(c) = ctx.scan_counter() {
                c.fetch_sub(from as u64, Ordering::Relaxed);
            }
            Mode::Incremental {
                rows: (len_now - from) as u64,
            }
        }
    };
    state.gen = gen.unwrap_or(0);
    state.processed = len_now;
    Ok((sink_effects(&q.sink, out), StmtState::Group(state), mode))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_script, StaticContext};
    use crate::parser::parse_statements;
    use crate::plan::PhysicalPlan;

    fn xy_ctx(n: usize) -> StaticContext {
        // X grows with n; Y is two appended batches joined against it.
        let x_ids: Vec<i64> = (0..n as i64).collect();
        let x_vx: Vec<i64> = (0..n as i64).map(|i| i * 10).collect();
        let y_ids: Vec<i64> = (0..n as i64).map(|i| i % 4).collect();
        let y_vy: Vec<i64> = (0..n as i64).map(|i| 1000 + i).collect();
        let x = Relation::from_columns(vec![
            ("id".into(), Column::from_ints(x_ids)),
            ("vx".into(), Column::from_ints(x_vx)),
        ])
        .unwrap();
        let y = Relation::from_columns(vec![
            ("id".into(), Column::from_ints(y_ids)),
            ("vy".into(), Column::from_ints(y_vy)),
        ])
        .unwrap();
        StaticContext::new()
            .with_relation("X", x)
            .with_relation("Y", y)
    }

    fn plan_of(src: &str) -> PhysicalPlan {
        PhysicalPlan::compile(&parse_statements(src).unwrap())
    }

    #[test]
    fn join_and_group_shapes_compile_to_delta() {
        assert_eq!(
            plan_of("select X.vx, Y.vy from X, Y where X.id = Y.id").delta_count(),
            1
        );
        assert_eq!(
            plan_of("select s, count(*), sum(a) from R group by s").delta_count(),
            1
        );
        assert_eq!(plan_of("select count(*) from R").delta_count(), 1);
        assert_eq!(
            plan_of("insert into O select X.vx from X, Y where X.id = Y.id and Y.vy > 3").delta_count(),
            1
        );
    }

    #[test]
    fn ineligible_shapes_stay_interpreted() {
        // scalar subquery
        assert_eq!(
            plan_of("select count(*) from R where a = (select max(a) from R)").delta_count(),
            0
        );
        // union
        assert_eq!(
            plan_of("select count(*) from R union all select count(*) from R").delta_count(),
            0
        );
        // unqualified join key: runtime key choice is data-dependent
        assert_eq!(
            plan_of("select X.vx from X, Y where id = Y.id").delta_count(),
            0
        );
        // no equi key at all (cross product)
        assert_eq!(plan_of("select X.vx from X, Y").delta_count(), 0);
        // three-way join
        assert_eq!(
            plan_of("select X.vx from X, Y, Z where X.id = Y.id and Y.id = Z.id").delta_count(),
            0
        );
        // a SET in the script disables delta for the whole block
        assert_eq!(
            plan_of("set n = 1; select count(*) from R").delta_count(),
            0
        );
    }

    #[test]
    fn join_incremental_matches_full_reexecution() {
        let src = "select X.vx, Y.vy from X, Y where X.id = Y.id and Y.vy >= 1000";
        let stmts = parse_statements(src).unwrap();
        let plan = PhysicalPlan::compile(&stmts);
        assert_eq!(plan.delta_count(), 1);
        let spans: HashMap<String, u64> =
            [("X".to_string(), 0u64), ("Y".to_string(), 0u64)].into();
        let reg = ArrangementRegistry::new();

        // firing 1: bootstrap (full)
        let ctx1 = xy_ctx(6);
        let (fx1, out1, st1) = plan
            .execute_standing(&ctx1, &spans, &PlanDeltaState::default(), Some(&reg))
            .unwrap();
        assert_eq!(fx1, execute_script(&stmts, &ctx1).unwrap());
        assert_eq!(out1.full_reexecutes, 1);
        assert_eq!(out1.fallbacks, vec!["first"]);

        // firing 2: appended rows only
        let ctx2 = xy_ctx(10);
        let (fx2, out2, st2) = plan
            .execute_standing(&ctx2, &spans, &st1, Some(&reg))
            .unwrap();
        assert_eq!(fx2, execute_script(&stmts, &ctx2).unwrap());
        assert_eq!(out2.delta_stmts, 1);
        assert_eq!(out2.delta_rows, 8, "4 appended rows per side");
        assert!(out2.arrangement_bytes > 0);

        // firing 3: nothing appended — still exact, zero delta rows
        let (fx3, out3, st3) = plan
            .execute_standing(&ctx2, &spans, &st2, Some(&reg))
            .unwrap();
        assert_eq!(fx3, execute_script(&stmts, &ctx2).unwrap());
        assert_eq!(out3.delta_rows, 0);

        // firing 4: generation bump forces full re-execution
        let bumped: HashMap<String, u64> =
            [("X".to_string(), 1u64), ("Y".to_string(), 0u64)].into();
        let (fx4, out4, _) = plan
            .execute_standing(&ctx2, &bumped, &st3, Some(&reg))
            .unwrap();
        assert_eq!(fx4, execute_script(&stmts, &ctx2).unwrap());
        assert_eq!(out4.fallbacks, vec!["generation"]);
    }

    #[test]
    fn group_incremental_matches_full_reexecution() {
        let src =
            "select s, count(*) as n, sum(a) as t, min(a) as lo, avg(a) as m from G \
             where a >= 0 group by s";
        let stmts = parse_statements(src).unwrap();
        let plan = PhysicalPlan::compile(&stmts);
        assert_eq!(plan.delta_count(), 1);
        let spans: HashMap<String, u64> = [("G".to_string(), 0u64)].into();

        let mk = |n: usize| {
            let a: Vec<i64> = (0..n as i64).collect();
            let s: Vec<String> = (0..n).map(|i| format!("g{}", i % 3)).collect();
            StaticContext::new().with_relation(
                "G",
                Relation::from_columns(vec![
                    ("a".into(), Column::from_ints(a)),
                    ("s".into(), Column::from_strs(s)),
                ])
                .unwrap(),
            )
        };

        let ctx1 = mk(5);
        let (fx1, _, st1) = plan
            .execute_standing(&ctx1, &spans, &PlanDeltaState::default(), None)
            .unwrap();
        assert_eq!(fx1, execute_script(&stmts, &ctx1).unwrap());

        let ctx2 = mk(12);
        let (fx2, out2, st2) = plan.execute_standing(&ctx2, &spans, &st1, None).unwrap();
        assert_eq!(fx2, execute_script(&stmts, &ctx2).unwrap());
        assert_eq!(out2.delta_stmts, 1);
        assert_eq!(out2.delta_rows, 7);
        assert!(out2.state_bytes > 0);

        // ungrouped aggregate over the same state machinery
        let stmts2 = parse_statements("select count(*), sum(a), max(a) from G").unwrap();
        let plan2 = PhysicalPlan::compile(&stmts2);
        let (gfx1, _, gst1) = plan2
            .execute_standing(&ctx1, &spans, &PlanDeltaState::default(), None)
            .unwrap();
        assert_eq!(gfx1, execute_script(&stmts2, &ctx1).unwrap());
        let (gfx2, gout2, _) = plan2.execute_standing(&ctx2, &spans, &gst1, None).unwrap();
        assert_eq!(gfx2, execute_script(&stmts2, &ctx2).unwrap());
        assert_eq!(gout2.delta_stmts, 1);
        let _ = st2;
    }

    #[test]
    fn variable_read_poisons_delta_state() {
        let src = "select count(*) from G where a > lo";
        let stmts = parse_statements(src).unwrap();
        let plan = PhysicalPlan::compile(&stmts);
        assert_eq!(plan.delta_count(), 1);
        let spans: HashMap<String, u64> = [("G".to_string(), 0u64)].into();
        let ctx = StaticContext::new()
            .with_relation(
                "G",
                Relation::from_columns(vec![("a".into(), Column::from_ints(vec![1, 2, 3]))])
                    .unwrap(),
            )
            .with_var("lo", Value::Int(1));
        let (fx1, out1, st1) = plan
            .execute_standing(&ctx, &spans, &PlanDeltaState::default(), None)
            .unwrap();
        assert_eq!(fx1, execute_script(&stmts, &ctx).unwrap());
        assert_eq!(out1.fallbacks, vec!["first"]);
        assert!(st1.is_poisoned(), "var read detected at bootstrap");
        // every later firing is a full re-execution
        let (fx2, out2, _) = plan.execute_standing(&ctx, &spans, &st1, None).unwrap();
        assert_eq!(fx2, execute_script(&stmts, &ctx).unwrap());
        assert_eq!(out2.fallbacks, vec!["variable"]);
    }

    #[test]
    fn untracked_table_always_reexecutes() {
        let stmts = parse_statements("select count(*) from G").unwrap();
        let plan = PhysicalPlan::compile(&stmts);
        let spans = HashMap::new(); // G not tracked
        let ctx = StaticContext::new().with_relation(
            "G",
            Relation::from_columns(vec![("a".into(), Column::from_ints(vec![1, 2]))]).unwrap(),
        );
        let (_, out1, st1) = plan
            .execute_standing(&ctx, &spans, &PlanDeltaState::default(), None)
            .unwrap();
        assert_eq!(out1.fallbacks, vec!["untracked"]);
        let (_, out2, _) = plan.execute_standing(&ctx, &spans, &st1, None).unwrap();
        assert_eq!(out2.fallbacks, vec!["untracked"]);
    }

    #[test]
    fn error_falls_back_to_interpreter_result() {
        // sum over a string column: the kernel raises TypeMismatch; the
        // statement must defer to the interpreter and err identically.
        let stmts = parse_statements("select sum(s) from G group by s").unwrap();
        let plan = PhysicalPlan::compile(&stmts);
        assert_eq!(plan.delta_count(), 1);
        let spans: HashMap<String, u64> = [("G".to_string(), 0u64)].into();
        let ctx = StaticContext::new().with_relation(
            "G",
            Relation::from_columns(vec![(
                "s".into(),
                Column::from_strs(vec!["a".into(), "b".into()]),
            )])
            .unwrap(),
        );
        let delta_err = plan
            .execute_standing(&ctx, &spans, &PlanDeltaState::default(), None)
            .unwrap_err();
        let interp_err = execute_script(&stmts, &ctx).unwrap_err();
        assert_eq!(format!("{delta_err}"), format!("{interp_err}"));
    }

    #[test]
    fn oneshot_execute_matches_interpreter() {
        let ctx = xy_ctx(8);
        for src in [
            "select X.vx, Y.vy from X, Y where X.id = Y.id",
            "select Y.id, count(*) as n from Y group by Y.id",
            "select count(*), sum(vx) from X",
        ] {
            let stmts = parse_statements(src).unwrap();
            let plan = PhysicalPlan::compile(&stmts);
            assert_eq!(plan.delta_count(), 1, "{src}");
            assert_eq!(
                plan.execute(&ctx).unwrap(),
                execute_script(&stmts, &ctx).unwrap(),
                "{src}"
            );
        }
    }
}
