//! Compiled physical plans.
//!
//! A continuous query is parsed once but fired forever, so re-walking the
//! AST on every firing (the interpreter in [`crate::exec`]) wastes the
//! work a standing query could amortize. This module lowers a parsed
//! script into a [`PhysicalPlan`] at registration time:
//!
//! * **Column requirements** — for every base table/basket scan, the
//!   exact set of columns the script can touch ([`ScanRequirement`]).
//!   The engine uses this to snapshot only those columns per firing
//!   (O(touched-columns) `Arc` bumps instead of O(width)).
//! * **Compiled statements** — statements matching the hot shape
//!   (single-source SELECT / INSERT..SELECT over a plain scan or a
//!   `[select ...]` basket expression) become a [`fast::FastQuery`]:
//!   constant-folded, conjunction-split predicates ordered cheapest
//!   first, executed as *selection vectors* passed between filter
//!   stages — a materializing gather happens only once, at the
//!   projection boundary. Everything else falls back to the interpreter
//!   statement-by-statement, so for every script that executes without
//!   error `PhysicalPlan::execute` produces exactly the
//!   [`crate::exec::execute_script`] effects (pinned by
//!   `tests/plan_equivalence.rs`). On *ill-typed* predicates (e.g. a
//!   string/int column comparison) both paths reject well-typed-empty
//!   inputs the same way, but — as in SQL generally — predicate
//!   evaluation order and extent are unspecified, so one path may
//!   short-circuit past a type error the other raises (candidate-
//!   restricted scans inspect only surviving rows; interpreter masks
//!   inspect whatever its gather order left live).
//! * **Lazy rid lineage** — basket-expression consumption on the fast
//!   path is the final inner selection vector itself; the hidden
//!   `#rid:` column (an O(rows) materialization per firing) is only
//!   needed for shapes the interpreter handles ([`ScanRequirement::
//!   needs_lineage`]).
//!
//! Base-table column names must not contain `.` (the engine's DDL
//! already guarantees this); qualified names are resolved against scan
//! bindings at compile time.

pub mod arrange;
mod delta;
mod fast;

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Instant;

use monet::ops::arith;
use monet::ops::CmpOp;
use monet::prelude::*;

use crate::ast::{BinOp, Expr, FromItem, SelectItem, SelectStmt, Stmt};
use crate::error::Result;
use crate::exec::{Effects, ExecEnv, QueryContext};

pub use arrange::ArrangementRegistry;
pub use delta::{DeltaOutcome, PlanDeltaState, FALLBACK_REASONS};
pub(crate) use fast::run_fast;

// ---- column requirements ----------------------------------------------------

/// Which columns of one base table a script's scans can touch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnsNeeded {
    /// Everything (a `*` projection, or anything the analysis cannot
    /// bound).
    All,
    /// Exactly these columns (conservative superset of what execution
    /// resolves; may name variables that shadow no column — pruning
    /// intersects with the schema).
    Cols(BTreeSet<String>),
}

impl ColumnsNeeded {
    fn add(&mut self, name: &str) {
        if let ColumnsNeeded::Cols(set) = self {
            set.insert(name.to_string());
        }
    }

    fn set_all(&mut self) {
        *self = ColumnsNeeded::All;
    }

    /// The explicit column set, `None` meaning "all".
    pub fn as_cols(&self) -> Option<&BTreeSet<String>> {
        match self {
            ColumnsNeeded::All => None,
            ColumnsNeeded::Cols(set) => Some(set),
        }
    }
}

impl Default for ColumnsNeeded {
    fn default() -> Self {
        ColumnsNeeded::Cols(BTreeSet::new())
    }
}

/// Per-scan footprint of a script over one base table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanRequirement {
    /// Columns any evaluation over this table can resolve.
    pub columns: ColumnsNeeded,
    /// Scanned inside a basket expression somewhere (consumption).
    pub consuming: bool,
    /// Consumption must go through materialized `#rid:` lineage columns
    /// (an interpreter-shape basket expression); `false` means every
    /// consuming scan of this table derives its consumption set from
    /// selection vectors (or the trivial whole-basket fast path).
    pub needs_lineage: bool,
}

/// Compute the per-table [`ScanRequirement`]s of a script (without the
/// `needs_lineage` refinement — [`PhysicalPlan::compile`] fills that in
/// from the statement shapes).
pub fn column_requirements(stmts: &[Stmt]) -> BTreeMap<String, ScanRequirement> {
    let mut reqs = BTreeMap::new();
    let mut bound = BTreeSet::new();
    for stmt in stmts {
        req_stmt(stmt, &mut reqs, &mut bound);
    }
    reqs
}

fn entry<'a>(
    reqs: &'a mut BTreeMap<String, ScanRequirement>,
    table: &str,
) -> &'a mut ScanRequirement {
    reqs.entry(table.to_string()).or_default()
}

fn req_stmt(
    stmt: &Stmt,
    reqs: &mut BTreeMap<String, ScanRequirement>,
    bound: &mut BTreeSet<String>,
) {
    match stmt {
        Stmt::Select(s) => req_select(s, false, reqs, bound),
        Stmt::Insert { source, .. } => req_select(source, false, reqs, bound),
        Stmt::With {
            binding,
            source,
            body,
        } => {
            req_select(source, true, reqs, bound);
            let added = bound.insert(binding.clone());
            for s in body {
                req_stmt(s, reqs, bound);
            }
            if added {
                bound.remove(binding);
            }
        }
        Stmt::Set { expr, .. } => req_expr(expr, &[], reqs, bound),
        Stmt::Declare { .. } | Stmt::Create { .. } => {}
    }
}

fn req_select(
    s: &SelectStmt,
    consuming: bool,
    reqs: &mut BTreeMap<String, ScanRequirement>,
    bound: &mut BTreeSet<String>,
) {
    // the base scans visible in this select's scope: (binding, table)
    let mut scope: Vec<(String, String)> = Vec::new();
    for item in &s.from {
        match item {
            FromItem::Table { name, alias } => {
                if bound.contains(name) {
                    continue; // WITH binding, not a base table
                }
                entry(reqs, name).consuming |= consuming;
                let binding = alias.clone().unwrap_or_else(|| name.clone());
                scope.push((binding, name.clone()));
            }
            // derived sources: their own select determines base needs;
            // outer references only see what they project
            FromItem::Basket { query, .. } => req_select(query, true, reqs, bound),
            FromItem::Subquery { query, .. } => req_select(query, false, reqs, bound),
        }
    }
    for item in &s.projection {
        match item {
            SelectItem::Star => {
                for (_, t) in &scope {
                    entry(reqs, t).columns.set_all();
                }
            }
            SelectItem::QualifiedStar(q) => {
                if let Some((_, t)) = scope.iter().find(|(b, _)| b == q) {
                    entry(reqs, t).columns.set_all();
                }
            }
            SelectItem::Expr { expr, .. } => req_expr(expr, &scope, reqs, bound),
        }
    }
    let exprs = s
        .where_clause
        .iter()
        .chain(s.group_by.iter())
        .chain(s.having.iter())
        .chain(s.order_by.iter().map(|(e, _)| e));
    for e in exprs {
        req_expr(e, &scope, reqs, bound);
    }
    if let Some((_, rhs)) = &s.union {
        req_select(rhs, consuming, reqs, bound);
    }
}

fn req_expr(
    e: &Expr,
    scope: &[(String, String)],
    reqs: &mut BTreeMap<String, ScanRequirement>,
    bound: &mut BTreeSet<String>,
) {
    match e {
        Expr::Column { qualifier, name } => match qualifier {
            Some(q) => {
                if let Some((_, t)) = scope.iter().find(|(b, _)| b == q) {
                    entry(reqs, t).columns.add(name);
                }
            }
            // an unqualified name may resolve against any source in
            // scope (or a variable) — include it in every base scan
            None => {
                for (_, t) in scope {
                    entry(reqs, t).columns.add(name);
                }
            }
        },
        Expr::Literal(_) => {}
        Expr::ScalarSubquery(sub) => req_select(sub, false, reqs, bound),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => {
            req_expr(expr, scope, reqs, bound)
        }
        Expr::Binary { left, right, .. } => {
            req_expr(left, scope, reqs, bound);
            req_expr(right, scope, reqs, bound);
        }
        Expr::Between { expr, lo, hi, .. } => {
            req_expr(expr, scope, reqs, bound);
            req_expr(lo, scope, reqs, bound);
            req_expr(hi, scope, reqs, bound);
        }
        Expr::InList { expr, list, .. } => {
            req_expr(expr, scope, reqs, bound);
            for i in list {
                req_expr(i, scope, reqs, bound);
            }
        }
        Expr::FuncCall { args, .. } => {
            for a in args {
                req_expr(a, scope, reqs, bound);
            }
        }
    }
}

// ---- compiled predicates ----------------------------------------------------

/// One conjunct, classified for selection-vector execution.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum PredKind {
    /// `col <cmp> const` — an indexable scan ([`monet::ops::select::select_cmp`]),
    /// no boolean mask materialized.
    ColConst { col: String, op: CmpOp, k: Value },
    /// `col BETWEEN lo AND hi` with aligned literal bounds — one range scan.
    ColRange { col: String, lo: Value, hi: Value },
    /// `col <cmp> col` — a column-vs-column scan.
    ColCol {
        left: String,
        right: String,
        op: CmpOp,
    },
    /// Anything else: evaluate the expression as a boolean mask, then
    /// reduce over the current candidates.
    General,
}

/// A compiled conjunct: the classification plus the (rewritten) source
/// expression — the fallback when a "column" turns out to be a variable.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Pred {
    pub kind: PredKind,
    pub expr: Expr,
}

impl Pred {
    /// Scan-cost class for cheapest-first ordering (stable within a class).
    fn cost(&self) -> u8 {
        match self.kind {
            PredKind::ColConst { .. } | PredKind::ColRange { .. } => 0,
            PredKind::ColCol { .. } => 1,
            PredKind::General => 2,
        }
    }
}

fn cmp_of(op: BinOp) -> Option<CmpOp> {
    match op {
        BinOp::Eq => Some(CmpOp::Eq),
        BinOp::Ne => Some(CmpOp::Ne),
        BinOp::Lt => Some(CmpOp::Lt),
        BinOp::Le => Some(CmpOp::Le),
        BinOp::Gt => Some(CmpOp::Gt),
        BinOp::Ge => Some(CmpOp::Ge),
        _ => None,
    }
}

/// Fold literal-only binary subtrees through the *same* monet kernels the
/// interpreter uses (1-row columns), so folded semantics — coercions,
/// NULL propagation, division-by-zero → NULL — are identical by
/// construction. Any kernel error leaves the subtree unfolded: the
/// runtime then raises the same error the interpreter would.
fn const_fold(e: &Expr) -> Expr {
    match e {
        Expr::Binary { op, left, right } => {
            let l = const_fold(left);
            let r = const_fold(right);
            if let (Expr::Literal(a), Expr::Literal(b)) = (&l, &r) {
                if let Some(v) = fold_binary(*op, a, b) {
                    return Expr::Literal(v);
                }
            }
            Expr::Binary {
                op: *op,
                left: Box::new(l),
                right: Box::new(r),
            }
        }
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(const_fold(expr)),
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => Expr::Between {
            expr: Box::new(const_fold(expr)),
            lo: Box::new(const_fold(lo)),
            hi: Box::new(const_fold(hi)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(const_fold(expr)),
            list: list.iter().map(const_fold).collect(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(const_fold(expr)),
            negated: *negated,
        },
        other => other.clone(),
    }
}

fn one_row(v: &Value) -> Option<Column> {
    let vtype = v.value_type().unwrap_or(ValueType::Int);
    let mut col = Column::with_capacity(vtype, 1);
    col.push(v.clone()).ok()?;
    Some(col)
}

fn fold_binary(op: BinOp, a: &Value, b: &Value) -> Option<Value> {
    let l = one_row(a)?;
    let r = one_row(b)?;
    let out = match op {
        BinOp::Add => arith::arith(arith::ArithOp::Add, &l, &r),
        BinOp::Sub => arith::arith(arith::ArithOp::Sub, &l, &r),
        BinOp::Mul => arith::arith(arith::ArithOp::Mul, &l, &r),
        BinOp::Div => arith::arith(arith::ArithOp::Div, &l, &r),
        BinOp::Mod => arith::arith(arith::ArithOp::Mod, &l, &r),
        BinOp::And => arith::and3(&l, &r),
        BinOp::Or => arith::or3(&l, &r),
        _ => cmp_of(op).map(|c| arith::compare(c, &l, &r)).unwrap(),
    };
    out.ok().map(|c| c.get(0))
}

/// Strip a scan-binding qualifier off column references (`Z.x` → `x`),
/// leaving foreign qualifiers intact so they fail resolution exactly as
/// the interpreter's would. Does not descend into scalar subqueries —
/// those resolve in their own scope.
fn strip_qualifier(e: &Expr, binding: Option<&str>) -> Expr {
    let Some(b) = binding else { return e.clone() };
    match e {
        Expr::Column {
            qualifier: Some(q),
            name,
        } if q == b => Expr::Column {
            qualifier: None,
            name: name.clone(),
        },
        Expr::Column { .. } | Expr::Literal(_) | Expr::ScalarSubquery(_) => e.clone(),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(strip_qualifier(expr, binding)),
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(strip_qualifier(left, binding)),
            right: Box::new(strip_qualifier(right, binding)),
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => Expr::Between {
            expr: Box::new(strip_qualifier(expr, binding)),
            lo: Box::new(strip_qualifier(lo, binding)),
            hi: Box::new(strip_qualifier(hi, binding)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(strip_qualifier(expr, binding)),
            list: list.iter().map(|i| strip_qualifier(i, binding)).collect(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(strip_qualifier(expr, binding)),
            negated: *negated,
        },
        Expr::FuncCall { name, args, star } => Expr::FuncCall {
            name: name.clone(),
            args: args.iter().map(|a| strip_qualifier(a, binding)).collect(),
            star: *star,
        },
    }
}

fn compile_pred(raw: &Expr, binding: Option<&str>) -> Pred {
    let e = const_fold(&strip_qualifier(raw, binding));
    let kind = match &e {
        Expr::Binary { op, left, right } => match cmp_of(*op) {
            Some(cop) => match (left.as_ref(), right.as_ref()) {
                (
                    Expr::Column {
                        qualifier: None,
                        name,
                    },
                    Expr::Literal(k),
                ) => PredKind::ColConst {
                    col: name.clone(),
                    op: cop,
                    k: k.clone(),
                },
                (
                    Expr::Literal(k),
                    Expr::Column {
                        qualifier: None,
                        name,
                    },
                ) => PredKind::ColConst {
                    col: name.clone(),
                    op: cop.flip(),
                    k: k.clone(),
                },
                (
                    Expr::Column {
                        qualifier: None,
                        name: l,
                    },
                    Expr::Column {
                        qualifier: None,
                        name: r,
                    },
                ) => PredKind::ColCol {
                    left: l.clone(),
                    right: r.clone(),
                    op: cop,
                },
                _ => PredKind::General,
            },
            None => PredKind::General,
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated: false,
        } => match (expr.as_ref(), lo.as_ref(), hi.as_ref()) {
            (
                Expr::Column {
                    qualifier: None,
                    name,
                },
                Expr::Literal(lo),
                Expr::Literal(hi),
            // only literal families select_range coerces exactly like
            // the interpreter's compare: Int/Int and Str/Str bounds
            ) if matches!((lo, hi), (Value::Int(_), Value::Int(_)) | (Value::Str(_), Value::Str(_))) => {
                PredKind::ColRange {
                    col: name.clone(),
                    lo: lo.clone(),
                    hi: hi.clone(),
                }
            }
            _ => PredKind::General,
        },
        _ => PredKind::General,
    };
    Pred { kind, expr: e }
}

fn compile_conjuncts(where_clause: Option<&Expr>, binding: Option<&str>) -> Vec<Pred> {
    let mut preds: Vec<Pred> = where_clause
        .map(|w| w.conjuncts().into_iter().map(|c| compile_pred(c, binding)).collect())
        .unwrap_or_default();
    // cheapest-first; stable, so equal-cost conjuncts keep source order.
    // Reordering never changes which rows qualify (conjunction is
    // commutative and NULL never matches on any path); what it may
    // change — as in SQL implementations generally — is *whether an
    // ill-typed conjunct gets to raise*: a candidate-restricted scan
    // only inspects surviving rows, so a type error behind an earlier
    // filter can go unraised where the interpreter's source-order
    // mask evaluation would surface it (see the module docs and
    // `ill_typed_predicates_may_short_circuit` in plan_equivalence).
    preds.sort_by_key(|p| p.cost());
    preds
}

// ---- compiled statements ----------------------------------------------------

/// Where a fast query's output goes.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Sink {
    /// Bare SELECT: `Effects::result`.
    Result,
    /// `INSERT INTO table [(cols)]`.
    Insert {
        table: String,
        columns: Option<Vec<String>>,
    },
}

/// The columns the outer clauses see (the basket expression's output).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum InnerCols {
    /// Pass the scan through whole (`[select * from T]` and plain scans).
    Star,
    /// An explicit inner projection: `(output name, expression over the
    /// base scan)` — plain columns (or variables) only, so building the
    /// view is O(1) Arc bumps per column.
    List(Vec<(String, Expr)>),
}

/// One outer projection item.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ProjItem {
    /// `*` / `binding.*`: every view column, in order.
    Star,
    /// Expression with its interpreter-identical long output name.
    Expr { long: String, expr: Expr },
}

/// A compiled single-scan query:
/// `SELECT/INSERT ... FROM <scan | [inner]> WHERE ... [TOP n]`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FastQuery {
    pub sink: Sink,
    /// Base table/basket scanned.
    pub table: String,
    /// Scanned inside `[...]` — consumption = final inner selection.
    pub consuming: bool,
    /// Outer binding (FROM alias); qualifies star-expansion names.
    pub binding: Option<String>,
    /// Exact columns this statement needs from the scan (`None` = all).
    pub wanted: Option<Vec<String>>,
    /// Inner (basket-expression) conjuncts — these define consumption.
    pub inner_preds: Vec<Pred>,
    /// Inner `TOP`/`LIMIT`: consumption keeps the first n survivors.
    pub inner_top: Option<usize>,
    pub inner_cols: InnerCols,
    /// Outer conjuncts — filter the result, never consumption.
    pub outer_preds: Vec<Pred>,
    pub outer_top: Option<usize>,
    pub projection: Vec<ProjItem>,
    /// View columns the projection resolves (`None` = all, e.g. `*`);
    /// the materializing gather touches only these.
    pub proj_cols: Option<Vec<String>>,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum PlannedStmt {
    Fast(FastQuery),
    /// Delta-capable shape (two-scan equi-join or single-scan grouped
    /// aggregation): runs incrementally under `execute_standing` when the
    /// append-only premise holds, from scratch otherwise.
    Delta(Box<delta::DeltaQuery>),
    Interpret(Stmt),
}

/// A compiled script: per-statement physical operators plus the union of
/// scan requirements, ready to fire repeatedly.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    stmts: Vec<PlannedStmt>,
    requirements: BTreeMap<String, ScanRequirement>,
    /// Wall-clock compile time, µs (reported once through `FireReport`).
    pub compile_micros: u64,
}

impl PhysicalPlan {
    /// Lower a parsed script. Compilation never fails: statements outside
    /// the fast shape are carried as interpreter fallbacks.
    pub fn compile(stmts: &[Stmt]) -> PhysicalPlan {
        let started = Instant::now();
        let mut requirements = column_requirements(stmts);
        // Delta shapes only compile when the script carries no cross-
        // statement environment state (WITH bindings, DECLARE/SET
        // overlays): variable reads through the context are detected and
        // poison delta state, but overlay reads would go unseen.
        let delta_ok = stmts
            .iter()
            .all(|s| matches!(s, Stmt::Select(_) | Stmt::Insert { .. } | Stmt::Create { .. }));
        let planned: Vec<PlannedStmt> = stmts
            .iter()
            .map(|s| match try_fast(s) {
                Some(f) => PlannedStmt::Fast(f),
                None => match delta::try_delta(s).filter(|_| delta_ok) {
                    Some(d) => PlannedStmt::Delta(Box::new(d)),
                    None => PlannedStmt::Interpret(s.clone()),
                },
            })
            .collect();
        for (ps, src) in planned.iter().zip(stmts) {
            if matches!(ps, PlannedStmt::Interpret(_)) {
                mark_lineage_stmt(src, &mut requirements);
            }
        }
        PhysicalPlan {
            stmts: planned,
            requirements,
            compile_micros: started.elapsed().as_micros() as u64,
        }
    }

    /// Per-table scan requirements (union over all statements).
    pub fn requirements(&self) -> &BTreeMap<String, ScanRequirement> {
        &self.requirements
    }

    /// The pruned column set for one table; `None` = snapshot everything.
    pub fn wanted_for(&self, table: &str) -> Option<&BTreeSet<String>> {
        self.requirements.get(table).and_then(|r| r.columns.as_cols())
    }

    /// Statements compiled to the fast selection-vector path.
    pub fn fast_count(&self) -> usize {
        self.stmts
            .iter()
            .filter(|s| matches!(s, PlannedStmt::Fast(_)))
            .count()
    }

    /// Statements compiled to delta-capable operators (hash join /
    /// grouped aggregation).
    pub fn delta_count(&self) -> usize {
        self.stmts
            .iter()
            .filter(|s| matches!(s, PlannedStmt::Delta(_)))
            .count()
    }

    pub fn stmt_count(&self) -> usize {
        self.stmts.len()
    }

    /// Execute the compiled plan. Equivalent to
    /// [`crate::exec::execute_script`] over the source statements.
    pub fn execute(&self, ctx: &dyn QueryContext) -> Result<Effects> {
        let mut env = ExecEnv::default();
        let mut all = Effects::default();
        for ps in &self.stmts {
            let fx = match ps {
                PlannedStmt::Fast(f) => run_fast(f, ctx, &mut env)?,
                PlannedStmt::Delta(d) => delta::run_oneshot(d, ctx, &mut env)?,
                PlannedStmt::Interpret(s) => crate::exec::execute_in_env(s, ctx, &mut env)?,
            };
            all.merge(fx);
        }
        Ok(all)
    }

    /// Execute the plan as a *standing* firing: delta-capable statements
    /// feed only rows appended since `prev` when the append-only premise
    /// holds (per-table delete generations in `spans` unchanged,
    /// snapshots at least as long), and re-execute from scratch
    /// otherwise. Effects are exactly [`PhysicalPlan::execute`]'s; the
    /// returned state must be committed by the caller only after the
    /// effects applied, so a failed apply simply replays.
    pub fn execute_standing(
        &self,
        ctx: &dyn QueryContext,
        spans: &HashMap<String, u64>,
        prev: &PlanDeltaState,
        registry: Option<&ArrangementRegistry>,
    ) -> Result<(Effects, DeltaOutcome, PlanDeltaState)> {
        let out = delta::run_standing(&self.stmts, ctx, spans, prev, registry)?;
        Ok((out.effects, out.outcome, out.state))
    }

    /// Human-readable plan dump — the `EXPLAIN` body.
    pub fn describe(&self) -> Vec<String> {
        let mut out = Vec::new();
        out.push(format!(
            "plan statements={} fast={} delta={} interpreted={} compile_micros={}",
            self.stmts.len(),
            self.fast_count(),
            self.delta_count(),
            self.stmts.len() - self.fast_count() - self.delta_count(),
            self.compile_micros,
        ));
        for (name, req) in &self.requirements {
            let cols = match req.columns.as_cols() {
                None => "*".to_string(),
                Some(set) => {
                    let v: Vec<&str> = set.iter().map(|s| s.as_str()).collect();
                    if v.is_empty() {
                        "(row-count only)".to_string()
                    } else {
                        v.join(",")
                    }
                }
            };
            let lineage = if !req.consuming {
                "none"
            } else if req.needs_lineage {
                "rid"
            } else {
                "selection-vector"
            };
            out.push(format!(
                "scan {name} cols={cols} consuming={} lineage={lineage}",
                req.consuming
            ));
        }
        for (i, ps) in self.stmts.iter().enumerate() {
            match ps {
                PlannedStmt::Interpret(s) => {
                    out.push(format!("stmt {i}: interpret {}", stmt_label(s)));
                }
                PlannedStmt::Delta(d) => describe_delta(i, d, &mut out),
                PlannedStmt::Fast(f) => {
                    let sink = match &f.sink {
                        Sink::Result => "select".to_string(),
                        Sink::Insert { table, .. } => format!("insert into {table}"),
                    };
                    out.push(format!("stmt {i}: fast {sink}"));
                    out.push(format!(
                        "  scan {}{}{}",
                        f.table,
                        if f.consuming { " [consume]" } else { "" },
                        match &f.wanted {
                            None => " cols=*".to_string(),
                            Some(w) if w.is_empty() => " cols=(row-count only)".to_string(),
                            Some(w) => format!(" cols={}", w.join(",")),
                        }
                    ));
                    for p in &f.inner_preds {
                        out.push(format!("  filter {} [{}]", expr_sql(&p.expr), pred_tag(p)));
                    }
                    if let Some(n) = f.inner_top {
                        out.push(format!("  top {n} (inner: bounds consumption)"));
                    }
                    if let InnerCols::List(items) = &f.inner_cols {
                        let names: Vec<&str> =
                            items.iter().map(|(n, _)| n.as_str()).collect();
                        out.push(format!("  view {}", names.join(",")));
                    }
                    for p in &f.outer_preds {
                        out.push(format!("  filter {} [{}]", expr_sql(&p.expr), pred_tag(p)));
                    }
                    if let Some(n) = f.outer_top {
                        out.push(format!("  top {n}"));
                    }
                    out.push(format!(
                        "  materialize gather cols={} at projection",
                        match &f.proj_cols {
                            None => "*".to_string(),
                            Some(c) if c.is_empty() => "(row-count only)".to_string(),
                            Some(c) => c.join(","),
                        }
                    ));
                    let proj: Vec<String> = f
                        .projection
                        .iter()
                        .map(|p| match p {
                            ProjItem::Star => "*".to_string(),
                            ProjItem::Expr { long, .. } => long.clone(),
                        })
                        .collect();
                    out.push(format!("  project {}", proj.join(", ")));
                }
            }
        }
        out
    }
}

/// EXPLAIN block for a delta-capable statement.
fn describe_delta(i: usize, d: &delta::DeltaQuery, out: &mut Vec<String>) {
    let sink = match &d.sink {
        Sink::Result => "select".to_string(),
        Sink::Insert { table, .. } => format!("insert into {table}"),
    };
    match &d.shape {
        delta::DeltaShape::Join(j) => {
            out.push(format!("stmt {i}: hash_join {sink} [delta-capable]"));
            out.push(format!("  scan {} as {}", j.left.table, j.left.binding));
            out.push(format!("  scan {} as {}", j.right.table, j.right.binding));
            out.push(format!(
                "  key {}.{} = {}.{}",
                j.lkey.0, j.lkey.1, j.rkey.0, j.rkey.1
            ));
            for (ci, c) in d.conjuncts.iter().enumerate() {
                if ci != j.key_idx {
                    out.push(format!("  residual {}", expr_sql(c)));
                }
            }
            out.push(format!("  arrange {}.{} (shared)", j.left.table, j.lkey.1));
            out.push(format!("  arrange {}.{} (shared)", j.right.table, j.rkey.1));
        }
        delta::DeltaShape::Group(g) => {
            out.push(format!("stmt {i}: grouped_agg {sink} [delta-capable]"));
            out.push(format!("  scan {} as {}", g.scan.table, g.scan.binding));
            for c in &d.conjuncts {
                out.push(format!("  filter {}", expr_sql(c)));
            }
            let keys = if d.select.group_by.is_empty() {
                "(global)".to_string()
            } else {
                d.select
                    .group_by
                    .iter()
                    .map(expr_sql)
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            out.push(format!("  group keys {keys}"));
            if let Ok(rw) = crate::exec::select::rewrite_for_grouping(&d.select) {
                let aggs: Vec<String> = rw.aggs.iter().map(expr_sql).collect();
                out.push(format!("  aggs {}", aggs.join(", ")));
            }
            out.push("  arrange per-group accumulators".to_string());
        }
    }
    out.push("  mode delta|full decided per firing (append-only premise)".to_string());
}

fn pred_tag(p: &Pred) -> &'static str {
    match p.kind {
        PredKind::ColConst { .. } => "index",
        PredKind::ColRange { .. } => "range",
        PredKind::ColCol { .. } => "col-col",
        PredKind::General => "general",
    }
}

fn stmt_label(s: &Stmt) -> String {
    match s {
        Stmt::Select(_) => "select (general shape)".into(),
        Stmt::Insert { table, .. } => format!("insert into {table} (general shape)"),
        Stmt::With { binding, .. } => format!("with {binding} split block"),
        Stmt::Declare { name, .. } => format!("declare {name}"),
        Stmt::Set { name, .. } => format!("set {name}"),
        Stmt::Create { name, .. } => format!("create {name}"),
    }
}

/// Minimal SQL rendering for EXPLAIN output.
fn expr_sql(e: &Expr) -> String {
    match e {
        Expr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{q}.{name}"),
            None => name.clone(),
        },
        Expr::Literal(v) => match v {
            Value::Str(s) => format!("'{s}'"),
            other => other.to_string(),
        },
        Expr::Unary { op, expr } => {
            let op = match op {
                crate::ast::UnaryOp::Neg => "-",
                crate::ast::UnaryOp::Not => "not ",
            };
            format!("{op}{}", expr_sql(expr))
        }
        Expr::Binary { op, left, right } => {
            let op = match op {
                BinOp::Or => "or",
                BinOp::And => "and",
                BinOp::Eq => "=",
                BinOp::Ne => "<>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
            };
            format!("{} {op} {}", expr_sql(left), expr_sql(right))
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => format!(
            "{}{} between {} and {}",
            expr_sql(expr),
            if *negated { " not" } else { "" },
            expr_sql(lo),
            expr_sql(hi)
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let items: Vec<String> = list.iter().map(expr_sql).collect();
            format!(
                "{}{} in ({})",
                expr_sql(expr),
                if *negated { " not" } else { "" },
                items.join(", ")
            )
        }
        Expr::IsNull { expr, negated } => format!(
            "{} is{} null",
            expr_sql(expr),
            if *negated { " not" } else { "" }
        ),
        Expr::FuncCall { name, args, star } => {
            if *star {
                format!("{name}(*)")
            } else {
                let args: Vec<String> = args.iter().map(expr_sql).collect();
                format!("{name}({})", args.join(", "))
            }
        }
        Expr::ScalarSubquery(_) => "(subquery)".into(),
    }
}

// ---- fast-shape lowering ----------------------------------------------------

fn clause_free(s: &SelectStmt) -> bool {
    !s.distinct
        && s.group_by.is_empty()
        && s.having.is_none()
        && s.order_by.is_empty()
        && s.union.is_none()
}

fn effective_top(s: &SelectStmt) -> Option<usize> {
    match (s.top, s.limit) {
        (Some(t), Some(l)) => Some(t.min(l) as usize),
        (Some(t), None) => Some(t as usize),
        (None, Some(l)) => Some(l as usize),
        (None, None) => None,
    }
}

fn try_fast(stmt: &Stmt) -> Option<FastQuery> {
    let (sink, s) = match stmt {
        Stmt::Select(s) => (Sink::Result, s),
        Stmt::Insert {
            table,
            columns,
            source,
        } => (
            Sink::Insert {
                table: table.clone(),
                columns: columns.clone(),
            },
            source,
        ),
        _ => return None,
    };
    compile_select(sink, s, stmt)
}

fn compile_select(sink: Sink, s: &SelectStmt, src: &Stmt) -> Option<FastQuery> {
    if !clause_free(s) || s.from.len() != 1 {
        return None;
    }
    // aggregates route through the grouped pipeline — interpreter shape
    if s.projection.iter().any(
        |p| matches!(p, SelectItem::Expr { expr, .. } if expr.contains_aggregate()),
    ) {
        return None;
    }
    let (table, consuming, binding, inner_preds, inner_top, inner_cols) = match &s.from[0] {
        FromItem::Table { name, alias } => (
            name.clone(),
            false,
            Some(alias.clone().unwrap_or_else(|| name.clone())),
            Vec::new(),
            None,
            InnerCols::Star,
        ),
        FromItem::Basket { query, alias } => {
            let parts = compile_inner(query)?;
            (parts.0, true, alias.clone(), parts.1, parts.2, parts.3)
        }
        FromItem::Subquery { query, alias } => {
            let parts = compile_inner(query)?;
            (
                parts.0,
                false,
                Some(alias.clone()),
                parts.1,
                parts.2,
                parts.3,
            )
        }
    };

    // outer projection, with interpreter-identical long names
    let mut projection = Vec::with_capacity(s.projection.len());
    let mut proj_cols: Option<Vec<String>> = Some(Vec::new());
    for (ordinal, item) in s.projection.iter().enumerate() {
        match item {
            SelectItem::Star => {
                projection.push(ProjItem::Star);
                proj_cols = None;
            }
            SelectItem::QualifiedStar(q) => {
                // only the single scan's binding can match; anything else
                // is an interpreter-shape error path
                if binding.as_deref() != Some(q.as_str()) {
                    return None;
                }
                projection.push(ProjItem::Star);
                proj_cols = None;
            }
            SelectItem::Expr { expr, .. } => {
                let rewritten = const_fold(&strip_qualifier(expr, binding.as_deref()));
                if let Some(cols) = &mut proj_cols {
                    collect_view_cols(&rewritten, cols);
                }
                projection.push(ProjItem::Expr {
                    long: crate::exec::eval::display_name(item, ordinal),
                    expr: rewritten,
                });
            }
        }
    }

    let outer_preds = compile_conjuncts(s.where_clause.as_ref(), binding.as_deref());

    // exact columns this statement pulls from the base scan
    let wanted = column_requirements(std::slice::from_ref(src))
        .remove(&table)
        .and_then(|r| {
            r.columns
                .as_cols()
                .map(|set| set.iter().cloned().collect::<Vec<String>>())
        });

    Some(FastQuery {
        sink,
        table,
        consuming,
        binding,
        wanted,
        inner_preds,
        inner_top,
        inner_cols,
        outer_preds,
        outer_top: effective_top(s),
        projection,
        proj_cols: proj_cols.map(|mut v| {
            v.sort();
            v.dedup();
            v
        }),
    })
}

type InnerParts = (String, Vec<Pred>, Option<usize>, InnerCols);

/// Lower the inner query of a basket expression / derived table:
/// a single plain scan with conjunctive predicates, TOP/LIMIT, and a
/// `*` or plain-column projection.
fn compile_inner(q: &SelectStmt) -> Option<InnerParts> {
    if !clause_free(q) || q.from.len() != 1 {
        return None;
    }
    let FromItem::Table { name, alias } = &q.from[0] else {
        return None;
    };
    let inner_binding = alias.clone().unwrap_or_else(|| name.clone());
    let cols = inner_cols(&q.projection, &inner_binding)?;
    let preds = compile_conjuncts(q.where_clause.as_ref(), Some(&inner_binding));
    Some((name.clone(), preds, effective_top(q), cols))
}

/// Inner projections: `*` alone, or a list of plain column references —
/// anything else (expressions, aggregates, mixed stars) falls back.
fn inner_cols(items: &[SelectItem], binding: &str) -> Option<InnerCols> {
    if matches!(items, [SelectItem::Star]) {
        return Some(InnerCols::Star);
    }
    let mut longs: Vec<String> = Vec::with_capacity(items.len());
    let mut exprs: Vec<Expr> = Vec::with_capacity(items.len());
    for (ordinal, item) in items.iter().enumerate() {
        let SelectItem::Expr { expr, .. } = item else {
            return None;
        };
        if !matches!(expr, Expr::Column { .. }) {
            return None;
        }
        longs.push(crate::exec::eval::display_name(item, ordinal));
        exprs.push(strip_qualifier(expr, Some(binding)));
    }
    if longs.is_empty() {
        return None;
    }
    // the interpreter's qualifier-strip rule: short names when unique
    let shorts: Vec<String> = longs
        .iter()
        .map(|n| n.rsplit('.').next().unwrap_or(n).to_string())
        .collect();
    let unique = shorts.iter().collect::<BTreeSet<_>>().len() == shorts.len();
    let names = if unique { shorts } else { longs };
    Some(InnerCols::List(names.into_iter().zip(exprs).collect()))
}

/// Bare column names an expression resolves against the view (stops at
/// scalar subqueries — their scope is their own).
fn collect_view_cols(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Column {
            qualifier: None,
            name,
        } => out.push(name.clone()),
        Expr::Column { .. } | Expr::Literal(_) | Expr::ScalarSubquery(_) => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => collect_view_cols(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_view_cols(left, out);
            collect_view_cols(right, out);
        }
        Expr::Between { expr, lo, hi, .. } => {
            collect_view_cols(expr, out);
            collect_view_cols(lo, out);
            collect_view_cols(hi, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_view_cols(expr, out);
            for i in list {
                collect_view_cols(i, out);
            }
        }
        Expr::FuncCall { args, .. } => {
            for a in args {
                collect_view_cols(a, out);
            }
        }
    }
}

// ---- lineage marking --------------------------------------------------------

/// For interpreter-shape statements, mark consumed tables whose basket
/// expressions materialize `#rid:` lineage (everything except the
/// trivial whole-basket `[select * from T]` scan).
fn mark_lineage_stmt(stmt: &Stmt, reqs: &mut BTreeMap<String, ScanRequirement>) {
    match stmt {
        Stmt::Select(s) => mark_lineage_select(s, false, reqs),
        Stmt::Insert { source, .. } => mark_lineage_select(source, false, reqs),
        Stmt::With { source, body, .. } => {
            mark_lineage_select(source, true, reqs);
            for s in body {
                mark_lineage_stmt(s, reqs);
            }
        }
        _ => {}
    }
}

fn trivial_whole_scan(s: &SelectStmt) -> Option<&str> {
    let simple = clause_free(s)
        && s.top.is_none()
        && s.limit.is_none()
        && s.where_clause.is_none()
        && matches!(s.projection.as_slice(), [SelectItem::Star]);
    if !simple {
        return None;
    }
    match s.from.as_slice() {
        [FromItem::Table { name, .. }] => Some(name),
        _ => None,
    }
}

fn mark_lineage_select(
    s: &SelectStmt,
    consuming: bool,
    reqs: &mut BTreeMap<String, ScanRequirement>,
) {
    if consuming && trivial_whole_scan(s).is_none() {
        // every base scan inside this tracked select carries lineage
        for item in &s.from {
            match item {
                FromItem::Table { name, .. } => {
                    if let Some(r) = reqs.get_mut(name) {
                        if r.consuming {
                            r.needs_lineage = true;
                        }
                    }
                }
                FromItem::Basket { query, .. } | FromItem::Subquery { query, .. } => {
                    mark_lineage_select(query, consuming, reqs)
                }
            }
        }
    } else {
        for item in &s.from {
            match item {
                FromItem::Basket { query, .. } => mark_lineage_select(query, true, reqs),
                FromItem::Subquery { query, .. } => mark_lineage_select(query, false, reqs),
                FromItem::Table { .. } => {}
            }
        }
    }
    if let Some((_, rhs)) = &s.union {
        mark_lineage_select(rhs, consuming, reqs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_statements;

    fn plan_of(src: &str) -> PhysicalPlan {
        PhysicalPlan::compile(&parse_statements(src).unwrap())
    }

    #[test]
    fn fast_shapes_compile() {
        let p = plan_of("select a, b from R where a > 3");
        assert_eq!(p.fast_count(), 1);
        let p = plan_of("insert into O select a from [select a, b from S where b = 1] as Z");
        assert_eq!(p.fast_count(), 1);
        let p = plan_of("select top 3 x from (select x from T) as d where d.x < 9");
        assert_eq!(p.fast_count(), 1);
    }

    #[test]
    fn general_shapes_fall_back() {
        assert_eq!(plan_of("select count(*) from R").fast_count(), 0);
        assert_eq!(plan_of("select a from R order by a").fast_count(), 0);
        assert_eq!(plan_of("select distinct a from R").fast_count(), 0);
        assert_eq!(
            plan_of("select * from X, Y where X.id = Y.id").fast_count(),
            0
        );
        assert_eq!(
            plan_of("select a from R union all select a from R").fast_count(),
            0
        );
    }

    #[test]
    fn requirements_prune_and_widen() {
        let p = plan_of("select a from R where b > 1 and R.c = 2");
        let req = &p.requirements()["R"];
        assert_eq!(
            req.columns.as_cols().unwrap().iter().cloned().collect::<Vec<_>>(),
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
        assert!(!req.consuming);

        let p = plan_of("select * from R");
        assert!(p.wanted_for("R").is_none(), "star requires everything");

        // inner explicit projection bounds the base need even when the
        // outer projection is a star
        let p = plan_of("select * from [select a, b from S] as Z");
        let cols = p.wanted_for("S").unwrap();
        assert_eq!(cols.iter().cloned().collect::<Vec<_>>(), vec!["a", "b"]);
        assert!(p.requirements()["S"].consuming);
    }

    #[test]
    fn unqualified_names_spread_to_all_scans() {
        let p = plan_of("select vx from X, Y where X.id = Y.id and vy > 2");
        let x = p.wanted_for("X").unwrap();
        let y = p.wanted_for("Y").unwrap();
        // vx/vy can resolve against either side; id is qualified
        assert!(x.contains("vx") && x.contains("vy") && x.contains("id"));
        assert!(y.contains("vx") && y.contains("vy") && y.contains("id"));
    }

    #[test]
    fn scalar_subquery_scopes_are_isolated() {
        let p = plan_of("select a from R where a = (select max(h) from HB)");
        assert!(p.wanted_for("HB").unwrap().contains("h"));
        assert!(!p.wanted_for("HB").unwrap().contains("a"));
        assert!(p.wanted_for("R").unwrap().contains("a"));
    }

    #[test]
    fn predicates_fold_and_order() {
        let p = plan_of("select a from R where a + b > 0 and a > 10 + 5");
        let PlannedStmt::Fast(f) = &p.stmts[0] else {
            panic!("fast shape expected")
        };
        // folded `a > 15` ordered before the general conjunct
        assert!(matches!(
            &f.outer_preds[0].kind,
            PredKind::ColConst { col, op: CmpOp::Gt, k: Value::Int(15) } if col == "a"
        ));
        assert!(matches!(&f.outer_preds[1].kind, PredKind::General));
    }

    #[test]
    fn between_compiles_to_range() {
        let p = plan_of("select a from R where a between 2 and 6");
        let PlannedStmt::Fast(f) = &p.stmts[0] else {
            panic!()
        };
        assert!(matches!(&f.outer_preds[0].kind, PredKind::ColRange { .. }));
        // double bounds keep interpreter coercions — general shape
        let p = plan_of("select a from R where a between 1.5 and 6.5");
        let PlannedStmt::Fast(f) = &p.stmts[0] else {
            panic!()
        };
        assert!(matches!(&f.outer_preds[0].kind, PredKind::General));
    }

    #[test]
    fn lineage_flags() {
        // fast consuming shape: selection-vector lineage
        let p = plan_of("select a from [select a from S where a > 1] as Z");
        assert!(!p.requirements()["S"].needs_lineage);
        // interpreter consuming shape (join inside the brackets): rid
        let p = plan_of("select A.id from [select * from X, Y where X.id = Y.id] as A");
        assert!(p.requirements()["X"].needs_lineage);
        assert!(p.requirements()["Y"].needs_lineage);
    }

    #[test]
    fn describe_mentions_scans_and_filters() {
        let p = plan_of(
            "insert into O select a from [select a, b from S where b = 7] as Z where Z.a > 1",
        );
        let d = p.describe().join("\n");
        assert!(d.contains("fast insert into O"));
        assert!(d.contains("scan S"));
        assert!(d.contains("[consume]"));
        assert!(d.contains("b = 7"));
        assert!(d.contains("selection-vector"));
    }
}
