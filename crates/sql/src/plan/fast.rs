//! Selection-vector execution of compiled [`FastQuery`] statements.
//!
//! Filter stages pass [`SelVec`] candidate lists; nothing is gathered
//! until the projection boundary, and the materializing gather touches
//! only the columns the projection resolves. Semantics mirror the
//! interpreter ([`crate::exec::select::run_select`]) exactly — pinned by
//! `tests/plan_equivalence.rs`.

use monet::ops::select::{select_cmp, select_cmp_cols, select_range, select_true};
use monet::prelude::*;

use crate::error::{Result, SqlError};
use crate::exec::eval::{eval_expr, resolve_column};
use crate::exec::{merge_consumed, Effects, ExecEnv, QueryContext};
use crate::plan::{FastQuery, InnerCols, Pred, PredKind, ProjItem, Sink};

/// Execute one compiled statement.
pub(crate) fn run_fast(
    q: &FastQuery,
    ctx: &dyn QueryContext,
    env: &mut ExecEnv,
) -> Result<Effects> {
    // ---- scan (pruned when the context supports it) -----------------------
    let base = match &q.wanted {
        Some(cols) => ctx.columns(&q.table, cols)?,
        None => ctx.relation(&q.table)?,
    };

    // ---- inner predicates: selection vectors over base positions ----------
    let mut sel: Option<SelVec> = None;
    for p in &q.inner_preds {
        sel = Some(apply_pred(p, &base, ctx, env, sel.as_ref())?);
    }
    if let Some(n) = q.inner_top {
        sel = Some(match sel {
            Some(s) => s.take_first(n),
            None => SelVec::range(0, n.min(base.len()) as u32),
        });
    }

    // ---- consumption = the rows the basket expression *referenced* --------
    let mut consumed: Vec<(String, SelVec)> = Vec::new();
    if q.consuming {
        let c = sel.clone().unwrap_or_else(|| SelVec::all(base.len()));
        merge_consumed(&mut consumed, vec![(q.table.clone(), c)]);
    }

    // ---- the view the outer clauses see -----------------------------------
    let view: Relation = match &q.inner_cols {
        InnerCols::Star => base.clone(),
        InnerCols::List(items) => {
            let mut cols = Vec::with_capacity(items.len());
            for (name, expr) in items {
                // plain columns are O(1) Arc bumps; a name that is really
                // a variable broadcasts, exactly like the interpreter's
                // projection would
                cols.push((name.clone(), eval_expr(expr, &base, ctx, env)?));
            }
            Relation::from_columns(cols)?
        }
    };

    // ---- outer predicates (candidates carry over; positions align) --------
    for p in &q.outer_preds {
        sel = Some(apply_pred(p, &view, ctx, env, sel.as_ref())?);
    }
    if let Some(n) = q.outer_top {
        sel = Some(match sel {
            Some(s) => s.take_first(n),
            None => SelVec::range(0, n.min(view.len()) as u32),
        });
    }
    let final_sel = sel.unwrap_or_else(|| SelVec::all(view.len()));

    // ---- materialize: one gather, only the projected columns --------------
    let gathered = gather_for_projection(q, &view, &final_sel)?;
    let out = project_fast(q, &gathered, ctx, env)?;

    let mut fx = Effects {
        consumed,
        ..Effects::default()
    };
    match &q.sink {
        Sink::Result => fx.result = Some(out),
        Sink::Insert { table, columns } => {
            fx.inserts.push((table.clone(), columns.clone(), out))
        }
    }
    Ok(fx)
}

/// Reduce the candidate list by one conjunct. Indexable kinds run as
/// typed selection scans; a named "column" that turns out not to exist
/// (e.g. a global variable) falls back to mask evaluation, which
/// reproduces the interpreter's resolution (and its errors) verbatim.
fn apply_pred(
    p: &Pred,
    rel: &Relation,
    ctx: &dyn QueryContext,
    env: &ExecEnv,
    cand: Option<&SelVec>,
) -> Result<SelVec> {
    match &p.kind {
        PredKind::ColConst { col, op, k } => {
            if let Ok(i) = resolve_column(rel, None, col) {
                return Ok(select_cmp(rel.col_at(i), *op, k, cand)?);
            }
            general(p, rel, ctx, env, cand)
        }
        PredKind::ColRange { col, lo, hi } => {
            if let Ok(i) = resolve_column(rel, None, col) {
                return Ok(select_range(rel.col_at(i), lo, hi, true, true, cand)?);
            }
            general(p, rel, ctx, env, cand)
        }
        PredKind::ColCol { left, right, op } => {
            if let (Ok(i), Ok(j)) = (
                resolve_column(rel, None, left),
                resolve_column(rel, None, right),
            ) {
                return Ok(select_cmp_cols(rel.col_at(i), rel.col_at(j), *op, cand)?);
            }
            general(p, rel, ctx, env, cand)
        }
        PredKind::General => general(p, rel, ctx, env, cand),
    }
}

fn general(
    p: &Pred,
    rel: &Relation,
    ctx: &dyn QueryContext,
    env: &ExecEnv,
    cand: Option<&SelVec>,
) -> Result<SelVec> {
    let mask = eval_expr(&p.expr, rel, ctx, env)?;
    Ok(select_true(&mask, cand)?)
}

/// Gather only the view columns the projection touches (plus a row-count
/// carrier when the projection is literal-only).
fn gather_for_projection(q: &FastQuery, view: &Relation, sel: &SelVec) -> Result<Relation> {
    let sub: Relation = match &q.proj_cols {
        None => view.clone(),
        Some(names) => {
            let mut cols: Vec<(String, Column)> = Vec::new();
            for n in names {
                if let Ok(i) = view.column_idx(n) {
                    cols.push((view.names()[i].clone(), view.col_at(i).clone()));
                }
            }
            if cols.is_empty() {
                if view.width() == 0 {
                    return Err(SqlError::Exec("scan produced no columns".into()));
                }
                // literal-only projection still needs the row count
                cols.push((view.names()[0].clone(), view.col_at(0).clone()));
            }
            Relation::from_columns(cols)?
        }
    };
    Ok(sub.gather(sel)?)
}

/// Evaluate the projection, mirroring the interpreter's naming rules:
/// long names first, short (qualifier-stripped) names when unique.
fn project_fast(
    q: &FastQuery,
    rel: &Relation,
    ctx: &dyn QueryContext,
    env: &ExecEnv,
) -> Result<Relation> {
    let mut cols: Vec<(String, Column)> = Vec::new();
    for item in &q.projection {
        match item {
            ProjItem::Star => {
                for (i, name) in rel.names().iter().enumerate() {
                    if name.starts_with('#') {
                        continue;
                    }
                    let long = match &q.binding {
                        Some(b) => format!("{b}.{name}"),
                        None => name.clone(),
                    };
                    cols.push((long, rel.col_at(i).clone()));
                }
            }
            ProjItem::Expr { long, expr } => {
                cols.push((long.clone(), eval_expr(expr, rel, ctx, env)?));
            }
        }
    }
    if cols.is_empty() {
        return Err(SqlError::Exec("SELECT * requires a FROM clause".into()));
    }
    let shorts: Vec<String> = cols
        .iter()
        .map(|(n, _)| n.rsplit('.').next().unwrap_or(n).to_string())
        .collect();
    let unique = shorts
        .iter()
        .collect::<std::collections::HashSet<_>>()
        .len()
        == shorts.len();
    let named: Vec<(String, Column)> = cols
        .into_iter()
        .zip(shorts)
        .map(|((long, col), short)| (if unique { short } else { long }, col))
        .collect();
    Ok(Relation::from_columns(named)?)
}
