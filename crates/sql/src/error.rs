//! Errors for the SQL front-end and executor.

use std::fmt;

use monet::error::MonetError;

/// Errors across lexing, parsing and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error at a byte offset.
    Lex { offset: usize, message: String },
    /// Syntax error at a byte offset.
    Parse { offset: usize, message: String },
    /// Semantic/runtime error while executing a statement.
    Exec(String),
    /// Unknown column reference.
    UnknownColumn(String),
    /// Ambiguous unqualified column reference.
    AmbiguousColumn(String),
    /// Unknown table/basket/variable.
    Unknown(String),
    /// Kernel error bubbled up.
    Kernel(MonetError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { offset, message } => write!(f, "lex error at {offset}: {message}"),
            SqlError::Parse { offset, message } => {
                write!(f, "parse error at {offset}: {message}")
            }
            SqlError::Exec(m) => write!(f, "execution error: {m}"),
            SqlError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            SqlError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            SqlError::Unknown(n) => write!(f, "unknown name: {n}"),
            SqlError::Kernel(e) => write!(f, "kernel error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<MonetError> for SqlError {
    fn from(e: MonetError) -> Self {
        SqlError::Kernel(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            SqlError::Lex {
                offset: 3,
                message: "x".into()
            }
            .to_string(),
            "lex error at 3: x"
        );
        assert_eq!(
            SqlError::UnknownColumn("a.b".into()).to_string(),
            "unknown column: a.b"
        );
        let k: SqlError = MonetError::NotFound("t".into()).into();
        assert_eq!(k.to_string(), "kernel error: not found: t");
    }
}
