//! Recursive-descent parser for the DataCell dialect.
//!
//! Notable dialect points (all from the paper's examples):
//!
//! * `[select ...]` in FROM position (or as an INSERT source) is a
//!   **basket expression** — square brackets mark consuming scans.
//! * `select top 20 from X order by tag` — projection may be omitted
//!   (implicit `*`), and `TOP n` bounds the result set.
//! * `select all from X ...` — `ALL` is an explicit "every column".
//! * Interval literals: `1 hour`, `30 seconds` — parsed into microsecond
//!   integer literals (the engine clock is microseconds).
//! * `WITH a AS [..] BEGIN insert ...; insert ...; END` — split blocks.

use monet::value::{Value, ValueType};

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::lexer::lex;
use crate::token::{Keyword, Spanned, Token};

/// Microseconds per unit, for interval literals.
fn interval_unit(word: &str) -> Option<i64> {
    match word.to_ascii_lowercase().as_str() {
        "microsecond" | "microseconds" | "usec" | "usecs" => Some(1),
        "millisecond" | "milliseconds" | "msec" | "msecs" => Some(1_000),
        "second" | "seconds" | "sec" | "secs" => Some(1_000_000),
        "minute" | "minutes" | "min" | "mins" => Some(60_000_000),
        "hour" | "hours" => Some(3_600_000_000),
        "day" | "days" => Some(86_400_000_000),
        _ => None,
    }
}

/// Parse one statement (a trailing semicolon is allowed).
pub fn parse_statement(src: &str) -> Result<Stmt> {
    let mut stmts = parse_statements(src)?;
    match stmts.len() {
        1 => Ok(stmts.pop().expect("len checked")),
        n => Err(SqlError::Parse {
            offset: 0,
            message: format!("expected exactly one statement, found {n}"),
        }),
    }
}

/// Parse a semicolon-separated script.
pub fn parse_statements(src: &str) -> Result<Vec<Stmt>> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat(&Token::Semicolon) {}
        if p.at_end() {
            break;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |s| s.offset)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Keyword) -> bool {
        self.eat(&Token::Keyword(k))
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(format!("expected {t}, found {}", self.found())))
        }
    }

    fn expect_kw(&mut self, k: Keyword) -> Result<()> {
        self.expect(&Token::Keyword(k))
    }

    fn found(&self) -> String {
        self.peek()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "end of input".into())
    }

    fn error(&self, message: String) -> SqlError {
        SqlError::Parse {
            offset: self.offset(),
            message,
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Token::Ident(_)) => {
                if let Some(Token::Ident(s)) = self.next() {
                    Ok(s)
                } else {
                    unreachable!()
                }
            }
            _ => Err(self.error(format!("expected identifier, found {}", self.found()))),
        }
    }

    // ---- statements ------------------------------------------------------

    fn statement(&mut self) -> Result<Stmt> {
        match self.peek() {
            Some(Token::Keyword(Keyword::Select)) | Some(Token::LBracket) => {
                Ok(Stmt::Select(self.select()?))
            }
            Some(Token::Keyword(Keyword::Insert)) => self.insert(),
            Some(Token::Keyword(Keyword::With)) => self.with_block(),
            Some(Token::Keyword(Keyword::Declare)) => self.declare(),
            Some(Token::Keyword(Keyword::Set)) => self.set_stmt(),
            Some(Token::Keyword(Keyword::Create)) => self.create(),
            _ => Err(self.error(format!("expected a statement, found {}", self.found()))),
        }
    }

    fn insert(&mut self) -> Result<Stmt> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.ident()?;
        let columns = if self.peek() == Some(&Token::LParen)
            && matches!(self.peek2(), Some(Token::Ident(_)))
            && self.looks_like_column_list()
        {
            self.expect(&Token::LParen)?;
            let mut cols = vec![self.ident()?];
            while self.eat(&Token::Comma) {
                cols.push(self.ident()?);
            }
            self.expect(&Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        let source = match self.peek() {
            // `insert into t [select ...]`: basket-expression source.
            Some(Token::LBracket) => self.bracketed_source()?,
            Some(Token::Keyword(Keyword::Values)) => self.values_source()?,
            Some(Token::Keyword(Keyword::Select)) => self.select()?,
            Some(Token::LParen) => {
                self.expect(&Token::LParen)?;
                let s = self.select()?;
                self.expect(&Token::RParen)?;
                s
            }
            _ => {
                return Err(self.error(format!(
                    "expected SELECT, VALUES or basket expression, found {}",
                    self.found()
                )))
            }
        };
        Ok(Stmt::Insert {
            table,
            columns,
            source,
        })
    }

    /// Disambiguate `insert into t (a, b) select...` from
    /// `insert into t (select ...)`.
    fn looks_like_column_list(&self) -> bool {
        // scan forward: LParen Ident (Comma Ident)* RParen
        let mut i = self.pos + 1;
        loop {
            match self.tokens.get(i).map(|s| &s.token) {
                Some(Token::Ident(_)) => i += 1,
                _ => return false,
            }
            match self.tokens.get(i).map(|s| &s.token) {
                Some(Token::Comma) => i += 1,
                Some(Token::RParen) => return true,
                _ => return false,
            }
        }
    }

    /// `[select ...]` used as an INSERT source: desugars to
    /// `SELECT * FROM [select ...] AS __src` so basket-consumption
    /// semantics apply uniformly.
    fn bracketed_source(&mut self) -> Result<SelectStmt> {
        self.expect(&Token::LBracket)?;
        let inner = self.select()?;
        self.expect(&Token::RBracket)?;
        Ok(SelectStmt {
            projection: vec![SelectItem::Star],
            from: vec![FromItem::Basket {
                query: Box::new(inner),
                alias: Some("__src".into()),
            }],
            ..SelectStmt::default()
        })
    }

    /// `VALUES (a, b), (c, d)` desugars to FROM-less selects chained with
    /// UNION ALL.
    fn values_source(&mut self) -> Result<SelectStmt> {
        self.expect_kw(Keyword::Values)?;
        let mut rows: Vec<Vec<Expr>> = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = vec![self.expr()?];
            while self.eat(&Token::Comma) {
                row.push(self.expr()?);
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let mut iter = rows.into_iter().rev();
        let mut acc: Option<SelectStmt> = None;
        for row in iter.by_ref() {
            let stmt = SelectStmt {
                projection: row
                    .into_iter()
                    .map(|expr| SelectItem::Expr { expr, alias: None })
                    .collect(),
                union: acc.take().map(|s| (true, Box::new(s))),
                ..SelectStmt::default()
            };
            acc = Some(stmt);
        }
        acc.ok_or_else(|| self.error("VALUES needs at least one row".into()))
    }

    fn with_block(&mut self) -> Result<Stmt> {
        self.expect_kw(Keyword::With)?;
        let binding = self.ident()?;
        self.expect_kw(Keyword::As)?;
        self.expect(&Token::LBracket)?;
        let source = self.select()?;
        self.expect(&Token::RBracket)?;
        self.expect_kw(Keyword::Begin)?;
        let mut body = Vec::new();
        loop {
            while self.eat(&Token::Semicolon) {}
            if self.eat_kw(Keyword::End) {
                break;
            }
            if self.at_end() {
                return Err(self.error("unterminated WITH block (missing END)".into()));
            }
            body.push(self.statement()?);
        }
        Ok(Stmt::With {
            binding,
            source,
            body,
        })
    }

    fn declare(&mut self) -> Result<Stmt> {
        self.expect_kw(Keyword::Declare)?;
        let name = self.ident()?;
        let vtype = self.type_name()?;
        Ok(Stmt::Declare { name, vtype })
    }

    fn set_stmt(&mut self) -> Result<Stmt> {
        self.expect_kw(Keyword::Set)?;
        let name = self.ident()?;
        self.expect(&Token::Eq)?;
        let expr = self.expr()?;
        Ok(Stmt::Set { name, expr })
    }

    fn create(&mut self) -> Result<Stmt> {
        self.expect_kw(Keyword::Create)?;
        let kind = if self.eat_kw(Keyword::Table) {
            CreateKind::Table
        } else if self.eat_kw(Keyword::Basket) {
            CreateKind::Basket
        } else if self.eat_kw(Keyword::Stream) {
            CreateKind::Stream
        } else {
            return Err(self.error(format!(
                "expected TABLE, BASKET or STREAM, found {}",
                self.found()
            )));
        };
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut fields = Vec::new();
        loop {
            let col = self.ident()?;
            let vtype = self.type_name()?;
            fields.push((col, vtype));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Stmt::Create { kind, name, fields })
    }

    fn type_name(&mut self) -> Result<ValueType> {
        let t = self.next().ok_or_else(|| self.error("expected a type".into()))?;
        match t {
            Token::Keyword(Keyword::Int) | Token::Keyword(Keyword::Integer) => Ok(ValueType::Int),
            Token::Keyword(Keyword::Double) | Token::Keyword(Keyword::Float) => {
                Ok(ValueType::Double)
            }
            Token::Keyword(Keyword::Varchar) | Token::Keyword(Keyword::Text) => {
                // optional length: varchar(20)
                if self.eat(&Token::LParen) {
                    self.next();
                    self.expect(&Token::RParen)?;
                }
                Ok(ValueType::Str)
            }
            Token::Keyword(Keyword::Boolean) => Ok(ValueType::Bool),
            Token::Keyword(Keyword::Timestamp) => Ok(ValueType::Ts),
            other => Err(self.error(format!("expected a type, found {other}"))),
        }
    }

    // ---- SELECT ----------------------------------------------------------

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw(Keyword::Select)?;
        let mut stmt = SelectStmt::default();
        if self.eat_kw(Keyword::Distinct) {
            stmt.distinct = true;
        } else {
            // `select all from X` — explicit all-columns
            let all_is_projection = self.peek() == Some(&Token::Keyword(Keyword::All))
                && self.peek2() == Some(&Token::Keyword(Keyword::From));
            if all_is_projection {
                self.eat_kw(Keyword::All);
                stmt.projection.push(SelectItem::Star);
            }
        }
        if self.eat_kw(Keyword::Top) {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => stmt.top = Some(n as u64),
                _ => return Err(self.error("TOP requires a non-negative integer".into())),
            }
        }
        // projection (may be empty when FROM follows immediately)
        if stmt.projection.is_empty() && self.peek() != Some(&Token::Keyword(Keyword::From)) {
            loop {
                stmt.projection.push(self.select_item()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if stmt.projection.is_empty() {
            stmt.projection.push(SelectItem::Star);
        }
        if self.eat_kw(Keyword::From) {
            loop {
                stmt.from.push(self.from_item()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Keyword::Where) {
            stmt.where_clause = Some(self.expr()?);
        }
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            loop {
                stmt.group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Keyword::Having) {
            stmt.having = Some(self.expr()?);
        }
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let e = self.expr()?;
                let asc = if self.eat_kw(Keyword::Desc) {
                    false
                } else {
                    self.eat_kw(Keyword::Asc);
                    true
                };
                stmt.order_by.push((e, asc));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Keyword::Limit) {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => stmt.limit = Some(n as u64),
                _ => return Err(self.error("LIMIT requires a non-negative integer".into())),
            }
        }
        if self.eat_kw(Keyword::Union) {
            let all = self.eat_kw(Keyword::All);
            let rhs = self.select()?;
            stmt.union = Some((all, Box::new(rhs)));
        }
        Ok(stmt)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Star);
        }
        // alias.*
        if let (Some(Token::Ident(_)), Some(Token::Dot)) = (self.peek(), self.peek2()) {
            if self.tokens.get(self.pos + 2).map(|s| &s.token) == Some(&Token::Star) {
                let q = self.ident()?;
                self.expect(&Token::Dot)?;
                self.expect(&Token::Star)?;
                return Ok(SelectItem::QualifiedStar(q));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw(Keyword::As) || matches!(self.peek(), Some(Token::Ident(_))) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    // grammar-production name, not a conversion constructor
    #[allow(clippy::wrong_self_convention)]
    fn from_item(&mut self) -> Result<FromItem> {
        match self.peek() {
            Some(Token::LBracket) => {
                self.expect(&Token::LBracket)?;
                let q = self.select()?;
                self.expect(&Token::RBracket)?;
                let alias = self.optional_alias()?;
                Ok(FromItem::Basket {
                    query: Box::new(q),
                    alias,
                })
            }
            Some(Token::LParen) => {
                self.expect(&Token::LParen)?;
                let q = self.select()?;
                self.expect(&Token::RParen)?;
                let alias = self
                    .optional_alias()?
                    .ok_or_else(|| self.error("derived table requires an alias".into()))?;
                Ok(FromItem::Subquery {
                    query: Box::new(q),
                    alias,
                })
            }
            _ => {
                let name = self.ident()?;
                let alias = self.optional_alias()?;
                Ok(FromItem::Table { name, alias })
            }
        }
    }

    fn optional_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw(Keyword::As) {
            return Ok(Some(self.ident()?));
        }
        if matches!(self.peek(), Some(Token::Ident(_))) {
            return Ok(Some(self.ident()?));
        }
        Ok(None)
    }

    // ---- expressions (precedence climbing) --------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw(Keyword::Not) {
            let e = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let lhs = self.additive()?;
        // BETWEEN / IN / IS [NOT] NULL / NOT BETWEEN / NOT IN
        let negated = if self.peek() == Some(&Token::Keyword(Keyword::Not))
            && matches!(
                self.peek2(),
                Some(Token::Keyword(Keyword::Between)) | Some(Token::Keyword(Keyword::In))
            ) {
            self.eat_kw(Keyword::Not);
            true
        } else {
            false
        };
        if self.eat_kw(Keyword::Between) {
            let lo = self.additive()?;
            self.expect_kw(Keyword::And)?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.eat_kw(Keyword::In) {
            self.expect(&Token::LParen)?;
            let mut list = vec![self.expr()?];
            while self.eat(&Token::Comma) {
                list.push(self.expr()?);
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let rhs = self.additive()?;
            // chained comparisons `v1 < x < v2` parse as range predicates
            let chained_op = match self.peek() {
                Some(Token::Lt) => Some(BinOp::Lt),
                Some(Token::Le) => Some(BinOp::Le),
                Some(Token::Gt) => Some(BinOp::Gt),
                Some(Token::Ge) => Some(BinOp::Ge),
                _ => None,
            };
            if let Some(op2) = chained_op {
                self.next();
                let third = self.additive()?;
                // a op b op2 c  ==>  (a op b) AND (b op2 c)
                return Ok(Expr::bin(
                    BinOp::And,
                    Expr::bin(op, lhs, rhs.clone()),
                    Expr::bin(op2, rhs, third),
                ));
            }
            return Ok(Expr::bin(op, lhs, rhs));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.multiplicative()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.next();
            let rhs = self.unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            let e = self.unary()?;
            // constant-fold negative literals for cleaner ASTs
            if let Expr::Literal(Value::Int(v)) = e {
                return Ok(Expr::Literal(Value::Int(-v)));
            }
            if let Expr::Literal(Value::Double(v)) = e {
                return Ok(Expr::Literal(Value::Double(-v)));
            }
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(e),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.next();
                // interval literal: `1 hour`
                if let Some(Token::Ident(unit)) = self.peek() {
                    if let Some(mult) = interval_unit(unit) {
                        self.next();
                        return Ok(Expr::Literal(Value::Int(v.saturating_mul(mult))));
                    }
                }
                Ok(Expr::Literal(Value::Int(v)))
            }
            Some(Token::Float(v)) => {
                self.next();
                Ok(Expr::Literal(Value::Double(v)))
            }
            Some(Token::Str(s)) => {
                self.next();
                Ok(Expr::Literal(Value::Str(s)))
            }
            Some(Token::Keyword(Keyword::Null)) => {
                self.next();
                Ok(Expr::Literal(Value::Null))
            }
            Some(Token::Keyword(Keyword::True)) => {
                self.next();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            Some(Token::Keyword(Keyword::False)) => {
                self.next();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            Some(Token::LParen) => {
                self.next();
                if self.peek() == Some(&Token::Keyword(Keyword::Select)) {
                    let sub = self.select()?;
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(sub)));
                }
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(_)) => {
                let name = self.ident()?;
                // function call?
                if self.peek() == Some(&Token::LParen) {
                    return self.func_call(name);
                }
                // qualified column t.a
                if self.eat(&Token::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name,
                })
            }
            // aggregate-style keywords used as function names never clash
            // with our keyword set, so anything else is an error
            _ => Err(self.error(format!("expected an expression, found {}", self.found()))),
        }
    }

    fn func_call(&mut self, name: String) -> Result<Expr> {
        self.expect(&Token::LParen)?;
        let lowered = name.to_ascii_lowercase();
        if self.eat(&Token::Star) {
            self.expect(&Token::RParen)?;
            return Ok(Expr::FuncCall {
                name: lowered,
                args: vec![],
                star: true,
            });
        }
        // count(distinct x)
        if lowered == "count" && self.eat_kw(Keyword::Distinct) {
            let arg = self.expr()?;
            self.expect(&Token::RParen)?;
            return Ok(Expr::FuncCall {
                name: "count_distinct".into(),
                args: vec![arg],
                star: false,
            });
        }
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            args.push(self.expr()?);
            while self.eat(&Token::Comma) {
                args.push(self.expr()?);
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Expr::FuncCall {
            name: lowered,
            args,
            star: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(src: &str) -> SelectStmt {
        match parse_statement(src).unwrap() {
            Stmt::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn minimal_select() {
        let s = sel("select * from R");
        assert_eq!(s.projection, vec![SelectItem::Star]);
        assert_eq!(
            s.from,
            vec![FromItem::Table {
                name: "R".into(),
                alias: None
            }]
        );
    }

    #[test]
    fn paper_query_q1() {
        // q1 from §3.4
        let s = sel("select * from [select * from R] as S where S.a > v1");
        assert_eq!(s.from.len(), 1);
        match &s.from[0] {
            FromItem::Basket { query, alias } => {
                assert_eq!(alias.as_deref(), Some("S"));
                assert_eq!(query.projection, vec![SelectItem::Star]);
            }
            other => panic!("expected basket, got {other:?}"),
        }
        assert!(matches!(
            s.where_clause,
            Some(Expr::Binary { op: BinOp::Gt, .. })
        ));
    }

    #[test]
    fn paper_query_q2_nested_where() {
        let s = sel("select * from [select * from R where R.b<v2] as S where S.a >v1");
        match &s.from[0] {
            FromItem::Basket { query, .. } => {
                assert!(query.where_clause.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn chained_range_predicate() {
        // the micro-benchmark query: Where v1<S.A<v2
        let s = sel("Select * From S Where 10 < S.A and S.A < 20");
        let c = s.where_clause.unwrap();
        assert_eq!(c.conjuncts().len(), 2);
        let s = sel("Select * From S Where 10 < S.A < 20");
        let c = s.where_clause.unwrap();
        assert_eq!(c.conjuncts().len(), 2, "chained comparison splits");
    }

    #[test]
    fn top_with_implicit_projection() {
        // `select top 20 from X order by tag`
        let s = sel("select top 20 from X order by tag");
        assert_eq!(s.top, Some(20));
        assert_eq!(s.projection, vec![SelectItem::Star]);
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].1, "default ascending");
    }

    #[test]
    fn select_all_from() {
        let s = sel("select all from X where X.tag < 5");
        assert_eq!(s.projection, vec![SelectItem::Star]);
    }

    #[test]
    fn group_by_having_order_limit() {
        let s = sel(
            "select seg, count(*) as n from R group by seg having count(*) > 2 \
             order by n desc, seg limit 5",
        );
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(!s.order_by[0].1);
        assert!(s.order_by[1].1);
        assert_eq!(s.limit, Some(5));
    }

    #[test]
    fn aggregates_and_star_args() {
        let s = sel("select count(*), sum(*), count(distinct vid) from R");
        match &s.projection[0] {
            SelectItem::Expr { expr, .. } => match expr {
                Expr::FuncCall { name, star, .. } => {
                    assert_eq!(name, "count");
                    assert!(star);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        match &s.projection[2] {
            SelectItem::Expr { expr, .. } => {
                assert!(
                    matches!(expr, Expr::FuncCall { name, .. } if name == "count_distinct")
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn join_in_basket_expression() {
        // the merge/gather example
        let s = sel("select A.* from [select * from X,Y where X.id=Y.id] as A");
        assert_eq!(s.projection, vec![SelectItem::QualifiedStar("A".into())]);
        match &s.from[0] {
            FromItem::Basket { query, .. } => {
                assert_eq!(query.from.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_variants() {
        let s = parse_statement("insert into outliers select tag from b where payload > 100")
            .unwrap();
        assert!(matches!(s, Stmt::Insert { ref table, .. } if table == "outliers"));

        let s = parse_statement("insert into trash [select all from X where X.tag < now()-1 hour]")
            .unwrap();
        match s {
            Stmt::Insert { source, .. } => match &source.from[0] {
                FromItem::Basket { query, .. } => {
                    assert!(query.where_clause.is_some());
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }

        let s = parse_statement("insert into t (a, b) values (1, 'x'), (2, 'y')").unwrap();
        match s {
            Stmt::Insert {
                columns, source, ..
            } => {
                assert_eq!(columns, Some(vec!["a".into(), "b".into()]));
                assert!(source.union.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn with_split_block() {
        // the split example from §5
        let src = "with A as [select * from X] begin \
                   insert into Y select * from A where A.payload>100; \
                   insert into Z select * from A where A.payload<=200; \
                   end";
        match parse_statement(src).unwrap() {
            Stmt::With { binding, body, .. } => {
                assert_eq!(binding, "A");
                assert_eq!(body.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn declare_and_set() {
        let stmts =
            parse_statements("declare cnt integer; declare tot integer; set tot = 0; set cnt=0;")
                .unwrap();
        assert_eq!(stmts.len(), 4);
        assert!(matches!(
            stmts[0],
            Stmt::Declare {
                vtype: ValueType::Int,
                ..
            }
        ));
        match &stmts[2] {
            Stmt::Set { name, expr } => {
                assert_eq!(name, "tot");
                assert_eq!(expr, &Expr::lit(0i64));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn set_with_scalar_subquery() {
        let s = parse_statement("set cnt = cnt + (select count(*) from Z)").unwrap();
        match s {
            Stmt::Set { expr, .. } => {
                assert!(matches!(expr, Expr::Binary { op: BinOp::Add, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn create_statements() {
        let s = parse_statement("create basket X (tag timestamp, id int, payload double)")
            .unwrap();
        match s {
            Stmt::Create { kind, fields, .. } => {
                assert_eq!(kind, CreateKind::Basket);
                assert_eq!(
                    fields,
                    vec![
                        ("tag".into(), ValueType::Ts),
                        ("id".into(), ValueType::Int),
                        ("payload".into(), ValueType::Double),
                    ]
                );
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_statement("create view v (x int)").is_err());
    }

    #[test]
    fn interval_literals() {
        let s = parse_statement("set t = 1 hour").unwrap();
        match s {
            Stmt::Set { expr, .. } => assert_eq!(expr, Expr::lit(3_600_000_000i64)),
            other => panic!("{other:?}"),
        }
        let s = parse_statement("set t = 30 seconds").unwrap();
        match s {
            Stmt::Set { expr, .. } => assert_eq!(expr, Expr::lit(30_000_000i64)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn union_and_scalar_subquery_in_where() {
        // heartbeat example shape from §5
        let s = sel(
            "select * from X union select * from HB \
             where X.tag < (select max(tag) from HB)",
        );
        assert!(s.union.is_some());
    }

    #[test]
    fn between_in_isnull() {
        let s = sel("select * from R where a between 1 and 5 and b in (1,2) and c is not null");
        let w = s.where_clause.unwrap();
        assert_eq!(w.conjuncts().len(), 3);
        let s = sel("select * from R where a not between 1 and 5");
        assert!(matches!(
            s.where_clause.unwrap(),
            Expr::Between { negated: true, .. }
        ));
        let s = sel("select * from R where a not in (1)");
        assert!(matches!(
            s.where_clause.unwrap(),
            Expr::InList { negated: true, .. }
        ));
    }

    #[test]
    fn negative_literals_fold() {
        let s = sel("select -5, -2.5 from R");
        match &s.projection[0] {
            SelectItem::Expr { expr, .. } => assert_eq!(expr, &Expr::lit(-5i64)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_are_informative() {
        assert!(parse_statement("select from").is_err());
        assert!(parse_statement("select * from").is_err());
        assert!(parse_statement("insert into").is_err());
        assert!(parse_statement("with a as [select * from X] begin").is_err());
        assert!(parse_statement("select * from (select * from X)").is_err(), "derived table needs alias");
        assert!(parse_statement("select * from R; select * from S").is_err(), "parse_statement rejects scripts");
        assert_eq!(parse_statements("select * from R; select * from S").unwrap().len(), 2);
    }

    #[test]
    fn metronome_call_parses() {
        let s = parse_statement(
            "insert into X(tag,id,payload) [select null,metronome(1 hour),null]",
        )
        .unwrap();
        match s {
            Stmt::Insert { columns, .. } => {
                assert_eq!(columns.unwrap().len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }
}
