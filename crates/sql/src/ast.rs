//! Abstract syntax for the DataCell SQL dialect.
//!
//! The dialect is the SQL'03 select-from-where-groupby core plus the
//! paper's orthogonal extensions:
//!
//! * **basket expressions** — `[select ...]` in a FROM clause: a consuming
//!   sub-query whose referenced tuples are removed from their baskets;
//! * **`TOP n`** — result-set size constraint (the paper's fixed-size
//!   window idiom);
//! * **`WITH x AS [..] BEGIN stmt; ... END`** — compound split blocks that
//!   route one basket binding to several inserts;
//! * **`DECLARE` / `SET`** — global variables for incremental aggregates.

use monet::value::{Value, ValueType};

/// A full statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Select(SelectStmt),
    /// `INSERT INTO t [(cols)] <select>`
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        source: SelectStmt,
    },
    /// `WITH name AS [select ...] BEGIN stmt; ... END`
    With {
        binding: String,
        /// The basket expression bound to `binding` (consuming).
        source: SelectStmt,
        body: Vec<Stmt>,
    },
    /// `DECLARE name type`
    Declare { name: String, vtype: ValueType },
    /// `SET name = expr`
    Set { name: String, expr: Expr },
    /// `CREATE TABLE/BASKET/STREAM name (col type, ...)`
    Create {
        kind: CreateKind,
        name: String,
        fields: Vec<(String, ValueType)>,
    },
}

/// What a CREATE statement creates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateKind {
    Table,
    Basket,
    Stream,
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    pub distinct: bool,
    /// `TOP n` — precise result-set size constraint.
    pub top: Option<u64>,
    pub projection: Vec<SelectItem>,
    pub from: Vec<FromItem>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    /// `(expr, ascending)`
    pub order_by: Vec<(Expr, bool)>,
    pub limit: Option<u64>,
    /// `UNION [ALL] <select>` continuation.
    pub union: Option<(bool, Box<SelectStmt>)>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// `alias.*`
    QualifiedStar(String),
    /// expression with optional output alias
    Expr { expr: Expr, alias: Option<String> },
}

/// One FROM-clause source.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// Plain table or basket reference (non-consuming outside brackets).
    Table { name: String, alias: Option<String> },
    /// `[select ...] AS alias` — consuming basket expression.
    Basket {
        query: Box<SelectStmt>,
        alias: Option<String>,
    },
    /// `(select ...) AS alias` — ordinary derived table (non-consuming).
    Subquery {
        query: Box<SelectStmt>,
        alias: String,
    },
}

impl FromItem {
    /// The name this item binds in the enclosing scope.
    pub fn binding(&self) -> Option<&str> {
        match self {
            FromItem::Table { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            FromItem::Basket { alias, .. } => alias.as_deref(),
            FromItem::Subquery { alias, .. } => Some(alias),
        }
    }
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `a` or `t.a`
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Value),
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Between {
        expr: Box<Expr>,
        lo: Box<Expr>,
        hi: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `f(args)`; `star` marks `f(*)` (e.g. `count(*)`, the paper's
    /// `sum(*)`).
    FuncCall {
        name: String,
        args: Vec<Expr>,
        star: bool,
    },
    /// `(select ...)` used as a scalar.
    ScalarSubquery(Box<SelectStmt>),
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    pub fn qcol(q: &str, name: &str) -> Expr {
        Expr::Column {
            qualifier: Some(q.to_string()),
            name: name.to_string(),
        }
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    /// Does this expression (recursively) contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::FuncCall { name, args, .. } => {
                is_aggregate_name(name) || args.iter().any(|a| a.contains_aggregate())
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.contains_aggregate() || lo.contains_aggregate() || hi.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Column { .. } | Expr::Literal(_) | Expr::ScalarSubquery(_) => false,
        }
    }

    /// Split an expression into its top-level AND conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                let mut v = left.conjuncts();
                v.extend(right.conjuncts());
                v
            }
            other => vec![other],
        }
    }
}

/// Aggregate function names recognized by the executor.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(name, "count" | "sum" | "avg" | "min" | "max" | "count_distinct")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting() {
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::And, Expr::col("a"), Expr::col("b")),
            Expr::bin(BinOp::Or, Expr::col("c"), Expr::col("d")),
        );
        let c = e.conjuncts();
        assert_eq!(c.len(), 3);
        assert_eq!(c[0], &Expr::col("a"));
        // the OR stays intact
        assert!(matches!(c[2], Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::FuncCall {
            name: "sum".into(),
            args: vec![Expr::col("x")],
            star: false,
        };
        assert!(agg.contains_aggregate());
        let nested = Expr::bin(BinOp::Add, Expr::lit(1i64), agg);
        assert!(nested.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        let func = Expr::FuncCall {
            name: "abs".into(),
            args: vec![Expr::col("x")],
            star: false,
        };
        assert!(!func.contains_aggregate());
    }

    #[test]
    fn from_item_binding() {
        let t = FromItem::Table {
            name: "R".into(),
            alias: None,
        };
        assert_eq!(t.binding(), Some("R"));
        let t = FromItem::Table {
            name: "R".into(),
            alias: Some("x".into()),
        };
        assert_eq!(t.binding(), Some("x"));
        let b = FromItem::Basket {
            query: Box::new(SelectStmt::default()),
            alias: Some("S".into()),
        };
        assert_eq!(b.binding(), Some("S"));
    }
}
