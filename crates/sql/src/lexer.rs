//! Hand-written lexer for the DataCell SQL dialect.

use crate::error::SqlError;
use crate::token::{Keyword, Spanned, Token};

/// Tokenize `src`, producing spanned tokens. Comments (`-- ...` to end of
/// line) and whitespace are skipped.
pub fn lex(src: &str) -> Result<Vec<Spanned>, SqlError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push(&mut out, Token::LParen, start, &mut i),
            ')' => push(&mut out, Token::RParen, start, &mut i),
            '[' => push(&mut out, Token::LBracket, start, &mut i),
            ']' => push(&mut out, Token::RBracket, start, &mut i),
            ',' => push(&mut out, Token::Comma, start, &mut i),
            ';' => push(&mut out, Token::Semicolon, start, &mut i),
            '.' => push(&mut out, Token::Dot, start, &mut i),
            '*' => push(&mut out, Token::Star, start, &mut i),
            '+' => push(&mut out, Token::Plus, start, &mut i),
            '-' => push(&mut out, Token::Minus, start, &mut i),
            '/' => push(&mut out, Token::Slash, start, &mut i),
            '%' => push(&mut out, Token::Percent, start, &mut i),
            '=' => push(&mut out, Token::Eq, start, &mut i),
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Spanned {
                    token: Token::Ne,
                    offset: start,
                });
                i += 2;
            }
            '<' => {
                let token = match bytes.get(i + 1) {
                    Some(&b'=') => {
                        i += 1;
                        Token::Le
                    }
                    Some(&b'>') => {
                        i += 1;
                        Token::Ne
                    }
                    _ => Token::Lt,
                };
                push(&mut out, token, start, &mut i);
            }
            '>' => {
                let token = match bytes.get(i + 1) {
                    Some(&b'=') => {
                        i += 1;
                        Token::Ge
                    }
                    _ => Token::Gt,
                };
                push(&mut out, token, start, &mut i);
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::Lex {
                                offset: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(&b'\'') => {
                            // '' escapes a quote
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Spanned {
                    token: Token::Str(s),
                    offset: start,
                });
            }
            '0'..='9' => {
                let mut end = i;
                let mut is_float = false;
                while end < bytes.len() {
                    match bytes[end] {
                        b'0'..=b'9' => end += 1,
                        b'.' if !is_float
                            && bytes.get(end + 1).is_some_and(|b| b.is_ascii_digit()) =>
                        {
                            is_float = true;
                            end += 1;
                        }
                        b'e' | b'E'
                            if bytes.get(end + 1).is_some_and(|b| {
                                b.is_ascii_digit() || *b == b'-' || *b == b'+'
                            }) =>
                        {
                            is_float = true;
                            end += 2;
                        }
                        _ => break,
                    }
                }
                let text = &src[i..end];
                let token = if is_float {
                    Token::Float(text.parse().map_err(|_| SqlError::Lex {
                        offset: start,
                        message: format!("bad float literal {text}"),
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| SqlError::Lex {
                        offset: start,
                        message: format!("bad integer literal {text}"),
                    })?)
                };
                out.push(Spanned {
                    token,
                    offset: start,
                });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                let word = &src[i..end];
                let lowered = word.to_ascii_lowercase();
                let token = match Keyword::from_str(&lowered) {
                    Some(k) => Token::Keyword(k),
                    None => Token::Ident(word.to_string()),
                };
                out.push(Spanned {
                    token,
                    offset: start,
                });
                i = end;
            }
            other => {
                return Err(SqlError::Lex {
                    offset: start,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

fn push(out: &mut Vec<Spanned>, token: Token, offset: usize, i: &mut usize) {
    out.push(Spanned { token, offset });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn basic_select() {
        assert_eq!(
            toks("SELECT * FROM t WHERE a >= 10"),
            vec![
                Token::Keyword(Keyword::Select),
                Token::Star,
                Token::Keyword(Keyword::From),
                Token::Ident("t".into()),
                Token::Keyword(Keyword::Where),
                Token::Ident("a".into()),
                Token::Ge,
                Token::Int(10),
            ]
        );
    }

    #[test]
    fn basket_brackets_and_operators() {
        assert_eq!(
            toks("[select x from S where v1<x and x<>2]"),
            vec![
                Token::LBracket,
                Token::Keyword(Keyword::Select),
                Token::Ident("x".into()),
                Token::Keyword(Keyword::From),
                Token::Ident("S".into()),
                Token::Keyword(Keyword::Where),
                Token::Ident("v1".into()),
                Token::Lt,
                Token::Ident("x".into()),
                Token::Keyword(Keyword::And),
                Token::Ident("x".into()),
                Token::Ne,
                Token::Int(2),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 1e3 10.25 007"),
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Float(1000.0),
                Token::Float(10.25),
                Token::Int(7),
            ]
        );
    }

    #[test]
    fn dotted_qualifier_vs_float() {
        assert_eq!(
            toks("S.a"),
            vec![
                Token::Ident("S".into()),
                Token::Dot,
                Token::Ident("a".into()),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks("'hello' 'it''s'"),
            vec![Token::Str("hello".into()), Token::Str("it's".into())]
        );
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("select -- the projection\n 1"),
            vec![Token::Keyword(Keyword::Select), Token::Int(1)]
        );
    }

    #[test]
    fn ne_spellings() {
        assert_eq!(toks("a <> b"), toks("a != b"));
    }

    #[test]
    fn keywords_case_insensitive_idents_preserved() {
        assert_eq!(
            toks("SeLeCt MyTable"),
            vec![
                Token::Keyword(Keyword::Select),
                Token::Ident("MyTable".into())
            ]
        );
    }

    #[test]
    fn bad_char_reports_offset() {
        let err = lex("select ?").unwrap_err();
        match err {
            SqlError::Lex { offset, .. } => assert_eq!(offset, 7),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
