//! Token set for the DataCell SQL dialect.

use std::fmt;

/// Keywords are case-insensitive; the lexer normalizes to these variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Asc,
    Desc,
    Limit,
    Top,
    Distinct,
    As,
    And,
    Or,
    Not,
    Between,
    In,
    Is,
    Null,
    True,
    False,
    Insert,
    Into,
    Values,
    With,
    Begin,
    End,
    Declare,
    Set,
    Create,
    Table,
    Basket,
    Stream,
    Union,
    All,
    // type names
    Int,
    Integer,
    Double,
    Float,
    Varchar,
    Text,
    Boolean,
    Timestamp,
}

impl Keyword {
    /// Parse a (case-folded) identifier as a keyword.
    // not the trait method: misses are normal identifiers, not errors
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "select" => Select,
            "from" => From,
            "where" => Where,
            "group" => Group,
            "by" => By,
            "having" => Having,
            "order" => Order,
            "asc" => Asc,
            "desc" => Desc,
            "limit" => Limit,
            "top" => Top,
            "distinct" => Distinct,
            "as" => As,
            "and" => And,
            "or" => Or,
            "not" => Not,
            "between" => Between,
            "in" => In,
            "is" => Is,
            "null" => Null,
            "true" => True,
            "false" => False,
            "insert" => Insert,
            "into" => Into,
            "values" => Values,
            "with" => With,
            "begin" => Begin,
            "end" => End,
            "declare" => Declare,
            "set" => Set,
            "create" => Create,
            "table" => Table,
            "basket" => Basket,
            "stream" => Stream,
            "union" => Union,
            "all" => All,
            "int" => Int,
            "integer" => Integer,
            "double" => Double,
            "float" => Float,
            "varchar" => Varchar,
            "text" => Text,
            "boolean" => Boolean,
            "timestamp" => Timestamp,
            _ => return None,
        })
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Keyword(Keyword),
    /// Unquoted identifier (original case preserved).
    Ident(String),
    Int(i64),
    Float(f64),
    /// Single-quoted string literal (escapes resolved).
    Str(String),
    LParen,
    RParen,
    /// `[` — opens a basket expression.
    LBracket,
    /// `]` — closes a basket expression.
    RBracket,
    Comma,
    Semicolon,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    /// `<>` or `!=`
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
        }
    }
}

/// A token plus its byte offset in the source (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub token: Token,
    pub offset: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_exhaustive_for_core_words() {
        for w in [
            "select", "from", "where", "group", "by", "having", "order", "top", "limit",
            "insert", "into", "with", "begin", "end", "declare", "set", "union", "all",
        ] {
            assert!(Keyword::from_str(w).is_some(), "{w}");
        }
        assert_eq!(Keyword::from_str("nonsense"), None);
    }

    #[test]
    fn display_roundtrips_symbols() {
        assert_eq!(Token::Le.to_string(), "<=");
        assert_eq!(Token::LBracket.to_string(), "[");
        assert_eq!(Token::Str("a'b".into()).to_string(), "'a'b'");
    }
}
