//! # dcsql — the DataCell query language
//!
//! SQL'03-subset front-end plus the paper's orthogonal extensions: basket
//! expressions (`[select ...]`), `TOP n`, `WITH ... BEGIN ... END` split
//! blocks and global variables. See `parser` for the grammar and `exec`
//! for the evaluation pipeline.

pub mod ast;
pub mod exec;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod token;

pub use error::{Result, SqlError};
pub use parser::{parse_statement, parse_statements};
