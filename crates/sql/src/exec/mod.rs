//! Statement execution.
//!
//! The executor is deliberately *pure*: it reads relations through a
//! [`QueryContext`] and returns [`Effects`] describing what should change
//! (result rows, inserts, basket consumptions, variable updates). The
//! DataCell engine applies those effects under its own locking/strategy
//! regime — which is exactly how the paper separates query plans
//! (factories) from basket maintenance.

pub(crate) mod eval;
pub(crate) mod select;

pub use eval::{eval_expr, eval_scalar};
pub use select::run_select;

use std::collections::HashMap;

use monet::prelude::*;

use crate::ast::{CreateKind, Stmt};
use crate::error::{Result, SqlError};

/// Read-only world view for the executor.
pub trait QueryContext {
    /// Snapshot of a named relation (basket or persistent table).
    fn relation(&self, name: &str) -> Result<Relation>;

    /// Pruned snapshot: only the `wanted` columns of `name` need to be
    /// present (compiled plans ask for exactly the columns they touch).
    /// Implementations may return extra columns; they must return at
    /// least one column so the row count survives even when `wanted`
    /// names nothing (e.g. a literal-only projection). The default
    /// falls back to the full [`QueryContext::relation`] snapshot.
    fn columns(&self, name: &str, wanted: &[String]) -> Result<Relation> {
        let _ = wanted;
        self.relation(name)
    }

    /// Global variable lookup (`DECLARE`d names).
    fn get_var(&self, name: &str) -> Option<Value>;

    /// Current engine time in microseconds (virtual or wall clock).
    fn now(&self) -> i64;

    /// Optional scan accounting: contexts that want honest `rows_scanned`
    /// numbers return a counter here and bump it inside
    /// [`QueryContext::relation`]/[`QueryContext::columns`]. The delta
    /// executor uses it to report O(delta) scans even though it pulls whole
    /// columns (cheap `Arc` clones) to gather from.
    fn scan_counter(&self) -> Option<&std::sync::atomic::AtomicU64> {
        None
    }
}

/// A static, in-memory context — the reference implementation used by
/// tests, examples and the engine's snapshot execution.
#[derive(Debug, Default)]
pub struct StaticContext {
    pub relations: HashMap<String, Relation>,
    pub vars: HashMap<String, Value>,
    pub now_micros: i64,
}

impl StaticContext {
    pub fn new() -> Self {
        StaticContext::default()
    }

    pub fn with_relation(mut self, name: &str, rel: Relation) -> Self {
        self.relations.insert(name.to_string(), rel);
        self
    }

    pub fn with_var(mut self, name: &str, v: Value) -> Self {
        self.vars.insert(name.to_string(), v);
        self
    }
}

impl QueryContext for StaticContext {
    fn relation(&self, name: &str) -> Result<Relation> {
        self.relations
            .get(name)
            .cloned()
            .ok_or_else(|| SqlError::Unknown(name.to_string()))
    }

    fn get_var(&self, name: &str) -> Option<Value> {
        self.vars.get(name).cloned()
    }

    fn now(&self) -> i64 {
        self.now_micros
    }
}

/// Everything a statement wants to change, reported back to the engine.
#[derive(Debug, Default, PartialEq)]
pub struct Effects {
    /// SELECT result rows (if the statement was a query).
    pub result: Option<Relation>,
    /// `(table, explicit column list, rows)` pending inserts.
    pub inserts: Vec<(String, Option<Vec<String>>, Relation)>,
    /// `(basket, positions)` consumed by basket expressions; the engine
    /// deletes these under its strategy's regime.
    pub consumed: Vec<(String, SelVec)>,
    /// Variable assignments from SET.
    pub var_updates: Vec<(String, Value)>,
    /// New variables from DECLARE.
    pub declares: Vec<(String, ValueType)>,
    /// New tables/baskets/streams from CREATE.
    pub creates: Vec<(CreateKind, String, Schema)>,
}

impl Effects {
    pub(crate) fn merge(&mut self, other: Effects) {
        if other.result.is_some() {
            self.result = other.result;
        }
        self.inserts.extend(other.inserts);
        merge_consumed(&mut self.consumed, other.consumed);
        self.var_updates.extend(other.var_updates);
        self.declares.extend(other.declares);
        self.creates.extend(other.creates);
    }
}

/// Union consumption sets per basket.
pub(crate) fn merge_consumed(acc: &mut Vec<(String, SelVec)>, more: Vec<(String, SelVec)>) {
    for (name, sel) in more {
        if let Some((_, existing)) = acc.iter_mut().find(|(n, _)| *n == name) {
            *existing = existing.union(&sel);
        } else {
            acc.push((name, sel));
        }
    }
}

/// Per-execution environment: WITH bindings and variable overlays that
/// accumulate across the statements of one block.
#[derive(Debug, Default, Clone)]
pub struct ExecEnv {
    pub bindings: HashMap<String, Relation>,
    pub var_overlay: HashMap<String, Value>,
}

impl ExecEnv {
    pub fn lookup_var(&self, ctx: &dyn QueryContext, name: &str) -> Option<Value> {
        self.var_overlay
            .get(name)
            .cloned()
            .or_else(|| ctx.get_var(name))
    }
}

/// Execute one statement against `ctx`.
pub fn execute(stmt: &Stmt, ctx: &dyn QueryContext) -> Result<Effects> {
    execute_in_env(stmt, ctx, &mut ExecEnv::default())
}

/// Execute a parsed script in order, accumulating effects. Later statements
/// see variable updates from earlier ones (via the overlay), but *not*
/// inserts/consumptions — those are applied by the engine afterwards.
pub fn execute_script(stmts: &[Stmt], ctx: &dyn QueryContext) -> Result<Effects> {
    let mut env = ExecEnv::default();
    let mut all = Effects::default();
    for stmt in stmts {
        let fx = execute_in_env(stmt, ctx, &mut env)?;
        all.merge(fx);
    }
    Ok(all)
}

pub(crate) fn execute_in_env(
    stmt: &Stmt,
    ctx: &dyn QueryContext,
    env: &mut ExecEnv,
) -> Result<Effects> {
    match stmt {
        Stmt::Select(sel) => {
            let out = run_select(sel, ctx, env, false)?;
            Ok(Effects {
                result: Some(out.rel),
                consumed: out.consumed,
                ..Effects::default()
            })
        }
        Stmt::Insert {
            table,
            columns,
            source,
        } => {
            let out = run_select(source, ctx, env, false)?;
            Ok(Effects {
                inserts: vec![(table.clone(), columns.clone(), out.rel)],
                consumed: out.consumed,
                ..Effects::default()
            })
        }
        Stmt::With {
            binding,
            source,
            body,
        } => {
            // Materialize the basket expression once (consuming), bind it,
            // then run the body statements against the binding.
            let out = run_select(source, ctx, env, true)?;
            let mut fx = Effects {
                consumed: out.consumed,
                ..Effects::default()
            };
            env.bindings.insert(binding.clone(), out.rel);
            for s in body {
                let sub = execute_in_env(s, ctx, env)?;
                fx.merge(sub);
            }
            env.bindings.remove(binding);
            Ok(fx)
        }
        Stmt::Declare { name, vtype } => Ok(Effects {
            declares: vec![(name.clone(), *vtype)],
            ..Effects::default()
        }),
        Stmt::Set { name, expr } => {
            let v = eval_scalar(expr, ctx, env)?;
            env.var_overlay.insert(name.clone(), v.clone());
            Ok(Effects {
                var_updates: vec![(name.clone(), v)],
                ..Effects::default()
            })
        }
        Stmt::Create { kind, name, fields } => {
            let schema = Schema::new(
                fields
                    .iter()
                    .map(|(n, t)| Field::new(n.clone(), *t))
                    .collect(),
            );
            Ok(Effects {
                creates: vec![(*kind, name.clone(), schema)],
                ..Effects::default()
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statements;

    fn sample_ctx() -> StaticContext {
        let r = Relation::from_columns(vec![
            ("a".into(), Column::from_ints(vec![1, 2, 3, 4])),
            (
                "b".into(),
                Column::from_strs(vec!["w".into(), "x".into(), "y".into(), "z".into()]),
            ),
        ])
        .unwrap();
        StaticContext::new().with_relation("R", r)
    }

    #[test]
    fn declare_and_set_flow_through_env() {
        let ctx = sample_ctx();
        let stmts = parse_statements("declare n int; set n = 5; set n = n + 1").unwrap();
        let fx = execute_script(&stmts, &ctx).unwrap();
        assert_eq!(fx.declares, vec![("n".to_string(), ValueType::Int)]);
        assert_eq!(fx.var_updates.last().unwrap().1, Value::Int(6));
    }

    #[test]
    fn create_effect() {
        let ctx = sample_ctx();
        let stmts = parse_statements("create basket B (x int, t timestamp)").unwrap();
        let fx = execute_script(&stmts, &ctx).unwrap();
        assert_eq!(fx.creates.len(), 1);
        assert_eq!(fx.creates[0].1, "B");
        assert_eq!(fx.creates[0].2.width(), 2);
    }

    #[test]
    fn merge_consumed_unions() {
        let mut acc = vec![("X".to_string(), SelVec::from_sorted(vec![0, 1]).unwrap())];
        merge_consumed(
            &mut acc,
            vec![
                ("X".to_string(), SelVec::from_sorted(vec![1, 2]).unwrap()),
                ("Y".to_string(), SelVec::from_sorted(vec![5]).unwrap()),
            ],
        );
        assert_eq!(acc[0].1.as_slice(), &[0, 1, 2]);
        assert_eq!(acc[1].0, "Y");
    }

    #[test]
    fn static_context_lookups() {
        let ctx = sample_ctx().with_var("v", Value::Int(9));
        assert!(ctx.relation("R").is_ok());
        assert!(ctx.relation("missing").is_err());
        assert_eq!(ctx.get_var("v"), Some(Value::Int(9)));
        assert_eq!(ctx.get_var("w"), None);
    }
}
