//! Vectorized expression evaluation.
//!
//! `eval_expr` turns an AST expression into a column of the same length as
//! the input relation. Column references resolve against the relation's
//! (possibly alias-qualified) names; names that resolve nowhere fall back
//! to global variables — that is how the paper's parameterized continuous
//! queries (`where S.a > v1`) read their thresholds.

use monet::column::Column;
use monet::ops::arith::{self, ArithOp};
use monet::ops::CmpOp;
use monet::prelude::*;

use crate::ast::{BinOp, Expr, SelectItem, UnaryOp};
use crate::error::{Result, SqlError};
use crate::exec::select::run_select;
use crate::exec::{ExecEnv, QueryContext};

/// Resolve a column reference against qualified relation names.
///
/// Relation columns are stored as `alias.col` (or bare `col` for scans
/// without alias). Resolution rules:
/// * qualified `t.a` → exact `t.a`;
/// * unqualified `a` → exact `a`, else unique suffix `*.a` (ambiguity is
///   an error).
pub fn resolve_column(rel: &Relation, qualifier: Option<&str>, name: &str) -> Result<usize> {
    let names = rel.names();
    if let Some(q) = qualifier {
        let want = format!("{q}.{name}");
        if let Some(i) = names.iter().position(|n| *n == want) {
            return Ok(i);
        }
        return Err(SqlError::UnknownColumn(want));
    }
    if let Some(i) = names.iter().position(|n| n == name) {
        return Ok(i);
    }
    let suffix = format!(".{name}");
    let mut hits = names.iter().enumerate().filter(|(_, n)| n.ends_with(&suffix));
    match (hits.next(), hits.next()) {
        (Some((i, _)), None) => Ok(i),
        (Some(_), Some(_)) => Err(SqlError::AmbiguousColumn(name.to_string())),
        (None, _) => Err(SqlError::UnknownColumn(name.to_string())),
    }
}

fn broadcast(v: &Value, n: usize) -> Result<Column> {
    let vtype = v.value_type().unwrap_or(ValueType::Int);
    let mut col = Column::with_capacity(vtype, n);
    for _ in 0..n {
        col.push(v.clone())?;
    }
    Ok(col)
}

/// Evaluate `expr` over every row of `rel`.
pub fn eval_expr(
    expr: &Expr,
    rel: &Relation,
    ctx: &dyn QueryContext,
    env: &ExecEnv,
) -> Result<Column> {
    let n = rel.len();
    match expr {
        Expr::Column { qualifier, name } => {
            match resolve_column(rel, qualifier.as_deref(), name) {
                Ok(i) => Ok(rel.col_at(i).clone()),
                Err(SqlError::UnknownColumn(_)) if qualifier.is_none() => {
                    // fall back to a global variable broadcast
                    match env.lookup_var(ctx, name) {
                        Some(v) => broadcast(&v, n),
                        None => Err(SqlError::UnknownColumn(name.clone())),
                    }
                }
                Err(e) => Err(e),
            }
        }
        Expr::Literal(v) => broadcast(v, n),
        Expr::Unary { op, expr } => {
            let c = eval_expr(expr, rel, ctx, env)?;
            match op {
                UnaryOp::Neg => Ok(arith::arith_const(ArithOp::Sub, &c, &Value::Int(0), false)?),
                UnaryOp::Not => Ok(arith::not3(&c)?),
            }
        }
        Expr::Binary { op, left, right } => {
            // `col <cmp> literal` (either side): compare against the
            // constant directly instead of broadcasting it into an
            // O(rows) column first — the WHERE-clause hot path.
            if let Some(cop) = cmp_op(*op) {
                if let Expr::Literal(k) = right.as_ref() {
                    let l = eval_expr(left, rel, ctx, env)?;
                    return Ok(arith::compare_const(cop, &l, k, true)?);
                }
                if let Expr::Literal(k) = left.as_ref() {
                    let r = eval_expr(right, rel, ctx, env)?;
                    return Ok(arith::compare_const(cop, &r, k, false)?);
                }
            }
            let l = eval_expr(left, rel, ctx, env)?;
            let r = eval_expr(right, rel, ctx, env)?;
            eval_binary(*op, &l, &r)
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let c = eval_expr(expr, rel, ctx, env)?;
            let lo = eval_expr(lo, rel, ctx, env)?;
            let hi = eval_expr(hi, rel, ctx, env)?;
            let ge = arith::compare(CmpOp::Ge, &c, &lo)?;
            let le = arith::compare(CmpOp::Le, &c, &hi)?;
            let within = arith::and3(&ge, &le)?;
            if *negated {
                Ok(arith::not3(&within)?)
            } else {
                Ok(within)
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let c = eval_expr(expr, rel, ctx, env)?;
            let mut acc: Option<Column> = None;
            for item in list {
                let item_col = eval_expr(item, rel, ctx, env)?;
                let eq = arith::compare(CmpOp::Eq, &c, &item_col)?;
                acc = Some(match acc {
                    None => eq,
                    Some(prev) => arith::or3(&prev, &eq)?,
                });
            }
            let any = acc.ok_or_else(|| SqlError::Exec("empty IN list".into()))?;
            if *negated {
                Ok(arith::not3(&any)?)
            } else {
                Ok(any)
            }
        }
        Expr::IsNull { expr, negated } => {
            let c = eval_expr(expr, rel, ctx, env)?;
            let mut out = Column::with_capacity(ValueType::Bool, n);
            for i in 0..c.len() {
                let is_null = !c.is_valid(i);
                out.push(Value::Bool(is_null != *negated))?;
            }
            Ok(out)
        }
        Expr::FuncCall { name, args, star } => eval_func(name, args, *star, rel, ctx, env),
        Expr::ScalarSubquery(sub) => {
            let v = scalar_subquery(sub, ctx, env)?;
            broadcast(&v, n)
        }
    }
}

fn cmp_op(op: BinOp) -> Option<CmpOp> {
    match op {
        BinOp::Eq => Some(CmpOp::Eq),
        BinOp::Ne => Some(CmpOp::Ne),
        BinOp::Lt => Some(CmpOp::Lt),
        BinOp::Le => Some(CmpOp::Le),
        BinOp::Gt => Some(CmpOp::Gt),
        BinOp::Ge => Some(CmpOp::Ge),
        _ => None,
    }
}

fn eval_binary(op: BinOp, l: &Column, r: &Column) -> Result<Column> {
    let arith_op = match op {
        BinOp::Add => Some(ArithOp::Add),
        BinOp::Sub => Some(ArithOp::Sub),
        BinOp::Mul => Some(ArithOp::Mul),
        BinOp::Div => Some(ArithOp::Div),
        BinOp::Mod => Some(ArithOp::Mod),
        _ => None,
    };
    if let Some(aop) = arith_op {
        return Ok(arith::arith(aop, l, r)?);
    }
    if let Some(cop) = cmp_op(op) {
        return Ok(arith::compare(cop, l, r)?);
    }
    match op {
        BinOp::And => Ok(arith::and3(l, r)?),
        BinOp::Or => Ok(arith::or3(l, r)?),
        _ => unreachable!("all operators covered"),
    }
}

/// Scalar (non-aggregate) builtin functions.
fn eval_func(
    name: &str,
    args: &[Expr],
    star: bool,
    rel: &Relation,
    ctx: &dyn QueryContext,
    env: &ExecEnv,
) -> Result<Column> {
    let n = rel.len();
    match name {
        // Aggregates reaching this path means the query had no GROUP BY
        // handling for them — the select pipeline intercepts them first.
        _ if crate::ast::is_aggregate_name(name) => Err(SqlError::Exec(format!(
            "aggregate {name} not allowed in this position"
        ))),
        "now" => broadcast(&Value::Ts(ctx.now()), n),
        // The metronome's pacing is enforced by the engine's metronome
        // component; as an expression it evaluates to the current tick.
        "metronome" => {
            if star || args.len() != 1 {
                return Err(SqlError::Exec("metronome(interval) takes one argument".into()));
            }
            let interval = eval_scalar(&args[0], ctx, env)?
                .as_int()
                .ok_or_else(|| SqlError::Exec("metronome interval must be numeric".into()))?;
            if interval <= 0 {
                return Err(SqlError::Exec("metronome interval must be positive".into()));
            }
            let tick = ctx.now() - ctx.now().rem_euclid(interval);
            broadcast(&Value::Ts(tick), n)
        }
        "abs" | "floor" | "ceil" | "sqrt" => {
            if args.len() != 1 {
                return Err(SqlError::Exec(format!("{name} takes one argument")));
            }
            let c = eval_expr(&args[0], rel, ctx, env)?;
            map_numeric(name, &c)
        }
        other => Err(SqlError::Exec(format!("unknown function {other}"))),
    }
}

fn map_numeric(name: &str, c: &Column) -> Result<Column> {
    let out_type = match (name, c.vtype()) {
        ("abs", ValueType::Int | ValueType::Ts) => ValueType::Int,
        ("abs", ValueType::Double) => ValueType::Double,
        ("sqrt", _) => ValueType::Double,
        ("floor" | "ceil", _) => ValueType::Int,
        _ => {
            return Err(SqlError::Exec(format!(
                "{name} not defined on {}",
                c.vtype()
            )))
        }
    };
    let mut out = Column::with_capacity(out_type, c.len());
    for i in 0..c.len() {
        if !c.is_valid(i) {
            out.push(Value::Null)?;
            continue;
        }
        let v = c.get(i);
        let result = match name {
            "abs" => match v {
                Value::Int(x) | Value::Ts(x) => Value::Int(x.abs()),
                Value::Double(x) => Value::Double(x.abs()),
                _ => return Err(SqlError::Exec("abs on non-numeric".into())),
            },
            "sqrt" => Value::Double(
                v.as_double()
                    .ok_or_else(|| SqlError::Exec("sqrt on non-numeric".into()))?
                    .sqrt(),
            ),
            "floor" => Value::Int(
                v.as_double()
                    .ok_or_else(|| SqlError::Exec("floor on non-numeric".into()))?
                    .floor() as i64,
            ),
            "ceil" => Value::Int(
                v.as_double()
                    .ok_or_else(|| SqlError::Exec("ceil on non-numeric".into()))?
                    .ceil() as i64,
            ),
            _ => unreachable!(),
        };
        out.push(result)?;
    }
    Ok(out)
}

/// Evaluate an expression in scalar position (SET, metronome intervals,
/// scalar subqueries). Uses a one-row unit relation so literals and
/// variables work uniformly.
pub fn eval_scalar(expr: &Expr, ctx: &dyn QueryContext, env: &ExecEnv) -> Result<Value> {
    let unit = unit_relation();
    let col = eval_expr(expr, &unit, ctx, env)?;
    if col.is_empty() {
        return Ok(Value::Null);
    }
    Ok(col.get(0))
}

/// Single-row, single-dummy-column relation for scalar evaluation and
/// FROM-less selects.
pub fn unit_relation() -> Relation {
    Relation::from_columns(vec![("#unit".into(), Column::from_ints(vec![0]))])
        .expect("unit relation construction cannot fail")
}

/// Evaluate a scalar subquery: run the select, require ≤1 row and exactly
/// one (visible) column; empty result is NULL (SQL semantics).
pub fn scalar_subquery(
    sub: &crate::ast::SelectStmt,
    ctx: &dyn QueryContext,
    env: &ExecEnv,
) -> Result<Value> {
    let mut env = env.clone();
    let out = run_select(sub, ctx, &mut env, false)?;
    let rel = out.rel;
    if rel.width() != 1 {
        return Err(SqlError::Exec(format!(
            "scalar subquery must return one column, got {}",
            rel.width()
        )));
    }
    match rel.len() {
        0 => Ok(Value::Null),
        1 => Ok(rel.col_at(0).get(0)),
        n => Err(SqlError::Exec(format!(
            "scalar subquery returned {n} rows"
        ))),
    }
}

/// Human-readable name for an unaliased projection expression.
pub fn display_name(item: &SelectItem, ordinal: usize) -> String {
    match item {
        SelectItem::Star => "*".into(),
        SelectItem::QualifiedStar(q) => format!("{q}.*"),
        SelectItem::Expr { expr, alias } => match alias {
            Some(a) => a.clone(),
            None => match expr {
                Expr::Column { qualifier, name } => match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.clone(),
                },
                Expr::FuncCall { name, star, .. } => {
                    if *star {
                        format!("{name}(*)")
                    } else {
                        format!("{name}()")
                    }
                }
                _ => format!("col{ordinal}"),
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::StaticContext;
    use crate::parser::parse_statement;

    fn rel() -> Relation {
        Relation::from_columns(vec![
            ("t.a".into(), Column::from_ints(vec![1, 2, 3])),
            ("t.b".into(), Column::from_doubles(vec![0.5, 1.5, 2.5])),
            (
                "t.s".into(),
                Column::from_strs(vec!["x".into(), "y".into(), "z".into()]),
            ),
        ])
        .unwrap()
    }

    fn where_of(src: &str) -> Expr {
        match parse_statement(src).unwrap() {
            crate::ast::Stmt::Select(s) => s.where_clause.unwrap(),
            _ => panic!(),
        }
    }

    #[test]
    fn resolve_qualified_and_suffix() {
        let r = rel();
        assert_eq!(resolve_column(&r, Some("t"), "a").unwrap(), 0);
        assert_eq!(resolve_column(&r, None, "b").unwrap(), 1);
        assert!(matches!(
            resolve_column(&r, Some("u"), "a"),
            Err(SqlError::UnknownColumn(_))
        ));
        assert!(matches!(
            resolve_column(&r, None, "zz"),
            Err(SqlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn ambiguity_detected() {
        let r = Relation::from_columns(vec![
            ("x.a".into(), Column::from_ints(vec![1])),
            ("y.a".into(), Column::from_ints(vec![2])),
        ])
        .unwrap();
        assert!(matches!(
            resolve_column(&r, None, "a"),
            Err(SqlError::AmbiguousColumn(_))
        ));
        assert_eq!(resolve_column(&r, Some("y"), "a").unwrap(), 1);
    }

    #[test]
    fn arithmetic_and_comparison() {
        let r = rel();
        let ctx = StaticContext::new();
        let env = ExecEnv::default();
        let e = where_of("select * from t where a * 2 + 1 >= 5");
        let c = eval_expr(&e, &r, &ctx, &env).unwrap();
        assert_eq!(c.bools().unwrap(), &[false, true, true]);
    }

    #[test]
    fn variables_fall_back() {
        let r = rel();
        let ctx = StaticContext::new().with_var("v1", Value::Int(2));
        let env = ExecEnv::default();
        let e = where_of("select * from t where a > v1");
        let c = eval_expr(&e, &r, &ctx, &env).unwrap();
        assert_eq!(c.bools().unwrap(), &[false, false, true]);
    }

    #[test]
    fn overlay_wins_over_ctx_var() {
        let r = rel();
        let ctx = StaticContext::new().with_var("v", Value::Int(100));
        let mut env = ExecEnv::default();
        env.var_overlay.insert("v".into(), Value::Int(1));
        let e = where_of("select * from t where a > v");
        let c = eval_expr(&e, &r, &ctx, &env).unwrap();
        assert_eq!(c.bools().unwrap(), &[false, true, true]);
    }

    #[test]
    fn between_in_isnull() {
        let r = rel();
        let ctx = StaticContext::new();
        let env = ExecEnv::default();
        let e = where_of("select * from t where a between 2 and 3");
        assert_eq!(
            eval_expr(&e, &r, &ctx, &env).unwrap().bools().unwrap(),
            &[false, true, true]
        );
        let e = where_of("select * from t where s in ('x', 'z')");
        assert_eq!(
            eval_expr(&e, &r, &ctx, &env).unwrap().bools().unwrap(),
            &[true, false, true]
        );
        let e = where_of("select * from t where a is null");
        assert_eq!(
            eval_expr(&e, &r, &ctx, &env).unwrap().bools().unwrap(),
            &[false, false, false]
        );
        let e = where_of("select * from t where a is not null");
        assert_eq!(
            eval_expr(&e, &r, &ctx, &env).unwrap().bools().unwrap(),
            &[true, true, true]
        );
    }

    #[test]
    fn now_and_metronome() {
        let r = rel();
        let ctx = StaticContext {
            now_micros: 10_500_000,
            ..StaticContext::new()
        };
        let env = ExecEnv::default();
        let e = where_of("select * from t where a < now()");
        let c = eval_expr(&e, &r, &ctx, &env).unwrap();
        assert_eq!(c.bools().unwrap(), &[true, true, true]);

        // metronome(1 second) at t=10.5s → tick at 10s
        let expr = Expr::FuncCall {
            name: "metronome".into(),
            args: vec![Expr::lit(1_000_000i64)],
            star: false,
        };
        let c = eval_expr(&expr, &r, &ctx, &env).unwrap();
        assert_eq!(c.get(0), Value::Ts(10_000_000));
    }

    #[test]
    fn scalar_functions() {
        let r = rel();
        let ctx = StaticContext::new();
        let env = ExecEnv::default();
        let abs = Expr::FuncCall {
            name: "abs".into(),
            args: vec![Expr::bin(BinOp::Sub, Expr::lit(0i64), Expr::col("a"))],
            star: false,
        };
        let c = eval_expr(&abs, &r, &ctx, &env).unwrap();
        assert_eq!(c.ints().unwrap(), &[1, 2, 3]);

        let fl = Expr::FuncCall {
            name: "floor".into(),
            args: vec![Expr::col("b")],
            star: false,
        };
        let c = eval_expr(&fl, &r, &ctx, &env).unwrap();
        assert_eq!(c.ints().unwrap(), &[0, 1, 2]);

        let unknown = Expr::FuncCall {
            name: "nonsense".into(),
            args: vec![],
            star: false,
        };
        assert!(eval_expr(&unknown, &r, &ctx, &env).is_err());
    }

    #[test]
    fn scalar_eval() {
        let ctx = StaticContext::new().with_var("x", Value::Int(4));
        let env = ExecEnv::default();
        let e = where_of("select * from t where 1 + x * 2 > 0");
        // use the full expression? just eval the arithmetic part instead:
        let v = eval_scalar(&Expr::bin(BinOp::Add, Expr::lit(1i64), Expr::col("x")), &ctx, &env)
            .unwrap();
        assert_eq!(v, Value::Int(5));
        drop(e);
    }
}
