//! The SELECT pipeline.
//!
//! Logical stage order: FROM (scans + joins) → WHERE → [lineage capture] →
//! GROUP BY/aggregates → HAVING → projection → DISTINCT → ORDER BY →
//! TOP/LIMIT → UNION.
//!
//! **Basket consumption via lineage.** When a select runs as a basket
//! expression (`track_lineage = true`), every base-table scan appends a
//! hidden `#rid:` column carrying the scanned positions. Filters, joins,
//! ordering and TOP all carry those columns along for free (they are just
//! columns), so whatever rows remain when the pipeline reaches its capture
//! point are exactly the *referenced* tuples the paper says must be removed
//! from their baskets:
//!
//! * plain selects capture after ORDER BY/TOP — `[select top 20 …]`
//!   consumes precisely the 20 returned tuples;
//! * grouped/aggregate selects capture before grouping — every row that
//!   fed the aggregate was referenced.

use std::collections::HashMap;

use monet::ops::group::{
    agg_avg, agg_count, agg_count_distinct, agg_count_star, agg_max, agg_min, agg_sum, group_by,
    Grouping,
};
use monet::ops::join::hash_join;
use monet::ops::select::select_true;
use monet::ops::sort::{sort_perm, SortKey};
use monet::ops::topn::topn_perm;
use monet::prelude::*;

use crate::ast::{is_aggregate_name, Expr, FromItem, SelectItem, SelectStmt};
use crate::error::{Result, SqlError};
use crate::exec::eval::{display_name, eval_expr, resolve_column, unit_relation};
use crate::exec::{merge_consumed, ExecEnv, QueryContext};

/// Result of running a select: rows plus the basket positions it consumed.
#[derive(Debug)]
pub struct SelectOutput {
    pub rel: Relation,
    pub consumed: Vec<(String, SelVec)>,
}

const RID_PREFIX: &str = "#rid:";

/// Run a select statement. `track_lineage` is set when this select is the
/// body of a basket expression.
pub fn run_select(
    stmt: &SelectStmt,
    ctx: &dyn QueryContext,
    env: &mut ExecEnv,
    track_lineage: bool,
) -> Result<SelectOutput> {
    let mut consumed: Vec<(String, SelVec)> = Vec::new();
    let mut rid_counter = 0usize;

    // ---- FROM: resolve sources --------------------------------------------
    let mut sources: Vec<Relation> = Vec::new();
    for item in &stmt.from {
        let rel = resolve_from_item(
            item,
            ctx,
            env,
            track_lineage,
            &mut consumed,
            &mut rid_counter,
        )?;
        sources.push(rel);
    }

    // ---- joins -------------------------------------------------------------
    let conjuncts: Vec<Expr> = stmt
        .where_clause
        .as_ref()
        .map(|w| w.conjuncts().into_iter().cloned().collect())
        .unwrap_or_default();
    let mut used = vec![false; conjuncts.len()];

    let mut rel = match sources.len() {
        0 => unit_relation(),
        _ => {
            let mut iter = sources.into_iter();
            let mut acc = iter.next().expect("non-empty");
            for src in iter {
                acc = join_pair(acc, src, &conjuncts, &mut used, ctx, env)?;
            }
            acc
        }
    };

    // ---- WHERE (remaining conjuncts) ---------------------------------------
    for (i, c) in conjuncts.iter().enumerate() {
        if used[i] {
            continue;
        }
        let mask = eval_expr(c, &rel, ctx, env)?;
        let sel = select_true(&mask, None)?;
        rel = rel.gather(&sel)?;
    }

    let has_aggregates = stmt
        .projection
        .iter()
        .any(|p| matches!(p, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || stmt
            .having
            .as_ref()
            .is_some_and(|h| h.contains_aggregate())
        || !stmt.group_by.is_empty();

    let mut output = if has_aggregates {
        if track_lineage {
            merge_consumed(&mut consumed, extract_consumption(&rel));
        }
        grouped_pipeline(stmt, rel, ctx, env)?
    } else {
        plain_pipeline(stmt, rel, ctx, env, track_lineage, &mut consumed)?
    };

    // ---- UNION --------------------------------------------------------------
    if let Some((all, rhs)) = &stmt.union {
        let rhs_out = run_select(rhs, ctx, env, track_lineage)?;
        merge_consumed(&mut consumed, rhs_out.consumed);
        if !output.schema().compatible(&rhs_out.rel.schema()) {
            return Err(SqlError::Exec(
                "UNION sides have incompatible schemas".into(),
            ));
        }
        output.append_relation(&rhs_out.rel)?;
        if !all {
            output = distinct(output)?;
        }
    }

    Ok(SelectOutput {
        rel: output,
        consumed,
    })
}

/// Resolve one FROM item into a relation with qualified column names.
fn resolve_from_item(
    item: &FromItem,
    ctx: &dyn QueryContext,
    env: &mut ExecEnv,
    track_lineage: bool,
    consumed: &mut Vec<(String, SelVec)>,
    rid_counter: &mut usize,
) -> Result<Relation> {
    match item {
        FromItem::Table { name, alias } => {
            let binding = alias.as_deref().unwrap_or(name);
            // WITH bindings are materialized snapshots, never consumable.
            let (mut rel, is_binding) = match env.bindings.get(name) {
                Some(r) => {
                    let mut rel = r.clone();
                    let names: Vec<String> =
                        rel.names().iter().map(|c| qualify(binding, c)).collect();
                    rel.rename_columns(names)?;
                    (rel, true)
                }
                None => (base_scan(ctx, name, binding)?, false),
            };
            let n = rel.len();
            if track_lineage && !is_binding {
                let rid_name = format!("{RID_PREFIX}{rid_counter}:{name}");
                *rid_counter += 1;
                rel.add_column(rid_name, Column::from_ints((0..n as i64).collect()))?;
            }
            Ok(rel)
        }
        FromItem::Basket { query, alias } => {
            // Fast path for the canonical consuming scan `[select * from T]`:
            // consumption is every current row, so the rid lineage column
            // (an O(rows) materialization + extraction per firing) is
            // unnecessary and the scan is a plain copy-on-write share of
            // the snapshot.
            if let Some(table) = trivial_scan(query, env) {
                let rel = ctx.relation(table)?;
                merge_consumed(
                    consumed,
                    vec![(table.to_string(), SelVec::all(rel.len()))],
                );
                return rebind(rel, alias.as_deref());
            }
            // The bracketed query is the consuming scan.
            let out = run_select(query, ctx, env, true)?;
            merge_consumed(consumed, out.consumed);
            rebind(out.rel, alias.as_deref())
        }
        FromItem::Subquery { query, alias } => {
            // Ordinary derived table: non-consuming read.
            let out = run_select(query, ctx, env, false)?;
            merge_consumed(consumed, out.consumed);
            rebind(out.rel, Some(alias))
        }
    }
}

/// `select * from <base table>` with no other clauses: the whole-relation
/// scan whose consumption set is trivially "all rows". WITH bindings are
/// excluded — they are materialized snapshots, never consumable.
fn trivial_scan<'a>(stmt: &'a SelectStmt, env: &ExecEnv) -> Option<&'a str> {
    let simple = !stmt.distinct
        && stmt.top.is_none()
        && stmt.where_clause.is_none()
        && stmt.group_by.is_empty()
        && stmt.having.is_none()
        && stmt.order_by.is_empty()
        && stmt.limit.is_none()
        && stmt.union.is_none()
        && matches!(stmt.projection.as_slice(), [SelectItem::Star]);
    if !simple {
        return None;
    }
    match stmt.from.as_slice() {
        [FromItem::Table { name, .. }] if !env.bindings.contains_key(name) => Some(name),
        _ => None,
    }
}

/// Scan a base table and qualify its column names under `binding` —
/// exactly what a `FromItem::Table` resolves to (minus lineage). The
/// compiled delta operators reuse this so their column naming matches the
/// interpreter's by construction.
pub(crate) fn base_scan(
    ctx: &dyn QueryContext,
    name: &str,
    binding: &str,
) -> Result<Relation> {
    let mut rel = ctx.relation(name)?;
    let names: Vec<String> = rel.names().iter().map(|c| qualify(binding, c)).collect();
    rel.rename_columns(names)?;
    Ok(rel)
}

/// Strip any existing qualifier and re-qualify under `binding`.
pub(crate) fn qualify(binding: &str, col: &str) -> String {
    if col.starts_with('#') {
        return col.to_string();
    }
    let base = col.rsplit('.').next().unwrap_or(col);
    format!("{binding}.{base}")
}

fn rebind(mut rel: Relation, alias: Option<&str>) -> Result<Relation> {
    if let Some(alias) = alias {
        let mut seen: HashMap<String, usize> = HashMap::new();
        let names: Vec<String> = rel
            .names()
            .iter()
            .map(|c| {
                let q = qualify(alias, c);
                let n = seen.entry(q.clone()).or_insert(0);
                *n += 1;
                if *n > 1 {
                    format!("{q}#{n}")
                } else {
                    q
                }
            })
            .collect();
        rel.rename_columns(names)?;
    }
    Ok(rel)
}

/// Join `left` with `right`, preferring an unused `col = col` conjunct that
/// spans the two sides (hash join); otherwise a cross product.
fn join_pair(
    left: Relation,
    right: Relation,
    conjuncts: &[Expr],
    used: &mut [bool],
    ctx: &dyn QueryContext,
    env: &ExecEnv,
) -> Result<Relation> {
    let mut key: Option<(usize, usize, usize)> = None; // (conjunct, lcol, rcol)
    for (i, c) in conjuncts.iter().enumerate() {
        if used[i] {
            continue;
        }
        if let Expr::Binary {
            op: crate::ast::BinOp::Eq,
            left: a,
            right: b,
        } = c
        {
            if let (
                Expr::Column {
                    qualifier: qa,
                    name: na,
                },
                Expr::Column {
                    qualifier: qb,
                    name: nb,
                },
            ) = (a.as_ref(), b.as_ref())
            {
                let la = resolve_column(&left, qa.as_deref(), na);
                let ra = resolve_column(&right, qa.as_deref(), na);
                let lb = resolve_column(&left, qb.as_deref(), nb);
                let rb = resolve_column(&right, qb.as_deref(), nb);
                // a on left, b on right
                if let (Ok(lc), Err(_), Err(_), Ok(rc)) = (&la, &ra, &lb, &rb) {
                    key = Some((i, *lc, *rc));
                    break;
                }
                // b on left, a on right
                if let (Err(_), Ok(rc), Ok(lc), Err(_)) = (&la, &ra, &lb, &rb) {
                    key = Some((i, *lc, *rc));
                    break;
                }
            }
        }
    }
    let (lpos, rpos): (Vec<u32>, Vec<u32>) = match key {
        Some((ci, lc, rc)) => {
            used[ci] = true;
            let pairs = hash_join(left.col_at(lc), right.col_at(rc), None, None)?;
            (pairs.left, pairs.right)
        }
        None => {
            // cross product (small inputs only in practice)
            let (ln, rn) = (left.len(), right.len());
            let mut lp = Vec::with_capacity(ln * rn);
            let mut rp = Vec::with_capacity(ln * rn);
            for i in 0..ln as u32 {
                for j in 0..rn as u32 {
                    lp.push(i);
                    rp.push(j);
                }
            }
            (lp, rp)
        }
    };
    // silence unused-variable warnings for ctx/env (kept for future
    // non-column equi-keys)
    let _ = (ctx, env);
    merge_joined(&left, &right, &lpos, &rpos)
}

/// Gather matching rows from both join sides and splice them into one
/// relation, deduplicating colliding column names with a `#2` suffix.
pub(crate) fn merge_joined(
    left: &Relation,
    right: &Relation,
    lpos: &[u32],
    rpos: &[u32],
) -> Result<Relation> {
    let lgath = left.gather_positions(lpos)?;
    let rgath = right.gather_positions(rpos)?;
    let mut combined = lgath;
    for (name, idx) in rgath
        .names()
        .to_vec()
        .into_iter()
        .zip(0..rgath.width())
    {
        let final_name = if combined.names().contains(&name) {
            format!("{name}#2")
        } else {
            name
        };
        combined.add_column(final_name, rgath.col_at(idx).clone())?;
    }
    Ok(combined)
}

/// Pull `(table, positions)` consumption out of `#rid:` columns.
fn extract_consumption(rel: &Relation) -> Vec<(String, SelVec)> {
    let mut out: Vec<(String, SelVec)> = Vec::new();
    for (i, name) in rel.names().iter().enumerate() {
        if let Some(rest) = name.strip_prefix(RID_PREFIX) {
            let table = rest.split_once(':').map(|(_, t)| t).unwrap_or(rest);
            let positions: Vec<u32> = rel
                .col_at(i)
                .ints()
                .map(|v| v.iter().map(|&x| x as u32).collect())
                .unwrap_or_default();
            merge_consumed(
                &mut out,
                vec![(table.to_string(), SelVec::from_unsorted(positions))],
            );
        }
    }
    out
}

/// Non-aggregate pipeline: ORDER BY → TOP/LIMIT → [lineage capture] →
/// projection → DISTINCT.
pub(crate) fn plain_pipeline(
    stmt: &SelectStmt,
    mut rel: Relation,
    ctx: &dyn QueryContext,
    env: &ExecEnv,
    track_lineage: bool,
    consumed: &mut Vec<(String, SelVec)>,
) -> Result<Relation> {
    // ORDER BY over source columns; bare names that don't resolve against
    // the source fall back to projection aliases (SQL lets you order by an
    // output column)
    if !stmt.order_by.is_empty() {
        let alias_map: Vec<(&str, &Expr)> = stmt
            .projection
            .iter()
            .filter_map(|item| match item {
                SelectItem::Expr {
                    expr,
                    alias: Some(a),
                } => Some((a.as_str(), expr)),
                _ => None,
            })
            .collect();
        let key_cols: Vec<(Column, bool)> = stmt
            .order_by
            .iter()
            .map(|(e, asc)| {
                let col = match eval_expr(e, &rel, ctx, env) {
                    Ok(c) => c,
                    Err(SqlError::UnknownColumn(_)) => {
                        let substituted = match e {
                            Expr::Column {
                                qualifier: None,
                                name,
                            } => alias_map
                                .iter()
                                .find(|(a, _)| a == name)
                                .map(|(_, expr)| (*expr).clone()),
                            _ => None,
                        };
                        match substituted {
                            Some(expr) => eval_expr(&expr, &rel, ctx, env)?,
                            None => return Err(SqlError::UnknownColumn(format!("{e:?}"))),
                        }
                    }
                    Err(other) => return Err(other),
                };
                Ok((col, *asc))
            })
            .collect::<Result<_>>()?;
        let keys: Vec<SortKey<'_>> = key_cols
            .iter()
            .map(|(c, asc)| SortKey {
                col: c,
                ascending: *asc,
            })
            .collect();
        let n_bound = effective_top(stmt);
        let perm = match n_bound {
            Some(n) => topn_perm(&keys, n, None)?,
            None => sort_perm(&keys, None)?,
        };
        rel = rel.gather_positions(&perm)?;
    } else if let Some(n) = effective_top(stmt) {
        // TOP without ORDER BY: first n in arrival order
        let n = n.min(rel.len());
        rel = rel.gather(&SelVec::range(0, n as u32))?;
    }
    if stmt.order_by.is_empty() {
        // nothing more to trim
    } else if let Some(n) = effective_top(stmt) {
        if rel.len() > n {
            rel = rel.gather(&SelVec::range(0, n as u32))?;
        }
    }

    if track_lineage {
        merge_consumed(consumed, extract_consumption(&rel));
    }

    let mut out = project(stmt, &rel, ctx, env)?;
    if stmt.distinct {
        out = distinct(out)?;
    }
    Ok(out)
}

pub(crate) fn effective_top(stmt: &SelectStmt) -> Option<usize> {
    match (stmt.top, stmt.limit) {
        (Some(t), Some(l)) => Some(t.min(l) as usize),
        (Some(t), None) => Some(t as usize),
        (None, Some(l)) => Some(l as usize),
        (None, None) => None,
    }
}

/// Grouped pipeline: GROUP BY keys → aggregates → HAVING → projection →
/// DISTINCT → ORDER BY → TOP.
fn grouped_pipeline(
    stmt: &SelectStmt,
    rel: Relation,
    ctx: &dyn QueryContext,
    env: &ExecEnv,
) -> Result<Relation> {
    // Group keys (no GROUP BY + aggregates = one global group).
    let grouping = if stmt.group_by.is_empty() {
        Grouping::single((0..rel.len() as u32).collect())
    } else {
        let key_cols: Vec<Column> = stmt
            .group_by
            .iter()
            .map(|e| eval_expr(e, &rel, ctx, env))
            .collect::<Result<_>>()?;
        let refs: Vec<&Column> = key_cols.iter().collect();
        group_by(&refs, None)?
    };

    // Representative rows carry the group-key values.
    let mut grouped = if grouping.ngroups == 0 {
        // empty input: zero groups; an ungrouped aggregate over an empty
        // relation still yields one row (count=0, sum=NULL)
        if stmt.group_by.is_empty() {
            let mut g = rel.gather(&SelVec::empty())?;
            // one synthetic representative row of NULLs so aggregates can
            // attach length-1 columns
            let row: Vec<Value> = vec![Value::Null; g.width()];
            g.append_row(&row)?;
            g
        } else {
            rel.gather(&SelVec::empty())?
        }
    } else {
        rel.gather_positions(&grouping.representatives)?
    };

    let rw = rewrite_for_grouping(stmt)?;

    for (k, agg) in rw.aggs.iter().enumerate() {
        let col = compute_aggregate(agg, &rel, &grouping, ctx, env)?;
        let col = if grouping.ngroups == 0 && stmt.group_by.is_empty() {
            // align with the synthetic representative row
            empty_aggregate_value(agg, col.vtype())?
        } else {
            col
        };
        grouped.add_column(format!("#agg:{k}"), col)?;
    }

    grouped_tail(stmt, &rw, grouped, ctx, env)
}

/// The grouped select with aggregates rewritten to `#agg:k` references.
pub(crate) struct AggRewrite {
    pub projection: Vec<SelectItem>,
    pub having: Option<Expr>,
    pub order_by: Vec<(Expr, bool)>,
    /// Original aggregate expressions; index `k` backs column `#agg:k`.
    pub aggs: Vec<Expr>,
}

/// Rewrite aggregate sub-expressions to references over computed columns
/// and enforce the no-GROUP-BY plain-column rule.
pub(crate) fn rewrite_for_grouping(stmt: &SelectStmt) -> Result<AggRewrite> {
    let mut agg_exprs: Vec<Expr> = Vec::new();
    let projection: Vec<SelectItem> = stmt
        .projection
        .iter()
        .map(|item| match item {
            SelectItem::Expr { expr, alias } => SelectItem::Expr {
                expr: rewrite_aggregates(expr, &mut agg_exprs),
                alias: alias.clone(),
            },
            SelectItem::Star | SelectItem::QualifiedStar(_) => item.clone(),
        })
        .collect();
    // With no GROUP BY, every projected column must live inside an
    // aggregate — `select a, count(*) from R` is an error in SQL.
    if stmt.group_by.is_empty() {
        for item in &projection {
            if let SelectItem::Expr { expr, .. } = item {
                if references_plain_column(expr) {
                    return Err(SqlError::Exec(
                        "column reference outside aggregates requires GROUP BY".into(),
                    ));
                }
            }
        }
    }
    let having = stmt
        .having
        .as_ref()
        .map(|h| rewrite_aggregates(h, &mut agg_exprs));
    let order_by: Vec<(Expr, bool)> = stmt
        .order_by
        .iter()
        .map(|(e, asc)| (rewrite_aggregates(e, &mut agg_exprs), *asc))
        .collect();
    Ok(AggRewrite {
        projection,
        having,
        order_by,
        aggs: agg_exprs,
    })
}

/// Tail of the grouped pipeline over an already-aggregated relation
/// (representative rows + `#agg:k` columns): HAVING → projection →
/// DISTINCT → ORDER BY → TOP.
pub(crate) fn grouped_tail(
    stmt: &SelectStmt,
    rw: &AggRewrite,
    mut grouped: Relation,
    ctx: &dyn QueryContext,
    env: &ExecEnv,
) -> Result<Relation> {
    // HAVING
    if let Some(h) = &rw.having {
        let mask = eval_expr(h, &grouped, ctx, env)?;
        let sel = select_true(&mask, None)?;
        grouped = grouped.gather(&sel)?;
    }

    // Projection over the grouped relation.
    let grouped_stmt = SelectStmt {
        projection: rw.projection.clone(),
        ..SelectStmt::default()
    };
    let mut out = project(&grouped_stmt, &grouped, ctx, env)?;
    if stmt.distinct {
        out = distinct(out)?;
    }

    // ORDER BY: keys may name projection aliases or grouped columns.
    if !rw.order_by.is_empty() {
        let key_cols: Vec<(Column, bool)> = rw
            .order_by
            .iter()
            .map(|(e, asc)| {
                // try output aliases first, then the grouped relation
                let col = match e {
                    Expr::Column { qualifier: None, name }
                        if out.column(name.as_str()).is_ok() =>
                    {
                        out.column(name)?.clone()
                    }
                    _ => eval_expr(e, &grouped, ctx, env)?,
                };
                if col.len() != out.len() {
                    return Err(SqlError::Exec(
                        "ORDER BY expression misaligned with grouped output".into(),
                    ));
                }
                Ok((col, *asc))
            })
            .collect::<Result<_>>()?;
        let keys: Vec<SortKey<'_>> = key_cols
            .iter()
            .map(|(c, asc)| SortKey {
                col: c,
                ascending: *asc,
            })
            .collect();
        let perm = sort_perm(&keys, None)?;
        out = out.gather_positions(&perm)?;
    }
    if let Some(n) = effective_top(stmt) {
        if out.len() > n {
            out = out.gather(&SelVec::range(0, n as u32))?;
        }
    }
    Ok(out)
}

/// For an ungrouped aggregate over zero rows: COUNT → 0, others → NULL.
pub(crate) fn empty_aggregate_value(agg: &Expr, vtype: ValueType) -> Result<Column> {
    let mut col = Column::new(vtype);
    match agg {
        Expr::FuncCall { name, .. } if name == "count" || name == "count_distinct" => {
            col.push(Value::Int(0))?;
        }
        _ => col.push(Value::Null)?,
    }
    Ok(col)
}

/// Does a rewritten expression still reference a non-`#agg:` column?
fn references_plain_column(expr: &Expr) -> bool {
    match expr {
        Expr::Column { name, .. } => !name.starts_with("#agg:"),
        Expr::Literal(_) | Expr::ScalarSubquery(_) => false,
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => references_plain_column(expr),
        Expr::Binary { left, right, .. } => {
            references_plain_column(left) || references_plain_column(right)
        }
        Expr::Between { expr, lo, hi, .. } => {
            references_plain_column(expr)
                || references_plain_column(lo)
                || references_plain_column(hi)
        }
        Expr::InList { expr, list, .. } => {
            references_plain_column(expr) || list.iter().any(references_plain_column)
        }
        Expr::FuncCall { args, .. } => args.iter().any(references_plain_column),
    }
}

/// Replace aggregate calls with `#agg:k` references, collecting the
/// original expressions (deduplicated).
fn rewrite_aggregates(expr: &Expr, aggs: &mut Vec<Expr>) -> Expr {
    match expr {
        Expr::FuncCall { name, .. } if is_aggregate_name(name) => {
            let idx = match aggs.iter().position(|a| a == expr) {
                Some(i) => i,
                None => {
                    aggs.push(expr.clone());
                    aggs.len() - 1
                }
            };
            Expr::Column {
                qualifier: None,
                name: format!("#agg:{idx}"),
            }
        }
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rewrite_aggregates(expr, aggs)),
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rewrite_aggregates(left, aggs)),
            right: Box::new(rewrite_aggregates(right, aggs)),
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => Expr::Between {
            expr: Box::new(rewrite_aggregates(expr, aggs)),
            lo: Box::new(rewrite_aggregates(lo, aggs)),
            hi: Box::new(rewrite_aggregates(hi, aggs)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(rewrite_aggregates(expr, aggs)),
            list: list.iter().map(|e| rewrite_aggregates(e, aggs)).collect(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite_aggregates(expr, aggs)),
            negated: *negated,
        },
        other => other.clone(),
    }
}

/// Compute one aggregate over the pre-grouped relation.
fn compute_aggregate(
    agg: &Expr,
    rel: &Relation,
    grouping: &Grouping,
    ctx: &dyn QueryContext,
    env: &ExecEnv,
) -> Result<Column> {
    let Expr::FuncCall { name, args, star } = agg else {
        return Err(SqlError::Exec("not an aggregate".into()));
    };
    // `f(*)`: count(*) counts rows; the paper's sum(*) folds the first
    // visible column.
    let arg_col: Option<Column> = if *star {
        if name == "count" {
            None
        } else {
            let first_visible = rel
                .names()
                .iter()
                .position(|n| !n.starts_with('#'))
                .ok_or_else(|| SqlError::Exec(format!("{name}(*) with no columns")))?;
            Some(rel.col_at(first_visible).clone())
        }
    } else {
        let arg = args
            .first()
            .ok_or_else(|| SqlError::Exec(format!("{name} needs an argument")))?;
        Some(eval_expr(arg, rel, ctx, env)?)
    };
    match (name.as_str(), arg_col) {
        ("count", None) => Ok(Column::from_ints(agg_count_star(grouping))),
        ("count", Some(c)) => Ok(Column::from_ints(agg_count(&c, grouping)?)),
        ("count_distinct", Some(c)) => Ok(Column::from_ints(agg_count_distinct(&c, grouping)?)),
        ("sum", Some(c)) => Ok(agg_sum(&c, grouping)?),
        ("avg", Some(c)) => Ok(agg_avg(&c, grouping)?),
        ("min", Some(c)) => Ok(agg_min(&c, grouping)?),
        ("max", Some(c)) => Ok(agg_max(&c, grouping)?),
        (other, _) => Err(SqlError::Exec(format!("unknown aggregate {other}"))),
    }
}

/// Evaluate the projection list over `rel`.
fn project(
    stmt: &SelectStmt,
    rel: &Relation,
    ctx: &dyn QueryContext,
    env: &ExecEnv,
) -> Result<Relation> {
    let mut cols: Vec<(String, Column)> = Vec::new();
    for (ordinal, item) in stmt.projection.iter().enumerate() {
        match item {
            SelectItem::Star => {
                for (i, name) in rel.names().iter().enumerate() {
                    if name.starts_with('#') {
                        continue;
                    }
                    cols.push((name.clone(), rel.col_at(i).clone()));
                }
            }
            SelectItem::QualifiedStar(q) => {
                let prefix = format!("{q}.");
                let mut found = false;
                for (i, name) in rel.names().iter().enumerate() {
                    if name.starts_with(&prefix) {
                        cols.push((name.clone(), rel.col_at(i).clone()));
                        found = true;
                    }
                }
                if !found {
                    return Err(SqlError::Unknown(format!("{q}.*")));
                }
            }
            SelectItem::Expr { expr, .. } => {
                let col = eval_expr(expr, rel, ctx, env)?;
                cols.push((display_name(item, ordinal), col));
            }
        }
    }
    if cols.is_empty() {
        return Err(SqlError::Exec("SELECT * requires a FROM clause".into()));
    }
    // Strip qualifiers when the short names stay unique.
    let shorts: Vec<String> = cols
        .iter()
        .map(|(n, _)| n.rsplit('.').next().unwrap_or(n).to_string())
        .collect();
    let unique = shorts
        .iter()
        .collect::<std::collections::HashSet<_>>()
        .len()
        == shorts.len();
    let named: Vec<(String, Column)> = cols
        .into_iter()
        .zip(shorts)
        .map(|((long, col), short)| (if unique { short } else { long }, col))
        .collect();
    Ok(Relation::from_columns(named)?)
}

/// DISTINCT: group by every column, keep first-seen representatives.
fn distinct(rel: Relation) -> Result<Relation> {
    if rel.is_empty() {
        return Ok(rel);
    }
    let refs: Vec<&Column> = (0..rel.width()).map(|i| rel.col_at(i)).collect();
    let grouping = group_by(&refs, None)?;
    Ok(rel.gather_positions(&grouping.representatives)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Stmt;
    use crate::exec::StaticContext;
    use crate::parser::parse_statement;

    fn ctx() -> StaticContext {
        let r = Relation::from_columns(vec![
            ("a".into(), Column::from_ints(vec![1, 2, 3, 4, 5])),
            ("b".into(), Column::from_ints(vec![10, 20, 30, 40, 50])),
            (
                "s".into(),
                Column::from_strs(
                    ["p", "q", "p", "q", "p"].iter().map(|x| x.to_string()).collect(),
                ),
            ),
        ])
        .unwrap();
        let x = Relation::from_columns(vec![
            ("id".into(), Column::from_ints(vec![1, 2, 3])),
            ("vx".into(), Column::from_ints(vec![100, 200, 300])),
        ])
        .unwrap();
        let y = Relation::from_columns(vec![
            ("id".into(), Column::from_ints(vec![2, 3, 4])),
            ("vy".into(), Column::from_ints(vec![2000, 3000, 4000])),
        ])
        .unwrap();
        StaticContext::new()
            .with_relation("R", r)
            .with_relation("X", x)
            .with_relation("Y", y)
    }

    fn run(src: &str) -> SelectOutput {
        run_track(src, false)
    }

    fn run_track(src: &str, track: bool) -> SelectOutput {
        let stmt = match parse_statement(src).unwrap() {
            Stmt::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let c = ctx();
        let mut env = ExecEnv::default();
        run_select(&stmt, &c, &mut env, track).unwrap()
    }

    #[test]
    fn select_star() {
        let out = run("select * from R");
        assert_eq!(out.rel.len(), 5);
        assert_eq!(out.rel.names(), &["a", "b", "s"]);
        assert!(out.consumed.is_empty());
    }

    #[test]
    fn where_filter() {
        let out = run("select a from R where b > 25");
        assert_eq!(out.rel.column("a").unwrap().ints().unwrap(), &[3, 4, 5]);
    }

    #[test]
    fn projection_expressions_and_aliases() {
        let out = run("select a * 10 as big, b - a from R where a <= 2");
        assert_eq!(out.rel.column("big").unwrap().ints().unwrap(), &[10, 20]);
        assert_eq!(out.rel.names()[1], "col1");
    }

    #[test]
    fn order_and_top() {
        let out = run("select a from R order by a desc");
        assert_eq!(out.rel.column("a").unwrap().ints().unwrap(), &[5, 4, 3, 2, 1]);
        let out = run("select top 2 a from R order by a desc");
        assert_eq!(out.rel.column("a").unwrap().ints().unwrap(), &[5, 4]);
        let out = run("select a from R limit 3");
        assert_eq!(out.rel.len(), 3);
    }

    #[test]
    fn distinct_rows() {
        let out = run("select distinct s from R");
        assert_eq!(out.rel.len(), 2);
    }

    #[test]
    fn grouped_aggregates() {
        let out = run("select s, count(*) as n, sum(a) as t from R group by s");
        assert_eq!(out.rel.len(), 2);
        // groups in first-seen order: p, q
        assert_eq!(out.rel.column("n").unwrap().ints().unwrap(), &[3, 2]);
        assert_eq!(out.rel.column("t").unwrap().ints().unwrap(), &[9, 6]);
    }

    #[test]
    fn ungrouped_aggregates() {
        let out = run("select count(*), sum(b), min(a), max(a), avg(a) from R");
        assert_eq!(out.rel.len(), 1);
        assert_eq!(out.rel.col_at(0).get(0), Value::Int(5));
        assert_eq!(out.rel.col_at(1).get(0), Value::Int(150));
        assert_eq!(out.rel.col_at(2).get(0), Value::Int(1));
        assert_eq!(out.rel.col_at(3).get(0), Value::Int(5));
        assert_eq!(out.rel.col_at(4).get(0), Value::Double(3.0));
    }

    #[test]
    fn empty_input_aggregates() {
        let out = run("select count(*), sum(a) from R where a > 100");
        assert_eq!(out.rel.len(), 1);
        assert_eq!(out.rel.col_at(0).get(0), Value::Int(0));
        assert_eq!(out.rel.col_at(1).get(0), Value::Null);
        // grouped over empty input: no rows at all
        let out = run("select s, count(*) from R where a > 100 group by s");
        assert_eq!(out.rel.len(), 0);
    }

    #[test]
    fn having_and_order_by_alias() {
        let out = run(
            "select s, count(*) as n from R group by s having count(*) > 2 order by n",
        );
        assert_eq!(out.rel.len(), 1);
        assert_eq!(out.rel.column("s").unwrap().get(0), Value::Str("p".into()));
    }

    #[test]
    fn aggregate_arithmetic() {
        let out = run("select sum(a) + count(*) from R");
        assert_eq!(out.rel.col_at(0).get(0), Value::Int(20));
    }

    #[test]
    fn equi_join_via_where() {
        let out = run("select X.vx, Y.vy from X, Y where X.id = Y.id");
        assert_eq!(out.rel.len(), 2);
        assert_eq!(out.rel.column("vx").unwrap().ints().unwrap(), &[200, 300]);
        assert_eq!(out.rel.column("vy").unwrap().ints().unwrap(), &[2000, 3000]);
    }

    #[test]
    fn cross_join_with_filter() {
        let out = run("select X.vx from X, Y where X.id + 1 = Y.id and Y.vy = 2000");
        // pairs where X.id+1 == Y.id: (1,2),(2,3),(3,4); filtered Y.vy=2000 → X.id=1
        assert_eq!(out.rel.column("vx").unwrap().ints().unwrap(), &[100]);
    }

    #[test]
    fn basket_expression_consumes_all_referenced() {
        // q1 of the paper: outer filter does NOT reduce consumption
        let out = run_track("select * from [select * from R] as S where S.a > 3", false);
        assert_eq!(out.rel.len(), 2);
        assert_eq!(out.consumed.len(), 1);
        assert_eq!(out.consumed[0].0, "R");
        assert_eq!(out.consumed[0].1.len(), 5, "all 5 tuples referenced");
    }

    #[test]
    fn basket_expression_predicate_window() {
        // q2: the inner WHERE is the predicate window — only matching
        // tuples are consumed
        let out = run_track(
            "select * from [select * from R where R.b < 25] as S where S.a > 1",
            false,
        );
        assert_eq!(out.rel.len(), 1);
        let (name, sel) = &out.consumed[0];
        assert_eq!(name, "R");
        assert_eq!(sel.as_slice(), &[0, 1]);
    }

    #[test]
    fn basket_top_consumes_exactly_n() {
        let out = run_track("select * from [select top 2 from R order by a desc] as S", false);
        assert_eq!(out.rel.len(), 2);
        let (_, sel) = &out.consumed[0];
        assert_eq!(sel.as_slice(), &[3, 4], "positions of a=4,5");
    }

    #[test]
    fn basket_join_consumes_matching_sides() {
        // the paper's merge/gather example
        let out = run_track("select A.* from [select * from X, Y where X.id = Y.id] as A", false);
        assert_eq!(out.rel.len(), 2);
        let x = out.consumed.iter().find(|(n, _)| n == "X").unwrap();
        let y = out.consumed.iter().find(|(n, _)| n == "Y").unwrap();
        assert_eq!(x.1.as_slice(), &[1, 2], "X ids 2,3 matched");
        assert_eq!(y.1.as_slice(), &[0, 1], "Y ids 2,3 matched");
    }

    #[test]
    fn aggregate_over_basket_consumes_inputs() {
        let out = run_track(
            "select count(*) from [select * from R where a >= 4] as Z",
            false,
        );
        assert_eq!(out.rel.col_at(0).get(0), Value::Int(2));
        assert_eq!(out.consumed[0].1.as_slice(), &[3, 4]);
    }

    #[test]
    fn union_all_and_distinct() {
        let out = run("select a from R where a <= 2 union all select a from R where a <= 1");
        assert_eq!(out.rel.len(), 3);
        let out = run("select a from R where a <= 2 union select a from R where a <= 1");
        assert_eq!(out.rel.len(), 2);
    }

    #[test]
    fn subquery_is_not_consuming() {
        let out = run_track("select * from (select a from R) as T where T.a > 4", false);
        assert_eq!(out.rel.len(), 1);
        assert!(out.consumed.is_empty());
    }

    #[test]
    fn scalar_subquery_in_where() {
        let out = run("select a from R where a = (select max(a) from R)");
        assert_eq!(out.rel.column("a").unwrap().ints().unwrap(), &[5]);
    }

    #[test]
    fn qualified_star_projection() {
        let out = run("select X.* from X, Y where X.id = Y.id");
        assert_eq!(out.rel.names(), &["id", "vx"]);
        assert_eq!(out.rel.len(), 2);
    }

    #[test]
    fn fromless_select() {
        let out = run("select 1 + 1 as two, 'hi' as greeting");
        assert_eq!(out.rel.len(), 1);
        assert_eq!(out.rel.column("two").unwrap().get(0), Value::Int(2));
        assert_eq!(
            out.rel.column("greeting").unwrap().get(0),
            Value::Str("hi".into())
        );
    }

    #[test]
    fn self_join_with_aliases() {
        let out = run("select l.a, r.a from R l, R r where l.a = r.b / 10 and r.a = 1");
        // l.a == r.b/10 and r.a == 1 → r is row (1,10,p): l.a == 1
        assert_eq!(out.rel.len(), 1);
        assert_eq!(out.rel.names().len(), 2);
    }

    #[test]
    fn top_zero_rows() {
        let out = run("select top 0 from R");
        assert_eq!(out.rel.len(), 0);
    }

    #[test]
    fn group_by_expression_key() {
        let out = run("select a % 2 as parity, count(*) as n from R group by a % 2");
        assert_eq!(out.rel.len(), 2);
        // first-seen order: a=1 → parity 1, then parity 0
        assert_eq!(out.rel.column("parity").unwrap().ints().unwrap(), &[1, 0]);
        assert_eq!(out.rel.column("n").unwrap().ints().unwrap(), &[3, 2]);
    }
}
