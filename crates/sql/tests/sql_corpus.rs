//! A corpus of query ↔ expected-result cases exercising the full
//! parse → plan → execute path, including the paper's own example queries.

use dcsql::exec::{execute_script, run_select, ExecEnv, StaticContext};
use dcsql::parse_statements;
use monet::prelude::*;

fn ctx() -> StaticContext {
    let r = Relation::from_columns(vec![
        ("a".into(), Column::from_ints(vec![3, 1, 4, 1, 5, 9, 2, 6])),
        ("b".into(), Column::from_ints(vec![10, 20, 30, 40, 50, 60, 70, 80])),
        (
            "tag".into(),
            Column::from_ts(vec![100, 200, 300, 400, 500, 600, 700, 800]),
        ),
    ])
    .unwrap();
    let x = Relation::from_columns(vec![
        ("id".into(), Column::from_ints(vec![1, 2, 3, 4])),
        ("payload".into(), Column::from_ints(vec![50, 150, 250, 350])),
    ])
    .unwrap();
    let y = Relation::from_columns(vec![
        ("id".into(), Column::from_ints(vec![2, 4, 6])),
        ("score".into(), Column::from_doubles(vec![0.5, 1.5, 2.5])),
    ])
    .unwrap();
    StaticContext::new()
        .with_relation("R", r)
        .with_relation("X", x)
        .with_relation("Y", y)
        .with_var("v1", Value::Int(100))
}

fn select(src: &str) -> Relation {
    let stmts = parse_statements(src).unwrap();
    let c = ctx();
    let fx = execute_script(&stmts, &c).unwrap();
    fx.result.expect("a select result")
}

fn consumed(src: &str) -> Vec<(String, Vec<u32>)> {
    let stmts = parse_statements(src).unwrap();
    let sel = match &stmts[0] {
        dcsql::ast::Stmt::Select(s) => s.clone(),
        other => panic!("{other:?}"),
    };
    let c = ctx();
    let mut env = ExecEnv::default();
    let out = run_select(&sel, &c, &mut env, false).unwrap();
    out.consumed
        .into_iter()
        .map(|(n, s)| (n, s.as_slice().to_vec()))
        .collect()
}

#[test]
fn ordering_stability_and_multi_key() {
    let r = select("select a, b from R order by a asc, b desc");
    assert_eq!(r.column("a").unwrap().ints().unwrap(), &[1, 1, 2, 3, 4, 5, 6, 9]);
    // ties on a=1 broken by b desc: 40 before 20
    assert_eq!(&r.column("b").unwrap().ints().unwrap()[..2], &[40, 20]);
}

#[test]
fn arithmetic_in_projection_and_where() {
    let r = select("select a * b as ab from R where (a + b) % 2 = 1 order by ab");
    // odd a+b: (3,10)=13✓,(1,20)=21✓,(1,40)=41✓,(5,50)=55✓,(9,60)=69✓,(2,70)=72✗...
    assert_eq!(r.column("ab").unwrap().ints().unwrap(), &[20, 30, 40, 250, 540]);
}

#[test]
fn distinct_and_count_distinct_agree() {
    let distinct_rows = select("select distinct a from R");
    let counted = select("select count(distinct a) from R");
    assert_eq!(
        distinct_rows.len() as i64,
        counted.col_at(0).get(0).as_int().unwrap()
    );
}

#[test]
fn having_on_computed_aggregate() {
    let r = select(
        "select a % 2 as parity, sum(b) as s from R group by a % 2 \
         having sum(b) > 150 order by s",
    );
    // parity 1: rows a∈{3,1,1,5,9} → b sum 10+20+40+50+60=180
    // parity 0: rows a∈{4,2,6} → 30+70+80=180 — both > 150
    assert_eq!(r.len(), 2);
    assert_eq!(r.column("s").unwrap().ints().unwrap(), &[180, 180]);
}

#[test]
fn between_boundaries_inclusive() {
    let r = select("select a from R where a between 2 and 5 order by a");
    assert_eq!(r.column("a").unwrap().ints().unwrap(), &[2, 3, 4, 5]);
}

#[test]
fn scalar_subquery_correlates_with_outer_constant() {
    let r = select("select a from R where b = (select min(payload) from X where id > 1) + 20");
    // min payload of id>1 is 150; b = 170 → none
    assert_eq!(r.len(), 0);
    let r = select("select a from R where b = (select min(payload) from X) - 20");
    // 50 - 20 = 30 → a = 4
    assert_eq!(r.column("a").unwrap().ints().unwrap(), &[4]);
}

#[test]
fn join_with_expression_output() {
    let r = select(
        "select X.payload + 1 as p, Y.score from X, Y where X.id = Y.id order by p",
    );
    assert_eq!(r.column("p").unwrap().ints().unwrap(), &[151, 351]);
    assert_eq!(r.column("score").unwrap().doubles().unwrap(), &[0.5, 1.5]);
}

#[test]
fn union_all_preserves_duplicates_union_removes() {
    let all = select("select a from R where a = 1 union all select a from R where a < 3");
    assert_eq!(all.len(), 2 + 3); // two 1s + {1,1,2}
    let dedup = select("select a from R where a = 1 union select a from R where a < 3");
    assert_eq!(dedup.len(), 2); // {1, 2}
}

#[test]
fn variable_thresholds_in_predicates() {
    // v1 = 100 in the context
    let r = select("select id from X where payload > v1 order by id");
    assert_eq!(r.column("id").unwrap().ints().unwrap(), &[2, 3, 4]);
}

#[test]
fn top_vs_limit_interaction() {
    let top = select("select top 3 a from R order by a");
    let limit = select("select a from R order by a limit 3");
    assert_eq!(top.column("a").unwrap().ints().unwrap(), &[1, 1, 2]);
    assert_eq!(
        top.column("a").unwrap().ints().unwrap(),
        limit.column("a").unwrap().ints().unwrap()
    );
    // both present: the tighter bound wins
    let both = select("select top 5 a from R order by a limit 2");
    assert_eq!(both.len(), 2);
}

#[test]
fn nested_basket_expressions_consume_once() {
    // a basket expression over a basket expression: inner-most scan is
    // the consumed one
    let c = consumed(
        "select * from [select * from [select * from X where payload > 100] as inner1] as outer1",
    );
    assert_eq!(c.len(), 1);
    assert_eq!(c[0].0, "X");
    assert_eq!(c[0].1, vec![1, 2, 3]);
}

#[test]
fn two_baskets_in_one_from_consume_independently() {
    let c = consumed(
        "select * from [select * from X where X.payload > 300] as A, \
                       [select * from Y where Y.score > 2.0] as B",
    );
    let x = c.iter().find(|(n, _)| n == "X").unwrap();
    let y = c.iter().find(|(n, _)| n == "Y").unwrap();
    assert_eq!(x.1, vec![3]);
    assert_eq!(y.1, vec![2]);
}

#[test]
fn consumption_union_when_same_basket_twice() {
    let c = consumed(
        "select * from [select * from X where payload < 100] as A, \
                       [select * from X where payload > 300] as B",
    );
    assert_eq!(c.len(), 1);
    assert_eq!(c[0].1, vec![0, 3], "union of both windows");
}

#[test]
fn order_by_inside_basket_affects_consumption() {
    let c = consumed("select * from [select top 2 from R order by tag desc] as W");
    assert_eq!(c[0].1, vec![6, 7], "latest two by tag");
}

#[test]
fn script_with_declares_inserts_and_select() {
    let stmts = parse_statements(
        "declare thr int; set thr = 4; \
         insert into sink select a from R where a > thr; \
         select count(*) from R",
    )
    .unwrap();
    let c = ctx();
    let fx = execute_script(&stmts, &c).unwrap();
    assert_eq!(fx.var_updates, vec![("thr".to_string(), Value::Int(4))]);
    assert_eq!(fx.inserts.len(), 1);
    assert_eq!(fx.inserts[0].0, "sink");
    assert_eq!(fx.inserts[0].2.len(), 3, "a in 5,9,6");
    assert_eq!(fx.result.unwrap().col_at(0).get(0), Value::Int(8));
}

#[test]
fn error_paths_are_clean() {
    let cases = [
        "select nope from R",
        "select a from NOPE",
        "select a from R where a > 'text'",
        "select sum(a) from R group by", // parse error
        "select a, count(*) from R",     // mixed agg without group by → a must be grouped
    ];
    for src in cases {
        let c = ctx();
        let result = parse_statements(src).and_then(|stmts| execute_script(&stmts, &c));
        assert!(result.is_err(), "{src} should fail");
    }
}

#[test]
fn is_null_filters_and_null_arithmetic() {
    let stmts = parse_statements(
        "select a + null as x, a is null as isn, a is not null as notn from R where a = 3",
    )
    .unwrap();
    let c = ctx();
    let r = execute_script(&stmts, &c).unwrap().result.unwrap();
    assert_eq!(r.column("x").unwrap().get(0), Value::Null);
    assert_eq!(r.column("isn").unwrap().get(0), Value::Bool(false));
    assert_eq!(r.column("notn").unwrap().get(0), Value::Bool(true));
}

#[test]
fn group_by_string_keys() {
    let ctx2 = StaticContext::new().with_relation(
        "T",
        Relation::from_columns(vec![
            (
                "k".into(),
                Column::from_strs(vec!["x".into(), "y".into(), "x".into()]),
            ),
            ("v".into(), Column::from_ints(vec![1, 2, 3])),
        ])
        .unwrap(),
    );
    let stmts = parse_statements("select k, sum(v) as s from T group by k order by s").unwrap();
    let r = execute_script(&stmts, &ctx2).unwrap().result.unwrap();
    assert_eq!(r.column("k").unwrap().get(0), Value::Str("y".into()));
    assert_eq!(r.column("s").unwrap().ints().unwrap(), &[2, 4]);
}

#[test]
fn min_max_over_timestamps() {
    let r = select("select min(tag), max(tag) from R");
    assert_eq!(r.col_at(0).get(0), Value::Ts(100));
    assert_eq!(r.col_at(1).get(0), Value::Ts(800));
}

#[test]
fn paper_heartbeat_union_query_shape() {
    // the §5 heartbeat merge: union of a stream and filler markers
    let ctx2 = StaticContext::new()
        .with_relation(
            "X",
            Relation::from_columns(vec![
                ("tag".into(), Column::from_ts(vec![10, 30])),
                ("payload".into(), Column::from_ints(vec![1, 3])),
            ])
            .unwrap(),
        )
        .with_relation(
            "HB",
            Relation::from_columns(vec![
                ("tag".into(), Column::from_ts(vec![20, 40])),
                ("payload".into(), Column::from_values(
                    ValueType::Int,
                    &[Value::Null, Value::Null],
                ).unwrap()),
            ])
            .unwrap(),
        );
    let stmts = parse_statements(
        "select tag, payload from X where tag < (select max(tag) from HB) \
         union all select tag, payload from HB",
    )
    .unwrap();
    let r = execute_script(&stmts, &ctx2).unwrap().result.unwrap();
    assert_eq!(r.len(), 4, "both real events plus both markers");
    assert_eq!(r.col_at(1).null_count(), 2);
}
