//! Compiled ≡ interpreted: randomized queries over randomized relations
//! must produce identical [`Effects`] (result rows, consumptions,
//! inserts, variable updates) through `PhysicalPlan::execute` and
//! `execute_script`. A second pass re-runs the interpreter against a
//! context pruned to the plan's column requirements, pinning that the
//! requirement analysis is a sound superset of what execution resolves.

use std::collections::HashMap;

use dcsql::exec::{execute_script, Effects, QueryContext, StaticContext};
use dcsql::parse_statements;
use dcsql::plan::PhysicalPlan;
use dcsql::Result as SqlResult;
use monet::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 64;

/// Random test relation: ints (with NULLs), doubles, strings.
fn random_relation(rng: &mut StdRng, rows: usize) -> Relation {
    let mut a = Column::new(ValueType::Int);
    let mut b = Column::new(ValueType::Int);
    let mut d = Column::new(ValueType::Double);
    let mut s = Column::new(ValueType::Str);
    for _ in 0..rows {
        let av = if rng.gen_range(0..10) == 0 {
            Value::Null
        } else {
            Value::Int(rng.gen_range(-5..30))
        };
        a.push(av).unwrap();
        b.push(Value::Int(rng.gen_range(0..8))).unwrap();
        d.push(Value::Double(rng.gen_range(0..1000) as f64 / 100.0))
            .unwrap();
        let tag = ["p", "q", "r"][rng.gen_range(0..3usize)];
        s.push(Value::Str(tag.to_string())).unwrap();
    }
    Relation::from_columns(vec![
        ("a".into(), a),
        ("b".into(), b),
        ("d".into(), d),
        ("s".into(), s),
    ])
    .unwrap()
}

fn make_ctx(rng: &mut StdRng) -> StaticContext {
    let r_rows = rng.gen_range(0..ROWS);
    let s_rows = rng.gen_range(1..ROWS);
    let r = random_relation(rng, r_rows);
    let s = random_relation(rng, s_rows);
    StaticContext::new()
        .with_relation("R", r)
        .with_relation("S", s)
        .with_var("v1", Value::Int(rng.gen_range(0..20i64)))
}

/// The query corpus: `{k}`-style holes are filled with random constants.
/// Mix of fast shapes (the compiled path) and general shapes (the
/// interpreter fallback inside `PhysicalPlan::execute`).
const FAST_TEMPLATES: &[&str] = &[
    "select * from R where a > {k}",
    "select a, b from R where a >= {k} and b < {j}",
    "select R.a from R where a between {j} and {k}",
    "select a from R where a = b",
    "select a from R where a > v1",
    "select s, a from R where s = '{t}'",
    "select top {n} a from R",
    "select a from R limit {n}",
    "select * from [select * from R] as Z where Z.a > {k}",
    "select Z.* from [select * from R where a > {k}] as Z",
    "select Z.a, Z.b from [select * from R where b <= {j}] as Z where Z.a > {k}",
    "select x from [select a as x from R where a > {k}] as Z where Z.x < {j} + 10",
    "select a, b from [select top {n} a, b from R where b > {j}] as Z",
    "insert into OUT select a from [select a, b from R where b = {j}] as Z where Z.a > {k}",
    "insert into OUT (y) select a from [select a from R where a > {k}] as W",
    "select * from (select a, d from R) as t where t.a > {k}",
    "select a + 1 as inc, d from R where d > {j} and a is not null",
    "select 1 as one from R where a > {k}",
    "select a from R where a in ({j}, {k}, 7)",
    "select a from R where not (a > {k})",
    "select a from R where a > (select min(a) from S)",
];

const GENERAL_TEMPLATES: &[&str] = &[
    "select count(*), sum(a) from R where a > {k}",
    "select s, count(*) as n from R group by s having count(*) > {j} order by n",
    "select distinct s from R",
    "select a from R order by a desc limit {n}",
    "select R.a, S.b from R, S where R.b = S.b and S.a > {k}",
    "select a from R where a <= {k} union all select a from R where a > {j}",
    "select count(*) from [select * from R where a >= {k}] as Z",
    "declare c int; set c = {k}; select a from R where a > c",
    "with A as [select a, b from R] begin \
     insert into OUT select a from A where A.b > {j}; \
     insert into OUT2 select b from A; end",
];

fn instantiate(template: &str, rng: &mut StdRng) -> String {
    template
        .replace("{k}", &rng.gen_range(-3..25i64).to_string())
        .replace("{j}", &rng.gen_range(0..8i64).to_string())
        .replace("{n}", &rng.gen_range(0..10i64).to_string())
        .replace("{t}", ["p", "q", "r"][rng.gen_range(0..3usize)])
}

fn run_both(sql: &str, ctx: &StaticContext) -> (SqlResult<Effects>, SqlResult<Effects>, usize) {
    let stmts = parse_statements(sql).unwrap_or_else(|e| panic!("parse {sql}: {e}"));
    let interp = execute_script(&stmts, ctx);
    let plan = PhysicalPlan::compile(&stmts);
    let compiled = plan.execute(ctx);
    (interp, compiled, plan.fast_count())
}

fn assert_equivalent(sql: &str, interp: SqlResult<Effects>, compiled: SqlResult<Effects>) {
    match (interp, compiled) {
        (Ok(a), Ok(b)) => {
            assert_eq!(
                a, b,
                "compiled effects diverge from interpreter for {sql}"
            );
        }
        (Err(_), Err(_)) => {} // both fail — equivalent outcome
        (a, b) => panic!(
            "one path failed for {sql}: interpreter={:?} compiled={:?}",
            a.map(|_| "ok"),
            b.map(|_| "ok")
        ),
    }
}

#[test]
fn compiled_matches_interpreter_on_random_inputs() {
    let mut rng = StdRng::seed_from_u64(0xDC_5EED);
    let mut fast_seen = 0usize;
    for round in 0..60 {
        let ctx = make_ctx(&mut rng);
        for template in FAST_TEMPLATES.iter().chain(GENERAL_TEMPLATES) {
            let sql = instantiate(template, &mut rng);
            let (interp, compiled, fast) = run_both(&sql, &ctx);
            fast_seen += fast;
            assert_equivalent(&format!("[round {round}] {sql}"), interp, compiled);
        }
    }
    assert!(
        fast_seen > 60 * FAST_TEMPLATES.len() / 2,
        "fast corpus mostly fell back to the interpreter ({fast_seen} fast executions)"
    );
}

#[test]
fn fast_templates_compile_to_fast_plans() {
    let mut rng = StdRng::seed_from_u64(7);
    for template in FAST_TEMPLATES {
        let sql = instantiate(template, &mut rng);
        let stmts = parse_statements(&sql).unwrap();
        let plan = PhysicalPlan::compile(&stmts);
        assert_eq!(
            plan.fast_count(),
            1,
            "expected the fast path for {sql}:\n{}",
            plan.describe().join("\n")
        );
    }
}

/// Project every relation down to the columns the plan asked for — the
/// factory's pruned-snapshot behavior, simulated. Running the FULL
/// interpreter against the pruned context must still work: the
/// requirement analysis has to be a superset of everything execution
/// resolves.
fn prune_relations(ctx: &StaticContext, plan: &PhysicalPlan) -> StaticContext {
    let mut pruned = StaticContext::new();
    pruned.vars = ctx.vars.clone();
    pruned.now_micros = ctx.now_micros;
    for (name, rel) in &ctx.relations {
        let kept = match plan.wanted_for(name) {
            None => rel.clone(),
            Some(cols) => {
                let names: Vec<&str> = rel
                    .names()
                    .iter()
                    .filter(|n| cols.contains(*n))
                    .map(|n| n.as_str())
                    .collect();
                if names.is_empty() {
                    // row-count carrier, mirroring the engine's guard
                    rel.project(&[rel.names()[0].as_str()]).unwrap()
                } else {
                    rel.project(&names).unwrap()
                }
            }
        };
        pruned.relations.insert(name.clone(), kept);
    }
    pruned
}

#[test]
fn pruned_snapshots_are_sufficient_for_both_paths() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..40 {
        let ctx = make_ctx(&mut rng);
        for template in FAST_TEMPLATES.iter().chain(GENERAL_TEMPLATES) {
            let sql = instantiate(template, &mut rng);
            let stmts = parse_statements(&sql).unwrap();
            let plan = PhysicalPlan::compile(&stmts);
            let full = execute_script(&stmts, &ctx);
            let pruned_ctx = prune_relations(&ctx, &plan);
            let interp_pruned = execute_script(&stmts, &pruned_ctx);
            let compiled_pruned = plan.execute(&pruned_ctx);
            assert_equivalent(&format!("(interp/pruned) {sql}"), full, interp_pruned);
            let full = execute_script(&stmts, &ctx);
            assert_equivalent(&format!("(compiled/pruned) {sql}"), full, compiled_pruned);
        }
    }
}

/// Hand-picked regressions: exact consumption sets, TOP interplay,
/// variables, and the column-pruned `columns()` entry point.
#[test]
fn targeted_consumption_and_pruning_cases() {
    let r = Relation::from_columns(vec![
        ("a".into(), Column::from_ints(vec![1, 2, 3, 4, 5])),
        ("b".into(), Column::from_ints(vec![10, 20, 30, 40, 50])),
        ("c".into(), Column::from_ints(vec![7; 5])),
    ])
    .unwrap();
    let ctx = StaticContext::new().with_relation("R", r);

    // inner filter bounds consumption; outer filter does not
    let stmts =
        parse_statements("select * from [select a, b from R where a <= 3] as Z where Z.b > 10")
            .unwrap();
    let plan = PhysicalPlan::compile(&stmts);
    assert_eq!(plan.fast_count(), 1);
    let fx = plan.execute(&ctx).unwrap();
    assert_eq!(fx.consumed.len(), 1);
    assert_eq!(fx.consumed[0].0, "R");
    assert_eq!(fx.consumed[0].1.as_slice(), &[0, 1, 2]);
    assert_eq!(fx.result.as_ref().unwrap().len(), 2);
    // pruning: only a and b are required
    let cols = plan.wanted_for("R").unwrap();
    assert!(cols.contains("a") && cols.contains("b") && !cols.contains("c"));

    // top bounds consumption to the first n survivors
    let stmts = parse_statements("select a from [select top 2 a from R where a > 1] as Z").unwrap();
    let plan = PhysicalPlan::compile(&stmts);
    let fx = plan.execute(&ctx).unwrap();
    assert_eq!(fx.consumed[0].1.as_slice(), &[1, 2]);

    // explicit columns() contract: extra columns are fine, row count must
    // survive a literal-only projection
    struct Narrow(StaticContext);
    impl QueryContext for Narrow {
        fn relation(&self, name: &str) -> dcsql::Result<Relation> {
            self.0.relation(name)
        }
        fn columns(&self, name: &str, wanted: &[String]) -> dcsql::Result<Relation> {
            let rel = self.0.relation(name)?;
            let keep: Vec<&str> = rel
                .names()
                .iter()
                .filter(|n| wanted.contains(n))
                .map(|n| n.as_str())
                .collect();
            if keep.is_empty() {
                return Ok(rel.project(&[rel.names()[0].as_str()]).unwrap());
            }
            Ok(rel.project(&keep).unwrap())
        }
        fn get_var(&self, name: &str) -> Option<Value> {
            self.0.get_var(name)
        }
        fn now(&self) -> i64 {
            self.0.now()
        }
    }
    let narrow = Narrow(
        StaticContext::new().with_relation(
            "R",
            Relation::from_columns(vec![
                ("a".into(), Column::from_ints(vec![1, 2, 3])),
                ("b".into(), Column::from_ints(vec![9, 9, 9])),
            ])
            .unwrap(),
        ),
    );
    let stmts = parse_statements("select 1 as one from R where a > 1").unwrap();
    let plan = PhysicalPlan::compile(&stmts);
    let fx = plan.execute(&narrow).unwrap();
    assert_eq!(fx.result.unwrap().len(), 2);
}

/// Multi-statement scripts interleaving fast and interpreted statements
/// share one environment (SET overlays feed later fast statements).
#[test]
fn mixed_scripts_share_environment() {
    let r = Relation::from_columns(vec![(
        "a".into(),
        Column::from_ints(vec![1, 5, 9]),
    )])
    .unwrap();
    let ctx = StaticContext::new().with_relation("R", r);
    let sql = "declare th int; set th = 4; select a from R where a > th";
    let stmts = parse_statements(sql).unwrap();
    let plan = PhysicalPlan::compile(&stmts);
    assert_eq!(plan.fast_count(), 1, "the select compiles fast");
    let a = execute_script(&stmts, &ctx).unwrap();
    let b = plan.execute(&ctx).unwrap();
    assert_eq!(a, b);
    assert_eq!(b.result.as_ref().unwrap().len(), 2);
}

/// Error parity spot checks: both paths must fail (unknown columns,
/// type mismatches), never one succeed while the other errors.
#[test]
fn error_parity() {
    let ctx = StaticContext::new().with_relation(
        "R",
        Relation::from_columns(vec![
            ("a".into(), Column::from_ints(vec![1])),
            ("s".into(), Column::from_strs(vec!["x".into()])),
        ])
        .unwrap(),
    );
    for sql in [
        "select nope from R",
        "select a from R where missing_col > 1 and a > 0",
        "select a from R where s > 3",
        "select a from R where a between 'x' and 'y'",
        "select W.a from R",
        "select a from NOPE",
    ] {
        let (interp, compiled, _) = {
            let stmts = parse_statements(sql).unwrap();
            let plan = PhysicalPlan::compile(&stmts);
            (
                execute_script(&stmts, &ctx),
                plan.execute(&ctx),
                plan.fast_count(),
            )
        };
        assert_equivalent(sql, interp, compiled);
    }
}

/// The documented equivalence boundary: on ill-typed predicates the two
/// paths agree whenever the interpreter errors on rows the compiled
/// path also inspects, but a candidate-restricted scan may short-circuit
/// past a type error the interpreter's full-width source-order mask
/// raises. This pins the accepted divergence so a change to predicate
/// ordering or type checking shows up here, not in production.
#[test]
fn ill_typed_predicates_may_short_circuit() {
    let ctx = StaticContext::new().with_relation(
        "R",
        Relation::from_columns(vec![
            ("a".into(), Column::from_ints(vec![1, 2, 3])),
            ("b".into(), Column::from_ints(vec![1, 2, 3])),
            ("s".into(), Column::from_strs(vec!["x".into(); 3])),
        ])
        .unwrap(),
    );
    // `b > s` is ill-typed; `a > 5` filters everything out. The
    // interpreter evaluates source order (b > s first, full width) and
    // errors; the compiled plan orders the indexable a > 5 first, the
    // candidate set empties, and the col-col scan inspects no rows.
    let stmts = parse_statements("select a from R where b > s and a > 5").unwrap();
    assert!(execute_script(&stmts, &ctx).is_err());
    let plan = PhysicalPlan::compile(&stmts);
    let fx = plan.execute(&ctx).unwrap();
    assert_eq!(fx.result.unwrap().len(), 0);

    // with surviving candidates both paths raise
    let stmts = parse_statements("select a from R where b > s and a > 0").unwrap();
    assert!(execute_script(&stmts, &ctx).is_err());
    assert!(PhysicalPlan::compile(&stmts).execute(&ctx).is_err());

    // and an ill-typed conjunct alone raises on both paths
    let stmts = parse_statements("select a from R where b > s").unwrap();
    assert!(execute_script(&stmts, &ctx).is_err());
    assert!(PhysicalPlan::compile(&stmts).execute(&ctx).is_err());
}

/// Smoke the HashMap-based contexts stay deterministic across paths in
/// a longer script with inserts into several targets.
#[test]
fn multi_insert_script_equivalence() {
    let mut rng = StdRng::seed_from_u64(99);
    let ctx = make_ctx(&mut rng);
    let sql = "insert into OUT select a, b from R where a > 2; \
               insert into OUT2 select b from [select b from R where b >= 1] as Z; \
               select count(*) from R";
    let (interp, compiled, fast) = run_both(sql, &ctx);
    assert_eq!(fast, 2);
    let (a, b) = (interp.unwrap(), compiled.unwrap());
    assert_eq!(a, b);
    let targets: HashMap<&str, usize> = b
        .inserts
        .iter()
        .map(|(t, _, rel)| (t.as_str(), rel.len()))
        .collect();
    assert!(targets.contains_key("OUT") && targets.contains_key("OUT2"));
}

// ---- delta (standing) execution ≡ full re-execution -------------------------

/// Shapes the delta compiler accepts: two-table equi-joins and single-
/// scan grouped aggregation.
const DELTA_TEMPLATES: &[&str] = &[
    "select R.a, S.d from R, S where R.b = S.b",
    "select R.a, S.a from R, S where R.b = S.b and S.a > {k}",
    "insert into OUT select R.a from R, S where R.s = S.s and R.a > {j}",
    "select s, count(*) as n, sum(a) as t from R where a > {k} group by s",
    "select count(*), sum(a), min(d), max(a), avg(a) from R",
    "select b, count(distinct s) from R group by b",
];

/// Random append-only growth / delete / no-op step for one table.
/// Deletes drop a random subset of rows and bump the table's delete
/// generation, exactly what a basket drain/compaction does.
fn mutate(rel: &mut Relation, gen: &mut u64, rng: &mut StdRng) {
    match rng.gen_range(0..4) {
        0 => {} // fire with nothing new
        3 if !rel.is_empty() => {
            let keep: Vec<u32> = (0..rel.len() as u32)
                .filter(|_| rng.gen_range(0..3) > 0)
                .collect();
            *rel = rel
                .gather(&SelVec::from_sorted(keep).unwrap())
                .unwrap();
            *gen += 1;
        }
        _ => {
            let n = rng.gen_range(1..8);
            let extra = random_relation(rng, n);
            let rows: Vec<Vec<Value>> = extra.iter_rows().collect();
            rel.append_rows(rows.iter().map(Vec::as_slice)).unwrap();
        }
    }
}

/// Randomized append/delete/fire interleavings: per firing, standing
/// delta execution must produce the same [`Effects`] as a from-scratch
/// interpreter run over the same snapshot — the delta path is a pure
/// performance optimization.
#[test]
fn standing_delta_matches_full_on_random_interleavings() {
    use dcsql::plan::{ArrangementRegistry, PlanDeltaState};

    let mut rng = StdRng::seed_from_u64(0x0DE17A);
    let mut incremental_firings = 0u64;
    for round in 0..25 {
        for template in DELTA_TEMPLATES {
            // one registry per standing query lifetime: arrangements are
            // keyed by table name, and each template round regenerates
            // R/S from scratch (same names, unrelated contents)
            let registry = ArrangementRegistry::new();
            let sql = instantiate(template, &mut rng);
            let stmts = parse_statements(&sql).unwrap();
            let plan = PhysicalPlan::compile(&stmts);
            assert_eq!(plan.delta_count(), 1, "{sql} must compile to a delta shape");

            let (rn, sn) = (rng.gen_range(0..12), rng.gen_range(1..12));
            let mut r = random_relation(&mut rng, rn);
            let mut s = random_relation(&mut rng, sn);
            let (mut rgen, mut sgen) = (0u64, 0u64);
            let mut state = PlanDeltaState::default();
            for firing in 0..8 {
                mutate(&mut r, &mut rgen, &mut rng);
                mutate(&mut s, &mut sgen, &mut rng);
                let ctx = StaticContext::new()
                    .with_relation("R", r.clone())
                    .with_relation("S", s.clone());
                let spans: HashMap<String, u64> =
                    [("R".to_string(), rgen), ("S".to_string(), sgen)].into();
                let standing =
                    plan.execute_standing(&ctx, &spans, &state, Some(&registry));
                let full = execute_script(&stmts, &ctx);
                match (standing, full) {
                    (Ok((fx, outcome, next)), Ok(expected)) => {
                        assert_eq!(
                            fx, expected,
                            "[round {round} firing {firing}] {sql} diverged from full re-execution"
                        );
                        incremental_firings += outcome.delta_stmts;
                        state = next;
                    }
                    (Err(_), Err(_)) => {} // equivalent failure
                    (a, b) => panic!(
                        "[round {round} firing {firing}] one path failed for {sql}: \
                         standing={:?} full={:?}",
                        a.map(|_| "ok"),
                        b.map(|_| "ok")
                    ),
                }
            }
        }
    }
    assert!(
        incremental_firings > 200,
        "delta path barely exercised ({incremental_firings} incremental statement firings)"
    );
}
