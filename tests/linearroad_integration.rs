//! Integration: Linear Road end-to-end on a reduced scale — the full
//! 38-query network, driver, and validator working together.

use linearroad::driver::{run, run_workload, DriverConfig};
use linearroad::gen::{generate, GenConfig, Workload};
use linearroad::types::*;
use linearroad::validate::{reference_run, validate};

fn small_cfg(scale: f64, secs: i64, seed: u64) -> DriverConfig {
    DriverConfig {
        gen: GenConfig {
            scale,
            duration_secs: secs,
            seed,
            xways: 1,
            query_fraction: 0.02,
        },
        sample_every_secs: 60,
    }
}

#[test]
fn validated_run_at_two_scales() {
    for (scale, seed) in [(0.02f64, 21u64), (0.05, 22)] {
        let result = run(&small_cfg(scale, 600, seed));
        let report = validate(&result);
        assert!(
            report.all_passed(),
            "scale {scale}:\n{}",
            report.render()
        );
    }
}

#[test]
fn larger_scale_means_more_load_everywhere() {
    let lo = run(&small_cfg(0.02, 600, 7));
    let hi = run(&small_cfg(0.08, 600, 7));
    assert!(hi.total_input > lo.total_input * 2);
    assert!(hi.tolls.len() >= lo.tolls.len());
    // work volume grows with scale for the ingest collection
    // (tuples consumed is deterministic; wall-clock busy time is too noisy
    // when the test suite runs in parallel)
    let consumed = |r: &linearroad::driver::LrRun, c: usize| -> u64 {
        r.load[c].1.iter().map(|s| s.consumed).sum()
    };
    assert!(
        consumed(&hi, 0) > consumed(&lo, 0) * 2,
        "Q1 work grows with scale"
    );
}

#[test]
fn accident_free_run_has_no_alerts() {
    // a workload with freely flowing traffic (no forced accidents):
    // handcraft moving cars only
    let mut tuples = Vec::new();
    for vid in 1..40i64 {
        for r in 0..6i64 {
            let pos = vid * 100 + r * 1500; // always moving
            tuples.push(InputTuple::position(r * 30, vid, 60, 0, 1, 0, pos));
        }
    }
    tuples.sort_by_key(|t| t.time);
    let workload = Workload {
        tuples,
        accidents: vec![],
    };
    let cfg = small_cfg(0.01, 200, 1);
    let result = run_workload(&cfg, workload);
    assert_eq!(result.alerts.len(), 0, "no stopped cars → no alerts");
    assert_eq!(result.state.lock().accidents.accidents().len(), 0);
    let report = validate(&result);
    assert!(report.all_passed(), "\n{}", report.render());
}

#[test]
fn reference_and_network_agree_on_generated_traffic() {
    let cfg = small_cfg(0.03, 900, 33);
    let workload = generate(&cfg.gen);
    let reference = reference_run(&workload);
    let result = run_workload(&cfg, workload);
    // same accidents, same crossings, same money
    assert_eq!(
        result.state.lock().accidents.accidents().len(),
        reference.accidents_detected
    );
    assert_eq!(result.tolls.len(), reference.toll_notifications);
    assert_eq!(
        result.state.lock().assessor.total_charged(),
        reference.total_charged
    );
}

#[test]
fn every_request_gets_exactly_one_answer() {
    let cfg = small_cfg(0.03, 600, 44);
    let result = run(&cfg);
    let balance_requests: std::collections::HashSet<i64> = result
        .workload
        .tuples
        .iter()
        .filter(|t| t.kind == InputKind::AccountBalance)
        .map(|t| t.qid)
        .collect();
    let answered: std::collections::HashSet<i64> = result
        .balance_answers
        .column("qid")
        .unwrap()
        .ints()
        .unwrap()
        .iter()
        .copied()
        .collect();
    assert_eq!(balance_requests, answered, "balance answers 1:1 with requests");

    let exp_requests: std::collections::HashSet<i64> = result
        .workload
        .tuples
        .iter()
        .filter(|t| t.kind == InputKind::DailyExpenditure)
        .map(|t| t.qid)
        .collect();
    let exp_answered: std::collections::HashSet<i64> = result
        .expenditure_answers
        .column("qid")
        .unwrap()
        .ints()
        .unwrap()
        .iter()
        .copied()
        .collect();
    assert_eq!(exp_requests, exp_answered);
}

#[test]
fn q7_works_hard_under_congestion() {
    // The paper's observation that Q7 dominates emerges under load: charges
    // only exist when segments exceed 50 cars. Handcraft heavy congestion
    // plus a stream of balance requests and check Q7 does real work.
    let mut tuples = Vec::new();
    let mut qid = 1i64;
    // 60 resident cars keep segment 5 congested (slow, >50 distinct cars
    // every minute, never at identical positions so no accident forms)
    for minute in 0..12i64 {
        for vid in 1..=60i64 {
            for r in 0..2i64 {
                let t = minute * 60 + r * 30;
                tuples.push(InputTuple::position(
                    t,
                    vid,
                    20,
                    0,
                    1,
                    0,
                    5 * SEGMENT_FEET + vid * 40 + r * 13 + minute, // always moving
                ));
            }
        }
    }
    // probe cars cross 4 → 5 → 6: entering 5 is tolled (60 cars in the
    // previous minute, LAV 20), leaving 5 charges the toll
    for m in 2..10i64 {
        let vid = 1000 + m;
        tuples.push(InputTuple::position(m * 60, vid, 50, 0, 1, 0, 4 * SEGMENT_FEET));
        tuples.push(InputTuple::position(m * 60 + 30, vid, 50, 0, 1, 0, 5 * SEGMENT_FEET));
        tuples.push(InputTuple::position((m + 1) * 60, vid, 50, 0, 1, 0, 6 * SEGMENT_FEET));
        tuples.push(InputTuple::balance_request((m + 1) * 60 + 45, vid, qid));
        qid += 1;
    }
    tuples.sort_by_key(|t| t.time);
    let workload = Workload {
        tuples,
        accidents: vec![],
    };
    let result = run_workload(&small_cfg(0.05, 750, 55), workload);

    // congestion generated real charges...
    assert!(
        result.state.lock().assessor.total_charged() > 0,
        "congested segments must produce charges"
    );
    // ...and Q7's relational pipeline fired on them
    let totals: Vec<(String, f64)> = result
        .load
        .iter()
        .map(|(n, s)| (n.clone(), s.iter().map(|x| x.busy_ms).sum()))
        .collect();
    let q7 = totals[6].1;
    assert!(q7 > 0.0);
    // Q7 outweighs the other two output collections (Q5 filter, Q6 daily
    // expenditure), as in the paper's load breakdown
    for light in [4usize, 5] {
        assert!(
            q7 >= totals[light].1,
            "Q7 ({q7:.3} ms) should outweigh {} ({:.3} ms)",
            totals[light].0,
            totals[light].1
        );
    }
    // and every balance answer is correct against the oracle
    let answers = &result.balance_answers;
    let st = result.state.lock();
    for i in 0..answers.len() {
        let vid = answers.column("vid").unwrap().ints().unwrap()[i];
        let bal = answers.column("balance").unwrap().ints().unwrap()[i];
        assert!(bal <= st.assessor.balance(vid), "answers never overstate");
    }
}
