//! Integration: the paper's §5 query idioms running end-to-end through the
//! engine (parser → executor → baskets → scheduler).

use std::sync::Arc;

use datacell::prelude::*;

fn engine() -> (Arc<VirtualClock>, DataCell) {
    let clock = Arc::new(VirtualClock::starting_at(10 * MICROS_PER_SEC));
    let engine = DataCell::with_clock(clock.clone());
    (clock, engine)
}

#[test]
fn filter_idiom_outliers() {
    // §5 Filter: top-20 batches in temporal order, outliers to a table
    let (_clock, e) = engine();
    e.create_stream(
        "X",
        &Schema::from_pairs(&[("tag", ValueType::Ts), ("payload", ValueType::Int)]),
    )
    .unwrap();
    e.create_table(
        "outliers",
        &Schema::from_pairs(&[("tag", ValueType::Ts), ("payload", ValueType::Int)]),
    )
    .unwrap();
    e.register_query(
        "outliers",
        "insert into outliers select b.tag, b.payload \
         from [select top 20 from X order by tag] as b where b.payload > 100",
        QueryOptions {
            min_input: Some(20),
            ..QueryOptions::default()
        },
    )
    .unwrap();

    // 19 tuples: below the threshold, nothing fires
    for i in 0..19i64 {
        e.ingest("X", &[vec![Value::Ts(i), Value::Int(90 + i)]]).unwrap();
    }
    e.run_until_quiescent(8).unwrap();
    assert_eq!(e.basket("X").unwrap().len(), 19);

    // the 20th arrives: the batch is consumed, outliers extracted
    e.ingest("X", &[vec![Value::Ts(19), Value::Int(200)]]).unwrap();
    e.run_until_quiescent(8).unwrap();
    assert_eq!(e.basket("X").unwrap().len(), 0, "precisely 20 consumed");
    let out = e.catalog().get("outliers").unwrap();
    let n = out.read().unwrap().len();
    // payloads 101..108 (i=11..18) and 200 → 9 tuples > 100
    assert_eq!(n, 9);
}

#[test]
fn aggregation_idiom_running_totals() {
    // §5 Aggregation: DECLARE/SET + batch-of-10 incremental update
    let (_clock, e) = engine();
    e.create_stream("X", &Schema::from_pairs(&[("payload", ValueType::Int)]))
        .unwrap();
    e.execute("declare cnt integer; declare tot integer; set tot = 0; set cnt = 0")
        .unwrap();
    e.register_query(
        "running_avg",
        "with Z as [select top 10 payload from X] begin \
         set cnt = cnt + (select count(*) from Z); \
         set tot = tot + (select sum(payload) from Z); end",
        QueryOptions {
            min_input: Some(10),
            ..QueryOptions::default()
        },
    )
    .unwrap();

    let rows: Vec<Vec<Value>> = (1..=25i64).map(|i| vec![Value::Int(i)]).collect();
    e.ingest("X", &rows).unwrap();
    e.run_until_quiescent(16).unwrap();

    // two full batches of 10 consumed; 5 remain waiting
    assert_eq!(e.vars().get("cnt"), Some(Value::Int(20)));
    assert_eq!(e.vars().get("tot"), Some(Value::Int((1..=20i64).sum())));
    assert_eq!(e.basket("X").unwrap().len(), 5);
}

#[test]
fn merge_idiom_gather_with_timeout_gc() {
    // §5 Split and Merge: id-matched join consumes matches; stale residue
    // is swept by a timeout query
    let (clock, e) = engine();
    let sch = Schema::from_pairs(&[("id", ValueType::Int), ("tag", ValueType::Ts)]);
    e.create_basket("X", &sch).unwrap();
    e.create_basket("Y", &sch).unwrap();
    e.create_table("trash", &sch).unwrap();

    let matched = e
        .register_query(
            "gather",
            "select A.* from [select X.id, X.tag, Y.tag from X, Y where X.id = Y.id] as A",
            QueryOptions::subscribed(),
        )
        .unwrap()
        .unwrap();
    e.register_query(
        "gc",
        "insert into trash [select all from X where X.tag < now() - 1 hour]",
        QueryOptions::default(),
    )
    .unwrap();

    let t = clock.now();
    e.ingest("X", &[vec![Value::Int(1), Value::Ts(t)], vec![Value::Int(2), Value::Ts(t)]])
        .unwrap();
    e.ingest("Y", &[vec![Value::Int(1), Value::Ts(t)]]).unwrap();
    e.run_until_quiescent(16).unwrap();

    let m = matched.try_recv().unwrap();
    assert_eq!(m.len(), 1, "id 1 matched");
    assert_eq!(e.basket("X").unwrap().len(), 1, "id 2 waits for a partner");
    assert_eq!(e.basket("Y").unwrap().len(), 0);

    // late partner arrives → delayed match works
    e.ingest("Y", &[vec![Value::Int(2), Value::Ts(clock.now())]]).unwrap();
    e.run_until_quiescent(16).unwrap();
    assert_eq!(matched.try_recv().unwrap().len(), 1);

    // stale leftovers go to trash after the timeout
    e.ingest("X", &[vec![Value::Int(99), Value::Ts(clock.now())]]).unwrap();
    clock.advance(2 * 3_600 * MICROS_PER_SEC);
    e.run_until_quiescent(16).unwrap();
    assert_eq!(e.basket("X").unwrap().len(), 0);
    assert_eq!(e.catalog().get("trash").unwrap().read().unwrap().len(), 1);
}

#[test]
fn predicate_window_prioritizes_out_of_order() {
    // §3.4: predicate windows select tuples by content, not arrival order
    let (_clock, e) = engine();
    e.create_stream(
        "S",
        &Schema::from_pairs(&[("prio", ValueType::Int), ("msg", ValueType::Str)]),
    )
    .unwrap();
    let urgent = e
        .register_query(
            "urgent_first",
            "select msg from [select * from S where prio >= 8] as W",
            QueryOptions::subscribed(),
        )
        .unwrap()
        .unwrap();

    e.ingest(
        "S",
        &[
            vec![Value::Int(1), Value::Str("low-1".into())],
            vec![Value::Int(9), Value::Str("high-1".into())],
            vec![Value::Int(2), Value::Str("low-2".into())],
            vec![Value::Int(8), Value::Str("high-2".into())],
        ],
    )
    .unwrap();
    e.run_until_quiescent(8).unwrap();

    let batch = urgent.try_recv().unwrap();
    assert_eq!(batch.len(), 2, "urgent events processed first");
    // low-priority tuples remain buffered for later processing
    assert_eq!(e.basket("S").unwrap().len(), 2);
}

#[test]
fn one_shot_historical_query_over_accumulated_results() {
    // "the system should be able to store and later query intermediate
    // results" — continuous query feeds a table, one-shot query reads it
    let (_clock, e) = engine();
    e.create_stream("S", &Schema::from_pairs(&[("v", ValueType::Int)]))
        .unwrap();
    e.create_table("archive", &Schema::from_pairs(&[("v", ValueType::Int)]))
        .unwrap();
    e.register_query(
        "archiver",
        "insert into archive select v from [select * from S] as Z",
        QueryOptions::default(),
    )
    .unwrap();
    for i in 0..50i64 {
        e.ingest("S", &[vec![Value::Int(i)]]).unwrap();
    }
    e.run_until_quiescent(16).unwrap();

    let r = e
        .execute("select count(*) as n, sum(v) as s from archive where v >= 25")
        .unwrap()
        .unwrap();
    assert_eq!(r.column("n").unwrap().get(0), Value::Int(25));
    assert_eq!(r.column("s").unwrap().get(0), Value::Int((25..50i64).sum()));
}

#[test]
fn petri_mirror_of_registered_network_is_sound() {
    // engine topology → petri net → structural checks
    let (_clock, e) = engine();
    e.create_stream("S", &Schema::from_pairs(&[("v", ValueType::Int)]))
        .unwrap();
    e.create_basket("MID", &Schema::from_pairs(&[("v", ValueType::Int)]))
        .unwrap();
    e.register_query(
        "stage1",
        "insert into MID select v from [select * from S] as Z",
        QueryOptions::default(),
    )
    .unwrap();
    e.register_query(
        "stage2",
        "select v from [select * from MID] as Z",
        QueryOptions::subscribed(),
    )
    .unwrap();
    e.ingest("S", &[vec![Value::Int(1)]]).unwrap();

    let factories = e.take_factories();
    let mut sched = datacell::scheduler::Scheduler::new();
    for f in factories {
        sched.add(f);
    }
    let (net, marking, names) = sched.to_petri();
    assert_eq!(net.num_transitions(), 2);
    assert!(names.iter().any(|(n, _)| n == "S"));
    // the pipeline terminates: a dead marking is reachable (all consumed)
    assert!(petri::analysis::has_deadlock(&net, &marking, 1000).is_some());
    // unit-weight conservation holds for stage1 (S→MID) but not for the
    // sink transition stage2 (tokens leave the net to the subscriber):
    // exactly one violator
    let violators =
        petri::analysis::conservation_violations(&net, &vec![1; net.num_places()]);
    assert_eq!(violators.len(), 1);
    assert_eq!(net.transition(violators[0]).name, "stage2");

    // and the real engine drains exactly like the model predicts
    sched.run_until_quiescent(16).unwrap();
    assert_eq!(sched.stats_of("stage1").unwrap().consumed, 1);
    assert_eq!(sched.stats_of("stage2").unwrap().consumed, 1);
}
