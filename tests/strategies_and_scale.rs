//! Integration: the §4.2 processing strategies agree with each other under
//! randomized workloads, and batch thresholds behave per §4.1.

use std::sync::Arc;

use datacell::clock::VirtualClock;
use datacell::prelude::*;
use datacell::scheduler::Scheduler;
use datacell::strategy::{
    disjoint_ranges, partial_deletes, separate_baskets, shared_baskets, stream_schema,
    StrategyNetwork,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn feed(stream: &Arc<Basket>, clock: &VirtualClock, values: &[i64]) {
    let rows: Vec<Vec<Value>> = values
        .iter()
        .map(|&v| vec![Value::Ts(clock.now()), Value::Int(v)])
        .collect();
    stream.append_rows(&rows, clock).unwrap();
}

fn run_network(net: StrategyNetwork) -> Vec<usize> {
    let outputs = net.outputs.clone();
    let mut sched = Scheduler::new();
    for f in net.factories {
        sched.add(f);
    }
    sched.run_until_quiescent(100_000).unwrap();
    outputs.iter().map(|b| b.len()).collect()
}

#[test]
fn strategies_agree_on_uniform_data() {
    let k = 16;
    let queries = disjoint_ranges(k, 10_000, 0.001);
    let mut rng = StdRng::seed_from_u64(99);
    let data: Vec<i64> = (0..20_000).map(|_| rng.gen_range(0..10_000)).collect();
    let clock = Arc::new(VirtualClock::new());

    let mk = |name: &str| {
        let s = Basket::new(name, &stream_schema(), false);
        feed(&s, &clock, &data);
        s
    };
    let sep = run_network(separate_baskets(&mk("s1"), &queries, 1, clock.clone()));
    let sha = run_network(shared_baskets(&mk("s2"), &queries, 1, clock.clone()));
    let par = run_network(partial_deletes(&mk("s3"), &queries, 1, clock.clone()));
    assert_eq!(sep, sha, "shared must produce identical per-query results");
    assert_eq!(sep, par, "partial-deletes must produce identical results");
    let total: usize = sep.iter().sum();
    assert!(total > 0, "some tuples matched");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn strategies_agree_on_random_data(
        seed in 0u64..1000,
        k in 1usize..12,
        n in 1usize..2000,
    ) {
        let queries = disjoint_ranges(k, 1_000, 0.01);
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<i64> = (0..n).map(|_| rng.gen_range(0..1_000)).collect();
        let clock = Arc::new(VirtualClock::new());
        let mk = |name: String| {
            let s = Basket::new(name, &stream_schema(), false);
            feed(&s, &clock, &data);
            s
        };
        let sep = run_network(separate_baskets(&mk(format!("a{seed}")), &queries, 1, clock.clone()));
        let sha = run_network(shared_baskets(&mk(format!("b{seed}")), &queries, 1, clock.clone()));
        let par = run_network(partial_deletes(&mk(format!("c{seed}")), &queries, 1, clock.clone()));
        prop_assert_eq!(&sep, &sha);
        prop_assert_eq!(&sep, &par);
    }
}

#[test]
fn batch_threshold_accumulates_across_rounds() {
    // paper §4.1: "the system may explicitly require a basket to have a
    // minimum of n tuples before the relevant factory may run"
    let clock = Arc::new(VirtualClock::new());
    let stream = Basket::new("t", &stream_schema(), false);
    let queries = disjoint_ranges(1, 100, 0.5);
    let net = separate_baskets(&stream, &queries, 100, clock.clone());
    let outputs = net.outputs.clone();
    let mut sched = Scheduler::new();
    for f in net.factories {
        sched.add(f);
    }
    // trickle in 99 tuples — nothing may fire
    for i in 0..99 {
        feed(&stream, &clock, &[i % 100]);
        sched.run_until_quiescent(10).unwrap();
    }
    assert_eq!(outputs[0].len(), 0);
    assert_eq!(stream.len(), 99);
    // tuple 100 triggers the batch
    feed(&stream, &clock, &[1]);
    sched.run_until_quiescent(10).unwrap();
    assert_eq!(stream.len(), 0);
    assert!(!outputs[0].is_empty());
}

#[test]
fn shared_strategy_survives_many_rounds() {
    // locker/unlocker handshake across repeated batches
    let clock = Arc::new(VirtualClock::new());
    let stream = Basket::new("rounds", &stream_schema(), false);
    let queries = disjoint_ranges(4, 1_000, 0.05);
    let net = shared_baskets(&stream, &queries, 1, clock.clone());
    let outputs = net.outputs.clone();
    let mut sched = Scheduler::new();
    for f in net.factories {
        sched.add(f);
    }
    let mut rng = StdRng::seed_from_u64(5);
    let mut expected_total = 0usize;
    for _round in 0..25 {
        let data: Vec<i64> = (0..200).map(|_| rng.gen_range(0..1_000)).collect();
        expected_total += data
            .iter()
            .filter(|&&v| queries.iter().any(|q| v > q.lo && v < q.hi))
            .count();
        feed(&stream, &clock, &data);
        sched.run_until_quiescent(1_000).unwrap();
        assert!(stream.is_empty(), "each round fully consumed");
        assert!(stream.is_enabled(), "unlocker re-enabled the basket");
    }
    let got: usize = outputs.iter().map(|b| b.len()).sum();
    assert_eq!(got, expected_total);
}
